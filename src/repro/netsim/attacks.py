"""Attack traffic generators.

Each generator produces the connection events of one attack episode.  The
generators cover one representative attack per KDD category plus a couple of
extras, and each is written so the *derived* window features (connection
counts, error rates, service diversity) naturally take the values that make
the attack detectable — or, for the R2L/U2R attacks, naturally remain close to
normal traffic, which is what makes those categories hard.

All generators implement :class:`AttackGenerator`: ``generate(start_time)``
returns a time-ordered list of labelled :class:`ConnectionEvent`.
"""

from __future__ import annotations

import abc
from typing import List, Optional

import numpy as np

from repro.exceptions import SimulationError
from repro.netsim.events import ConnectionEvent
from repro.netsim.hosts import NetworkModel
from repro.utils.rng import RandomState, ensure_rng


class AttackGenerator(abc.ABC):
    """Base class for attack episode generators.

    Parameters
    ----------
    network:
        The simulated network (provides victims and address pools).
    random_state:
        Seed or generator.
    """

    #: Label attached to the generated events (a key of the attack taxonomy).
    label: str = "attack"

    def __init__(self, network: NetworkModel, random_state: RandomState = None) -> None:
        self.network = network
        self._rng = ensure_rng(random_state)

    @abc.abstractmethod
    def generate(self, start_time: float = 0.0) -> List[ConnectionEvent]:
        """Return the attack's connection events, ordered by timestamp."""

    def _victim_server(self) -> str:
        return str(self._rng.choice(self.network.all_server_addresses()))


class SynFloodAttack(AttackGenerator):
    """``neptune``-style SYN flood: a burst of half-open connections to one service."""

    label = "neptune"

    def __init__(
        self,
        network: NetworkModel,
        *,
        n_connections: int = 400,
        duration_seconds: float = 20.0,
        service: str = "http",
        random_state: RandomState = None,
    ) -> None:
        super().__init__(network, random_state)
        if n_connections < 1 or duration_seconds <= 0:
            raise SimulationError("SYN flood needs a positive size and duration")
        self.n_connections = int(n_connections)
        self.duration_seconds = float(duration_seconds)
        self.service = service

    def generate(self, start_time: float = 0.0) -> List[ConnectionEvent]:
        victim = self._victim_server()
        attacker_pool = [self.network.random_external_host(self._rng) for _ in range(16)]
        times = np.sort(self._rng.uniform(0.0, self.duration_seconds, size=self.n_connections))
        events = []
        for offset in times:
            events.append(
                ConnectionEvent(
                    timestamp=start_time + float(offset),
                    duration=0.0,
                    src_ip=str(self._rng.choice(attacker_pool)),
                    dst_ip=victim,
                    src_port=self.network.ephemeral_port(self._rng),
                    dst_port=self.network.port_for_service(self.service),
                    protocol="tcp",
                    service=self.service,
                    flag="S0",
                    src_bytes=0,
                    dst_bytes=0,
                    label=self.label,
                )
            )
        return events


class SmurfAttack(AttackGenerator):
    """``smurf``-style ICMP echo-reply flood against one victim."""

    label = "smurf"

    def __init__(
        self,
        network: NetworkModel,
        *,
        n_connections: int = 500,
        duration_seconds: float = 15.0,
        random_state: RandomState = None,
    ) -> None:
        super().__init__(network, random_state)
        if n_connections < 1 or duration_seconds <= 0:
            raise SimulationError("smurf needs a positive size and duration")
        self.n_connections = int(n_connections)
        self.duration_seconds = float(duration_seconds)

    def generate(self, start_time: float = 0.0) -> List[ConnectionEvent]:
        victim = self._victim_server()
        reflector_pool = [self.network.random_external_host(self._rng) for _ in range(64)]
        times = np.sort(self._rng.uniform(0.0, self.duration_seconds, size=self.n_connections))
        events = []
        for offset in times:
            events.append(
                ConnectionEvent(
                    timestamp=start_time + float(offset),
                    duration=0.0,
                    src_ip=str(self._rng.choice(reflector_pool)),
                    dst_ip=victim,
                    src_port=0,
                    dst_port=0,
                    protocol="icmp",
                    service="ecr_i",
                    flag="SF",
                    src_bytes=int(self._rng.normal(1032.0, 10.0)),
                    dst_bytes=0,
                    label=self.label,
                )
            )
        return events


class PortScanAttack(AttackGenerator):
    """``portsweep``-style scan of many ports on a single victim host."""

    label = "portsweep"

    def __init__(
        self,
        network: NetworkModel,
        *,
        n_ports: int = 120,
        seconds_per_port: float = 0.2,
        random_state: RandomState = None,
    ) -> None:
        super().__init__(network, random_state)
        if n_ports < 1 or seconds_per_port <= 0:
            raise SimulationError("port scan needs a positive port count and rate")
        self.n_ports = int(n_ports)
        self.seconds_per_port = float(seconds_per_port)

    def generate(self, start_time: float = 0.0) -> List[ConnectionEvent]:
        victim = self._victim_server()
        attacker = self.network.random_external_host(self._rng)
        ports = self._rng.choice(np.arange(1, 10000), size=self.n_ports, replace=False)
        events = []
        time = start_time
        for port in ports:
            # Most probed ports are closed -> rejected; a few answer.
            roll = self._rng.random()
            if roll < 0.85:
                flag, dst_bytes = "REJ", 0
            elif roll < 0.95:
                flag, dst_bytes = "RSTR", 0
            else:
                flag, dst_bytes = "SF", int(self._rng.integers(0, 200))
            events.append(
                ConnectionEvent(
                    timestamp=time,
                    duration=float(self._rng.exponential(0.05)),
                    src_ip=attacker,
                    dst_ip=victim,
                    src_port=self.network.ephemeral_port(self._rng),
                    dst_port=int(port),
                    protocol="tcp",
                    service="private",
                    flag=flag,
                    src_bytes=int(self._rng.integers(0, 12)),
                    dst_bytes=dst_bytes,
                    label=self.label,
                )
            )
            time += float(self._rng.exponential(self.seconds_per_port))
        return events


class NetworkScanAttack(AttackGenerator):
    """``ipsweep``-style probe of many internal hosts on a single service."""

    label = "ipsweep"

    def __init__(
        self,
        network: NetworkModel,
        *,
        n_hosts: Optional[int] = None,
        seconds_per_host: float = 0.3,
        random_state: RandomState = None,
    ) -> None:
        super().__init__(network, random_state)
        if seconds_per_host <= 0:
            raise SimulationError("network scan needs a positive probe rate")
        self.n_hosts = n_hosts
        self.seconds_per_host = float(seconds_per_host)

    def generate(self, start_time: float = 0.0) -> List[ConnectionEvent]:
        attacker = self.network.random_external_host(self._rng)
        targets = self.network.all_internal_addresses()
        if self.n_hosts is not None:
            count = min(int(self.n_hosts), len(targets))
            targets = list(self._rng.choice(targets, size=count, replace=False))
        events = []
        time = start_time
        for target in targets:
            events.append(
                ConnectionEvent(
                    timestamp=time,
                    duration=0.0,
                    src_ip=attacker,
                    dst_ip=str(target),
                    src_port=0,
                    dst_port=0,
                    protocol="icmp",
                    service="ecr_i",
                    flag="SF",
                    src_bytes=8,
                    dst_bytes=0,
                    label=self.label,
                )
            )
            time += float(self._rng.exponential(self.seconds_per_host))
        return events


class BruteForceAttack(AttackGenerator):
    """``guess_passwd``-style password guessing against a login service."""

    label = "guess_passwd"

    def __init__(
        self,
        network: NetworkModel,
        *,
        n_attempts: int = 30,
        seconds_per_attempt: float = 2.0,
        service: str = "telnet",
        random_state: RandomState = None,
    ) -> None:
        super().__init__(network, random_state)
        if n_attempts < 1 or seconds_per_attempt <= 0:
            raise SimulationError("brute force needs a positive attempt count and rate")
        self.n_attempts = int(n_attempts)
        self.seconds_per_attempt = float(seconds_per_attempt)
        self.service = service

    def generate(self, start_time: float = 0.0) -> List[ConnectionEvent]:
        attacker = self.network.random_external_host(self._rng)
        victim = self._victim_server()
        events = []
        time = start_time
        for attempt in range(self.n_attempts):
            succeeded = attempt == self.n_attempts - 1 and self._rng.random() < 0.3
            events.append(
                ConnectionEvent(
                    timestamp=time,
                    duration=float(self._rng.uniform(1.0, 5.0)),
                    src_ip=attacker,
                    dst_ip=victim,
                    src_port=self.network.ephemeral_port(self._rng),
                    dst_port=self.network.port_for_service(self.service),
                    protocol="tcp",
                    service=self.service,
                    flag="SF",
                    src_bytes=int(self._rng.normal(120.0, 15.0)),
                    dst_bytes=int(self._rng.normal(220.0, 30.0)),
                    content={
                        "hot": 1.0,
                        "num_failed_logins": 0.0 if succeeded else float(self._rng.integers(1, 4)),
                        "logged_in": 1.0 if succeeded else 0.0,
                    },
                    label=self.label,
                )
            )
            time += float(self._rng.exponential(self.seconds_per_attempt))
        return events


class BufferOverflowAttack(AttackGenerator):
    """``buffer_overflow``-style U2R exploit inside an interactive session."""

    label = "buffer_overflow"

    def __init__(
        self,
        network: NetworkModel,
        *,
        n_connections: int = 3,
        random_state: RandomState = None,
    ) -> None:
        super().__init__(network, random_state)
        if n_connections < 1:
            raise SimulationError("buffer overflow needs at least one connection")
        self.n_connections = int(n_connections)

    def generate(self, start_time: float = 0.0) -> List[ConnectionEvent]:
        attacker = self.network.random_internal_host(self._rng)
        victim = self._victim_server()
        events = []
        time = start_time
        for index in range(self.n_connections):
            is_exploit = index == self.n_connections - 1
            events.append(
                ConnectionEvent(
                    timestamp=time,
                    duration=float(self._rng.uniform(30.0, 300.0)),
                    src_ip=attacker,
                    dst_ip=victim,
                    src_port=self.network.ephemeral_port(self._rng),
                    dst_port=self.network.port_for_service("telnet"),
                    protocol="tcp",
                    service="telnet",
                    flag="SF",
                    src_bytes=int(self._rng.lognormal(6.0, 0.8)),
                    dst_bytes=int(self._rng.lognormal(7.5, 0.8)),
                    content={
                        "hot": float(self._rng.integers(1, 5)),
                        "logged_in": 1.0,
                        "root_shell": 1.0 if is_exploit else 0.0,
                        "num_compromised": 1.0 if is_exploit else 0.0,
                        "num_root": float(self._rng.integers(1, 4)) if is_exploit else 0.0,
                        "num_file_creations": float(self._rng.integers(0, 3)),
                        "num_shells": 1.0 if is_exploit else 0.0,
                    },
                    label=self.label,
                )
            )
            time += float(self._rng.uniform(10.0, 120.0))
        return events
