"""Flow-level connection events produced by the traffic simulator.

A :class:`ConnectionEvent` is one TCP/UDP/ICMP connection summarised at the
flow level — roughly what a NetFlow record plus light payload inspection would
yield.  The KDD *basic* and *content* features live directly on the event; the
*time-window* and *host-window* features are derived later by the
:class:`~repro.netsim.extractor.KddFeatureExtractor` from the ordering of
events in the stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.data.schema import FLAG_VALUES, PROTOCOL_VALUES, SERVICE_VALUES
from repro.exceptions import SimulationError

#: Connection flags that indicate the SYN handshake failed (half-open scans / floods).
SYN_ERROR_FLAGS = frozenset({"S0", "SH"})

#: Connection flags that indicate the connection was rejected.
REJECT_FLAGS = frozenset({"REJ", "RSTO", "RSTR"})


@dataclass
class ConnectionEvent:
    """One simulated connection.

    Attributes
    ----------
    timestamp:
        Start time of the connection, in seconds from the start of the trace.
    duration:
        Connection duration in seconds.
    src_ip, dst_ip:
        Endpoint addresses (plain dotted strings; no real parsing is needed).
    src_port, dst_port:
        Endpoint ports (0 for ICMP).
    protocol:
        ``"tcp"``, ``"udp"`` or ``"icmp"``.
    service:
        Destination service name (one of the schema's service values).
    flag:
        Connection status flag (``"SF"`` = normal establishment and
        termination, ``"S0"`` = no reply to SYN, ``"REJ"`` = rejected, ...).
    src_bytes, dst_bytes:
        Payload bytes in each direction.
    land:
        1 when source and destination address/port are identical (the ``land``
        attack signature).
    wrong_fragment, urgent:
        Counts of malformed fragments and urgent packets.
    content:
        Optional content-inspection features (``hot``, ``num_failed_logins``,
        ``logged_in``, ``root_shell``, ...); missing keys default to zero when
        the record is assembled.
    label:
        Traffic label (``"normal"`` or an attack name).
    """

    timestamp: float
    duration: float
    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: str
    service: str
    flag: str
    src_bytes: int
    dst_bytes: int
    land: int = 0
    wrong_fragment: int = 0
    urgent: int = 0
    content: Dict[str, float] = field(default_factory=dict)
    label: str = "normal"

    def __post_init__(self) -> None:
        if self.timestamp < 0 or self.duration < 0:
            raise SimulationError(
                f"timestamps and durations must be non-negative, got "
                f"timestamp={self.timestamp}, duration={self.duration}"
            )
        if self.protocol not in PROTOCOL_VALUES:
            raise SimulationError(f"unknown protocol {self.protocol!r}")
        if self.service not in SERVICE_VALUES:
            raise SimulationError(f"unknown service {self.service!r}")
        if self.flag not in FLAG_VALUES:
            raise SimulationError(f"unknown flag {self.flag!r}")
        if self.src_bytes < 0 or self.dst_bytes < 0:
            raise SimulationError("byte counts must be non-negative")

    # ------------------------------------------------------------------ #
    @property
    def end_time(self) -> float:
        """Time at which the connection finished."""
        return self.timestamp + self.duration

    @property
    def is_syn_error(self) -> bool:
        """Whether the connection shows a SYN error (half-open)."""
        return self.flag in SYN_ERROR_FLAGS

    @property
    def is_rejected(self) -> bool:
        """Whether the connection was rejected or reset."""
        return self.flag in REJECT_FLAGS

    @property
    def is_attack(self) -> bool:
        """Whether the event carries an attack label."""
        return self.label != "normal"

    def content_value(self, key: str, default: float = 0.0) -> float:
        """A content feature with a default of zero."""
        return float(self.content.get(key, default))
