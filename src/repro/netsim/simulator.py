"""End-to-end traffic simulation: background traffic + injected attacks -> labelled dataset.

:class:`TrafficSimulator` is the front door of the :mod:`repro.netsim`
substrate: configure a network, a background traffic intensity and a set of
attack injections, call :meth:`TrafficSimulator.run`, and get back either the
raw labelled event stream or the derived KDD-style :class:`~repro.data.records.Dataset`
ready for preprocessing and detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Type

from repro.data.records import Dataset
from repro.exceptions import SimulationError
from repro.netsim.attacks import (
    AttackGenerator,
    BruteForceAttack,
    BufferOverflowAttack,
    NetworkScanAttack,
    PortScanAttack,
    SmurfAttack,
    SynFloodAttack,
)
from repro.netsim.events import ConnectionEvent
from repro.netsim.extractor import KddFeatureExtractor
from repro.netsim.hosts import NetworkModel
from repro.netsim.traffic import NormalTrafficGenerator
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs

#: Attack name -> generator class, for the string-based convenience API.
ATTACK_REGISTRY: Dict[str, Type[AttackGenerator]] = {
    "neptune": SynFloodAttack,
    "smurf": SmurfAttack,
    "portsweep": PortScanAttack,
    "ipsweep": NetworkScanAttack,
    "guess_passwd": BruteForceAttack,
    "buffer_overflow": BufferOverflowAttack,
}


@dataclass(frozen=True)
class AttackInjection:
    """One attack scheduled into the simulated trace.

    Attributes
    ----------
    attack:
        Either an attack name from :data:`ATTACK_REGISTRY` or a ready-made
        :class:`AttackGenerator` instance.
    start_time:
        When (seconds from trace start) the attack begins.
    """

    attack: object
    start_time: float

    def resolve(self, network: NetworkModel, random_state: RandomState) -> AttackGenerator:
        """Instantiate the attack generator if a name was given."""
        if isinstance(self.attack, AttackGenerator):
            return self.attack
        name = str(self.attack)
        if name not in ATTACK_REGISTRY:
            raise SimulationError(
                f"unknown attack {name!r}; available: {sorted(ATTACK_REGISTRY)}"
            )
        return ATTACK_REGISTRY[name](network, random_state=random_state)


class TrafficSimulator:
    """Simulates a labelled traffic trace for a small enterprise network.

    Parameters
    ----------
    duration_seconds:
        Length of the simulated trace.
    sessions_per_second:
        Background session arrival rate.
    network:
        Optional pre-built :class:`NetworkModel` (a default one is created
        otherwise).
    injections:
        Attacks to inject (see :class:`AttackInjection`).
    random_state:
        Master seed; the background generator and each attack get independent
        child generators derived from it.

    Example
    -------
    >>> simulator = TrafficSimulator(
    ...     duration_seconds=120.0,
    ...     injections=[AttackInjection("portsweep", start_time=30.0)],
    ...     random_state=0,
    ... )
    >>> dataset = simulator.run()
    >>> len(dataset) > 0
    True
    """

    def __init__(
        self,
        duration_seconds: float = 600.0,
        *,
        sessions_per_second: float = 2.0,
        network: Optional[NetworkModel] = None,
        injections: Optional[Sequence[AttackInjection]] = None,
        random_state: RandomState = None,
    ) -> None:
        if duration_seconds <= 0:
            raise SimulationError(f"duration_seconds must be positive, got {duration_seconds}")
        self.duration_seconds = float(duration_seconds)
        self.sessions_per_second = float(sessions_per_second)
        self._rng = ensure_rng(random_state)
        self.network = network or NetworkModel(random_state=self._rng)
        self.injections: List[AttackInjection] = list(injections or [])
        self.extractor = KddFeatureExtractor()

    # ------------------------------------------------------------------ #
    def add_injection(self, attack: object, start_time: float) -> None:
        """Schedule another attack into the trace."""
        if start_time < 0 or start_time >= self.duration_seconds:
            raise SimulationError(
                f"start_time must lie within the trace [0, {self.duration_seconds}), "
                f"got {start_time}"
            )
        self.injections.append(AttackInjection(attack, float(start_time)))

    def simulate_events(self) -> List[ConnectionEvent]:
        """Generate the full labelled event stream (background plus attacks)."""
        rngs = spawn_rngs(self._rng, 1 + len(self.injections))
        background = NormalTrafficGenerator(
            self.network,
            sessions_per_second=self.sessions_per_second,
            random_state=rngs[0],
        )
        events = background.generate(self.duration_seconds)
        for injection, rng in zip(self.injections, rngs[1:], strict=True):
            if not 0 <= injection.start_time < self.duration_seconds:
                raise SimulationError(
                    f"injection start_time {injection.start_time} outside the trace"
                )
            generator = injection.resolve(self.network, rng)
            events.extend(generator.generate(start_time=injection.start_time))
        events.sort(key=lambda event: event.timestamp)
        return events

    def run(self) -> Dataset:
        """Simulate the trace and return the derived KDD-style dataset."""
        return self.extractor.extract(self.simulate_events())

    def run_with_events(self) -> tuple:
        """Like :meth:`run` but also returns the raw event stream."""
        events = self.simulate_events()
        return self.extractor.extract(events), events
