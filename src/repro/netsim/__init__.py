"""Flow-level network traffic simulator with attack injection.

This package is the substrate that replaces the raw packet traces behind the
public KDD datasets: it simulates a small enterprise network (internal hosts,
servers, external clients), generates normal application sessions and injected
attacks as time-stamped connection events, and derives the KDD-style
time-window and host-window features from the event stream — i.e. it
exercises the *whole* raw-traffic -> connection-record pipeline rather than
sampling features directly.
"""

from repro.netsim.events import ConnectionEvent
from repro.netsim.hosts import NetworkModel
from repro.netsim.traffic import NormalTrafficGenerator
from repro.netsim.attacks import (
    AttackGenerator,
    BruteForceAttack,
    BufferOverflowAttack,
    NetworkScanAttack,
    PortScanAttack,
    SmurfAttack,
    SynFloodAttack,
)
from repro.netsim.extractor import KddFeatureExtractor
from repro.netsim.simulator import AttackInjection, TrafficSimulator

__all__ = [
    "ConnectionEvent",
    "NetworkModel",
    "NormalTrafficGenerator",
    "AttackGenerator",
    "BruteForceAttack",
    "BufferOverflowAttack",
    "NetworkScanAttack",
    "PortScanAttack",
    "SmurfAttack",
    "SynFloodAttack",
    "KddFeatureExtractor",
    "AttackInjection",
    "TrafficSimulator",
]
