"""Derivation of KDD-style connection records from a stream of connection events.

This reproduces the feature-construction step that turned the original DARPA
packet traces into the KDD Cup 99 connection records:

* **basic** and **content** features are copied from the event itself;
* **time-window** features (``count``, ``srv_count``, the error and
  same/diff-service rates) are computed over the connections seen in the two
  seconds preceding each event;
* **host-window** features (``dst_host_*``) are computed over the last 100
  connections to the same destination host.

The extractor is strictly causal: every feature of an event only depends on
events that started earlier, so the resulting dataset behaves like a stream a
real sensor could produce.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, Iterable, List, Sequence

from repro.data.records import Dataset
from repro.data.schema import KddSchema
from repro.exceptions import SimulationError
from repro.netsim.events import ConnectionEvent

#: Content features copied from ``ConnectionEvent.content`` (missing keys -> 0).
CONTENT_FEATURES = (
    "hot",
    "num_failed_logins",
    "logged_in",
    "num_compromised",
    "root_shell",
    "su_attempted",
    "num_root",
    "num_file_creations",
    "num_shells",
    "num_access_files",
    "num_outbound_cmds",
    "is_host_login",
    "is_guest_login",
)


def _safe_rate(numerator: int, denominator: int) -> float:
    return numerator / denominator if denominator else 0.0


class KddFeatureExtractor:
    """Turns a time-ordered event stream into a KDD-style :class:`Dataset`.

    Parameters
    ----------
    time_window_seconds:
        Length of the time window for the ``count``-family features
        (2 seconds in the original KDD definition).
    host_window_size:
        Number of past connections to the same destination host used for the
        ``dst_host_*`` features (100 in the original definition).
    """

    def __init__(self, *, time_window_seconds: float = 2.0, host_window_size: int = 100) -> None:
        if time_window_seconds <= 0:
            raise SimulationError(
                f"time_window_seconds must be positive, got {time_window_seconds}"
            )
        if host_window_size < 1:
            raise SimulationError(f"host_window_size must be >= 1, got {host_window_size}")
        self.time_window_seconds = float(time_window_seconds)
        self.host_window_size = int(host_window_size)
        self.schema = KddSchema()

    # ------------------------------------------------------------------ #
    def extract(self, events: Iterable[ConnectionEvent]) -> Dataset:
        """Compute the 41 features for every event and return a labelled dataset."""
        ordered = sorted(events, key=lambda event: event.timestamp)
        if not ordered:
            raise SimulationError("cannot extract features from an empty event stream")
        rows: List[List[object]] = []
        labels: List[str] = []
        recent: Deque[ConnectionEvent] = deque()
        per_host_history: Dict[str, Deque[ConnectionEvent]] = defaultdict(
            lambda: deque(maxlen=self.host_window_size)
        )
        for event in ordered:
            self._expire(recent, event.timestamp)
            rows.append(self._features_for(event, recent, per_host_history[event.dst_ip]))
            labels.append(event.label)
            recent.append(event)
            per_host_history[event.dst_ip].append(event)
        return Dataset(rows, labels, schema=self.schema)

    # ------------------------------------------------------------------ #
    def _expire(self, recent: Deque[ConnectionEvent], now: float) -> None:
        """Drop events that fell out of the sliding time window."""
        cutoff = now - self.time_window_seconds
        while recent and recent[0].timestamp < cutoff:
            recent.popleft()

    def _features_for(
        self,
        event: ConnectionEvent,
        recent: Deque[ConnectionEvent],
        host_history: Sequence[ConnectionEvent],
    ) -> List[object]:
        basic = self._basic_features(event)
        content = [event.content_value(name) for name in CONTENT_FEATURES]
        time_window = self._time_window_features(event, recent)
        host_window = self._host_window_features(event, host_history)
        row = basic + content + time_window + host_window
        if len(row) != self.schema.n_features:
            raise SimulationError(
                f"internal error: built {len(row)} features, schema expects "
                f"{self.schema.n_features}"
            )
        return row

    def _basic_features(self, event: ConnectionEvent) -> List[object]:
        land = 1.0 if (event.src_ip == event.dst_ip and event.src_port == event.dst_port) else 0.0
        return [
            float(event.duration),
            event.protocol,
            event.service,
            event.flag,
            float(event.src_bytes),
            float(event.dst_bytes),
            land or float(event.land),
            float(event.wrong_fragment),
            float(event.urgent),
        ]

    def _time_window_features(
        self, event: ConnectionEvent, recent: Deque[ConnectionEvent]
    ) -> List[object]:
        same_host = [other for other in recent if other.dst_ip == event.dst_ip]
        same_service = [other for other in recent if other.service == event.service]
        count = len(same_host)
        srv_count = len(same_service)
        serror = sum(1 for other in same_host if other.is_syn_error)
        srv_serror = sum(1 for other in same_service if other.is_syn_error)
        rerror = sum(1 for other in same_host if other.is_rejected)
        srv_rerror = sum(1 for other in same_service if other.is_rejected)
        same_srv_within_host = sum(1 for other in same_host if other.service == event.service)
        diff_hosts_within_service = len({other.dst_ip for other in same_service} - {event.dst_ip})
        return [
            float(count),
            float(srv_count),
            _safe_rate(serror, count),
            _safe_rate(srv_serror, srv_count),
            _safe_rate(rerror, count),
            _safe_rate(srv_rerror, srv_count),
            _safe_rate(same_srv_within_host, count),
            _safe_rate(count - same_srv_within_host, count),
            _safe_rate(diff_hosts_within_service, srv_count),
        ]

    def _host_window_features(
        self, event: ConnectionEvent, host_history: Sequence[ConnectionEvent]
    ) -> List[object]:
        history = list(host_history)
        dst_host_count = len(history)
        same_service = [other for other in history if other.service == event.service]
        dst_host_srv_count = len(same_service)
        serror = sum(1 for other in history if other.is_syn_error)
        srv_serror = sum(1 for other in same_service if other.is_syn_error)
        rerror = sum(1 for other in history if other.is_rejected)
        srv_rerror = sum(1 for other in same_service if other.is_rejected)
        same_src_port = sum(1 for other in history if other.src_port == event.src_port)
        srv_diff_host = len({other.src_ip for other in same_service} - {event.src_ip})
        return [
            float(dst_host_count),
            float(dst_host_srv_count),
            _safe_rate(dst_host_srv_count, dst_host_count),
            _safe_rate(dst_host_count - dst_host_srv_count, dst_host_count),
            _safe_rate(same_src_port, dst_host_count),
            _safe_rate(srv_diff_host, dst_host_srv_count),
            _safe_rate(serror, dst_host_count),
            _safe_rate(srv_serror, dst_host_srv_count),
            _safe_rate(rerror, dst_host_count),
            _safe_rate(srv_rerror, dst_host_srv_count),
        ]
