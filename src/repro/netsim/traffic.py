"""Normal (background) traffic generation.

Background traffic is generated as application *sessions*: a client picks a
service, connects to a server offering it, and produces one or a handful of
connections whose sizes and durations follow per-service distributions.
Session arrivals follow a Poisson process, which gives the bursty but
statistically stationary background the detectors are calibrated on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import SimulationError
from repro.netsim.events import ConnectionEvent
from repro.netsim.hosts import NetworkModel
from repro.utils.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class ServiceProfile:
    """Statistical description of one application service's sessions.

    Attributes
    ----------
    service:
        Service name (must exist in the schema's service values).
    protocol:
        Transport protocol used by the service.
    weight:
        Relative popularity; determines how often sessions of this service
        start.
    connections_per_session:
        Mean number of connections per session (geometric distribution).
    duration_scale:
        Mean of the exponential duration distribution, in seconds.
    src_bytes_log_mean, src_bytes_log_sigma:
        Lognormal parameters for client-to-server bytes.
    dst_bytes_log_mean, dst_bytes_log_sigma:
        Lognormal parameters for server-to-client bytes.
    login_probability:
        Probability the session is an authenticated login (sets ``logged_in``).
    """

    service: str
    protocol: str
    weight: float
    connections_per_session: float
    duration_scale: float
    src_bytes_log_mean: float
    src_bytes_log_sigma: float
    dst_bytes_log_mean: float
    dst_bytes_log_sigma: float
    login_probability: float = 0.0


#: The default mix of background services (weights roughly follow KDD-era traffic).
DEFAULT_SERVICE_PROFILES: Tuple[ServiceProfile, ...] = (
    ServiceProfile("http", "tcp", 0.55, 4.0, 2.0, 5.6, 0.8, 7.5, 1.2, 0.0),
    ServiceProfile("dns", "udp", 0.15, 1.5, 0.05, 3.8, 0.4, 4.6, 0.5, 0.0),
    ServiceProfile("smtp", "tcp", 0.10, 1.5, 1.0, 6.2, 0.8, 5.0, 0.6, 0.0),
    ServiceProfile("ftp", "tcp", 0.05, 2.0, 8.0, 5.0, 1.0, 6.5, 1.5, 0.8),
    ServiceProfile("ftp_data", "tcp", 0.04, 1.2, 4.0, 4.0, 1.0, 9.0, 1.5, 0.0),
    ServiceProfile("pop_3", "tcp", 0.04, 1.2, 1.0, 4.5, 0.6, 6.5, 1.0, 0.9),
    ServiceProfile("ssh", "tcp", 0.03, 1.2, 60.0, 6.0, 1.0, 6.5, 1.0, 0.95),
    ServiceProfile("telnet", "tcp", 0.02, 1.1, 90.0, 5.5, 1.0, 7.0, 1.0, 0.95),
    ServiceProfile("finger", "tcp", 0.02, 1.0, 0.5, 3.5, 0.5, 4.5, 0.5, 0.0),
)


class NormalTrafficGenerator:
    """Generates background application sessions as connection events.

    Parameters
    ----------
    network:
        The simulated network topology.
    sessions_per_second:
        Mean session arrival rate of the whole site.
    profiles:
        Service profiles; defaults to :data:`DEFAULT_SERVICE_PROFILES`.
    random_state:
        Seed or generator.
    """

    def __init__(
        self,
        network: NetworkModel,
        *,
        sessions_per_second: float = 2.0,
        profiles: Optional[Tuple[ServiceProfile, ...]] = None,
        random_state: RandomState = None,
    ) -> None:
        if sessions_per_second <= 0:
            raise SimulationError(
                f"sessions_per_second must be positive, got {sessions_per_second}"
            )
        self.network = network
        self.sessions_per_second = float(sessions_per_second)
        self.profiles = tuple(profiles) if profiles is not None else DEFAULT_SERVICE_PROFILES
        if not self.profiles:
            raise SimulationError("at least one service profile is required")
        self._rng = ensure_rng(random_state)
        weights = np.array([profile.weight for profile in self.profiles], dtype=float)
        self._profile_probabilities = weights / weights.sum()

    # ------------------------------------------------------------------ #
    def generate(self, duration_seconds: float, *, start_time: float = 0.0) -> List[ConnectionEvent]:
        """Generate all background connections in ``[start_time, start_time + duration)``."""
        if duration_seconds <= 0:
            raise SimulationError(f"duration_seconds must be positive, got {duration_seconds}")
        events: List[ConnectionEvent] = []
        time = float(start_time)
        end = start_time + duration_seconds
        while True:
            time += self._rng.exponential(1.0 / self.sessions_per_second)
            if time >= end:
                break
            events.extend(self._session(time))
        # Sessions started near the end of the window may spill past it; keep
        # the trace strictly inside [start_time, end) as documented.
        events = [event for event in events if event.timestamp < end]
        events.sort(key=lambda event: event.timestamp)
        return events

    # ------------------------------------------------------------------ #
    def _session(self, start_time: float) -> List[ConnectionEvent]:
        """One application session: a short burst of connections to one server."""
        profile = self.profiles[self._rng.choice(len(self.profiles), p=self._profile_probabilities)]
        client = self.network.random_internal_host(self._rng)
        # A fraction of sessions originate outside (e.g. inbound mail, web hits).
        if self._rng.random() < 0.25:
            client = self.network.random_external_host(self._rng)
        server = self.network.server_for_service(profile.service, self._rng)
        n_connections = 1 + self._rng.geometric(1.0 / max(profile.connections_per_session, 1.0))
        n_connections = int(min(n_connections, 20))
        logged_in = 1.0 if self._rng.random() < profile.login_probability else 0.0
        events: List[ConnectionEvent] = []
        time = start_time
        for _ in range(n_connections):
            duration = float(self._rng.exponential(profile.duration_scale))
            src_bytes = int(self._rng.lognormal(profile.src_bytes_log_mean, profile.src_bytes_log_sigma))
            dst_bytes = int(self._rng.lognormal(profile.dst_bytes_log_mean, profile.dst_bytes_log_sigma))
            # A small fraction of benign connections fail (timeouts, resets).
            roll = self._rng.random()
            if roll < 0.02:
                flag = "REJ"
                dst_bytes = 0
            elif roll < 0.03:
                flag = "RSTO"
            else:
                flag = "SF"
            events.append(
                ConnectionEvent(
                    timestamp=time,
                    duration=duration,
                    src_ip=client,
                    dst_ip=server,
                    src_port=self.network.ephemeral_port(self._rng),
                    dst_port=self.network.port_for_service(profile.service),
                    protocol=profile.protocol,
                    service=profile.service,
                    flag=flag,
                    src_bytes=src_bytes,
                    dst_bytes=dst_bytes,
                    content={"logged_in": logged_in},
                    label="normal",
                )
            )
            time += float(self._rng.exponential(max(profile.duration_scale / 2.0, 0.05)))
        return events
