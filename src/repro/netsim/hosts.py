"""The simulated network: internal hosts, servers and external clients.

The model is intentionally simple — addresses are opaque strings and the only
structure that matters to the feature extractor is *which* hosts talk to
*which* services — but it is enough to make the derived time-window and
host-window features behave the way they do in real traces (server addresses
accumulate many connections, scans touch many hosts, floods hammer one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.exceptions import SimulationError
from repro.utils.rng import RandomState, ensure_rng

#: Well-known destination port per service (used when building events).
SERVICE_PORTS: Dict[str, int] = {
    "http": 80,
    "smtp": 25,
    "ftp": 21,
    "ftp_data": 20,
    "telnet": 23,
    "dns": 53,
    "ssh": 22,
    "pop_3": 110,
    "imap4": 143,
    "finger": 79,
    "ecr_i": 0,
    "private": 31337,
    "other": 8888,
}


@dataclass
class NetworkModel:
    """Hosts of the simulated enterprise network.

    Parameters
    ----------
    n_internal_hosts:
        Number of workstations on the internal subnet (traffic sources).
    n_external_hosts:
        Number of external client/peer addresses.
    n_servers:
        Number of internal servers; each server offers a subset of services.
    random_state:
        Seed for address assignment and per-server service selection.
    """

    n_internal_hosts: int = 50
    n_external_hosts: int = 200
    n_servers: int = 8
    random_state: RandomState = None
    internal_hosts: List[str] = field(init=False, default_factory=list)
    external_hosts: List[str] = field(init=False, default_factory=list)
    servers: Dict[str, Tuple[str, ...]] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_internal_hosts < 1 or self.n_external_hosts < 1 or self.n_servers < 1:
            raise SimulationError("the network needs at least one host of each kind")
        rng = ensure_rng(self.random_state)
        self.internal_hosts = [f"10.0.0.{index + 1}" for index in range(self.n_internal_hosts)]
        self.external_hosts = [
            f"{rng.integers(11, 223)}.{rng.integers(0, 256)}.{rng.integers(0, 256)}."
            f"{rng.integers(1, 255)}"
            for _ in range(self.n_external_hosts)
        ]
        server_services = [
            ("http", "dns"),
            ("smtp", "pop_3", "imap4"),
            ("ftp", "ftp_data"),
            ("telnet", "ssh"),
            ("http",),
            ("dns",),
            ("http", "ftp"),
            ("ssh", "finger"),
        ]
        self.servers = {}
        for index in range(self.n_servers):
            address = f"10.0.1.{index + 1}"
            services = server_services[index % len(server_services)]
            self.servers[address] = tuple(services)

    # ------------------------------------------------------------------ #
    def random_internal_host(self, rng: np.random.Generator) -> str:
        """A uniformly random workstation address."""
        return str(rng.choice(self.internal_hosts))

    def random_external_host(self, rng: np.random.Generator) -> str:
        """A uniformly random external address."""
        return str(rng.choice(self.external_hosts))

    def server_for_service(self, service: str, rng: np.random.Generator) -> str:
        """An internal server offering ``service`` (any server if none advertises it)."""
        candidates = [address for address, services in self.servers.items() if service in services]
        if not candidates:
            candidates = list(self.servers)
        return str(rng.choice(candidates))

    def all_server_addresses(self) -> List[str]:
        """Addresses of every internal server."""
        return list(self.servers)

    def all_internal_addresses(self) -> List[str]:
        """Workstations plus servers (the scan targets of a network sweep)."""
        return self.internal_hosts + list(self.servers)

    def ephemeral_port(self, rng: np.random.Generator) -> int:
        """A random client-side ephemeral port."""
        return int(rng.integers(1024, 65535))

    @staticmethod
    def port_for_service(service: str) -> int:
        """The well-known destination port of ``service``."""
        return SERVICE_PORTS.get(service, 8888)
