"""Intraprocedural control-flow graphs for the flow-aware lint rules.

PR 8's rules are per-node pattern matches; the concurrency family needs to
know *what is true when a statement executes* — specifically which locks are
held.  This module builds a small statement-level CFG per function and runs
a forward may-analysis over it (:func:`held_lock_states`), which is what
lets RPL010 flag an ``await`` between ``lock.acquire()`` and
``lock.release()`` even when no ``with`` block makes the region lexical.

Shape of the graph
------------------
One :class:`CfgNode` per *simple* statement; compound statements get one
node for their **header** (the expressions the statement itself evaluates:
an ``if``/``while`` test, a ``for`` iterable, the ``with`` context
expressions) and their bodies are flattened into further nodes.  ``with``
blocks additionally get a synthetic ``with-exit`` node so the dataflow can
kill a lock exactly where the context manager releases it.  ``try`` bodies
conservatively edge into every handler (an exception may occur at any
point), ``break``/``continue``/``return``/``raise`` cut the fall-through
edge, and loops carry a back edge — the usual textbook construction, sized
for functions, not whole programs.

The analysis is deliberately a *may* analysis: extra edges can only make a
lock look held longer than it is, so the rules stay conservative (they can
over-warn behind a suppression, never silently under-warn).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence, Set, Tuple, Union

__all__ = [
    "CfgNode",
    "ControlFlowGraph",
    "FunctionNode",
    "build_cfg",
    "held_lock_states",
    "node_await",
    "scoped_children",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: AST nodes that open a new execution scope: their bodies run at some other
#: time (or never), so statement-level walks must not descend into them.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


@dataclass
class CfgNode:
    """One executable point: a simple statement or a compound-statement header."""

    index: int
    #: ``"stmt"`` for ordinary statements/headers, ``"with"`` for a
    #: with-statement header (context managers entered), ``"with-exit"`` for
    #: the synthetic node where those context managers release.
    kind: str
    statement: Optional[ast.AST]
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)


class ControlFlowGraph:
    """The CFG of one function body (see the module docstring for shape)."""

    def __init__(self, function: FunctionNode, nodes: List[CfgNode]) -> None:
        self.function = function
        self.nodes = nodes

    def __len__(self) -> int:
        return len(self.nodes)


def scoped_children(root: ast.AST) -> Iterator[ast.AST]:
    """Yield ``root``'s descendants without crossing into nested scopes.

    Nested ``def``/``async def``/``lambda``/``class`` bodies execute on their
    own schedule (or thread), so whatever happens inside them is not part of
    ``root``'s own control flow.  The scope node itself is still yielded —
    callers that care (e.g. call collection) simply skip it.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_NODES):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _own_expressions(node: CfgNode) -> List[ast.AST]:
    """The expressions a CFG node evaluates *itself* (not its body)."""
    stmt = node.statement
    if stmt is None:
        return []
    if node.kind in ("with", "with-exit"):
        assert isinstance(stmt, (ast.With, ast.AsyncWith))
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return list(stmt.decorator_list)
    if isinstance(stmt, (ast.Try, ast.ExceptHandler)):
        return []
    return [stmt]


def node_await(node: CfgNode) -> Optional[ast.AST]:
    """The AST node proving this CFG node suspends the coroutine, or ``None``.

    Explicit ``await`` expressions count, and so do the *implicit* awaits of
    ``async with`` (``__aenter__``/``__aexit__``) and ``async for``
    (``__anext__``) — a lock held across any of them is held across a
    suspension point.
    """
    stmt = node.statement
    if isinstance(stmt, (ast.AsyncWith, ast.AsyncFor)):
        return stmt
    for expr in _own_expressions(node):
        if isinstance(expr, ast.Await):
            return expr
        for inner in scoped_children(expr):
            if isinstance(inner, ast.Await):
                return inner
    return None


class _Builder:
    def __init__(self) -> None:
        self.nodes: List[CfgNode] = []
        #: Per enclosing loop: (continue target index, break frontier).
        self.loops: List[Tuple[int, List[int]]] = []

    def add(self, kind: str, stmt: Optional[ast.AST]) -> int:
        node = CfgNode(index=len(self.nodes), kind=kind, statement=stmt)
        self.nodes.append(node)
        return node.index

    def link(self, preds: Sequence[int], node: int) -> None:
        for pred in preds:
            self.nodes[pred].successors.append(node)
            self.nodes[node].predecessors.append(pred)

    def build_body(self, body: Sequence[ast.stmt], preds: Sequence[int]) -> List[int]:
        frontier = list(preds)
        for stmt in body:
            frontier = self.build_stmt(stmt, frontier)
        return frontier

    def build_stmt(self, stmt: ast.stmt, preds: Sequence[int]) -> List[int]:
        if isinstance(stmt, ast.If):
            header = self.add("stmt", stmt)
            self.link(preds, header)
            body_frontier = self.build_body(stmt.body, [header])
            else_frontier = (
                self.build_body(stmt.orelse, [header]) if stmt.orelse else [header]
            )
            return body_frontier + else_frontier
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = self.add("stmt", stmt)
            self.link(preds, header)
            self.loops.append((header, []))
            body_frontier = self.build_body(stmt.body, [header])
            self.link(body_frontier, header)  # the loop's back edge
            _, breaks = self.loops.pop()
            exits = (
                self.build_body(stmt.orelse, [header]) if stmt.orelse else [header]
            )
            return exits + breaks
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            header = self.add("with", stmt)
            self.link(preds, header)
            body_frontier = self.build_body(stmt.body, [header])
            closer = self.add("with-exit", stmt)
            self.link(body_frontier, closer)
            return [closer]
        if isinstance(stmt, (ast.Try, ast.TryStar)):
            before = list(preds)
            start = len(self.nodes)
            body_frontier = self.build_body(stmt.body, preds)
            body_nodes = list(range(start, len(self.nodes)))
            handler_frontiers: List[int] = []
            for handler in stmt.handlers:
                entry = self.add("stmt", handler)
                # An exception may fire before or during any body statement.
                self.link(before + body_nodes, entry)
                handler_frontiers += self.build_body(handler.body, [entry])
            else_frontier = (
                self.build_body(stmt.orelse, body_frontier)
                if stmt.orelse
                else body_frontier
            )
            merged = else_frontier + handler_frontiers
            if stmt.finalbody:
                merged = self.build_body(stmt.finalbody, merged)
            return merged
        if isinstance(stmt, ast.Match):
            header = self.add("stmt", stmt)
            self.link(preds, header)
            frontiers = [header]  # no case may match
            for case in stmt.cases:
                frontiers += self.build_body(case.body, [header])
            return frontiers
        if isinstance(stmt, (ast.Return, ast.Raise)):
            node = self.add("stmt", stmt)
            self.link(preds, node)
            return []
        if isinstance(stmt, ast.Break):
            node = self.add("stmt", stmt)
            self.link(preds, node)
            if self.loops:
                self.loops[-1][1].append(node)
            return []
        if isinstance(stmt, ast.Continue):
            node = self.add("stmt", stmt)
            self.link(preds, node)
            if self.loops:
                self.link([node], self.loops[-1][0])
            return []
        node = self.add("stmt", stmt)
        self.link(preds, node)
        return [node]


def build_cfg(function: FunctionNode) -> ControlFlowGraph:
    """Build the statement-level CFG of one function body."""
    builder = _Builder()
    builder.build_body(function.body, [])
    return ControlFlowGraph(function, builder.nodes)


def _gen_kill(
    node: CfgNode, lock_of: Callable[[ast.expr], Optional[str]]
) -> Tuple[Set[str], Set[str]]:
    """Locks this node acquires (gen) and releases (kill)."""
    gens: Set[str] = set()
    kills: Set[str] = set()
    stmt = node.statement
    if node.kind == "with" and isinstance(stmt, ast.With):
        for item in stmt.items:
            name = lock_of(item.context_expr)
            if name is not None:
                gens.add(name)
        return gens, kills
    if node.kind == "with-exit" and isinstance(stmt, ast.With):
        for item in stmt.items:
            name = lock_of(item.context_expr)
            if name is not None:
                kills.add(name)
        return gens, kills
    for expr in _own_expressions(node):
        candidates = [expr, *scoped_children(expr)]
        for inner in candidates:
            if not isinstance(inner, ast.Call) or not isinstance(
                inner.func, ast.Attribute
            ):
                continue
            if inner.func.attr == "acquire":
                name = lock_of(inner.func.value)
                if name is not None:
                    gens.add(name)
            elif inner.func.attr == "release":
                name = lock_of(inner.func.value)
                if name is not None:
                    kills.add(name)
    return gens, kills


def held_lock_states(
    cfg: ControlFlowGraph, lock_of: Callable[[ast.expr], Optional[str]]
) -> List[Set[str]]:
    """Per-node *entry* sets of possibly-held locks (forward may-analysis).

    ``lock_of`` classifies an expression as a lock (returning its stable
    identity) or not (``None``); the analysis itself is lock-agnostic.
    Gen points are ``with <lock>:`` headers and ``<lock>.acquire()`` calls;
    kill points are the matching ``with``-exit and ``<lock>.release()``.
    Iterates to fixpoint — the lattice (sets under union) is finite and the
    transfer functions monotone, so termination is guaranteed.
    """
    pairs = [_gen_kill(node, lock_of) for node in cfg.nodes]
    ins: List[Set[str]] = [set() for _ in cfg.nodes]
    outs: List[Set[str]] = [set() for _ in cfg.nodes]
    changed = True
    while changed:
        changed = False
        for node in cfg.nodes:
            new_in: Set[str] = set()
            for pred in node.predecessors:
                new_in |= outs[pred]
            gens, kills = pairs[node.index]
            new_out = (new_in - kills) | gens
            if new_in != ins[node.index] or new_out != outs[node.index]:
                ins[node.index] = new_in
                outs[node.index] = new_out
                changed = True
    return ins
