"""``python -m repro.analysis`` — alias for the ``repro-lint`` console script."""

from repro.analysis.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
