"""Project-invariant static analysis (``repro-lint``).

Six PRs of growth accumulated correctness contracts that lived only in
docstrings and test folklore: atomic artifact publication, the pickle trust
boundary, the convert-once ingest rule, send-lock discipline on multiplexed
sockets, frozen-config immutability, the kernel-provider seam, the single
serving error surface and pool confinement.  This package enforces them
mechanically with small AST rules (stable codes ``RPL001``…), so the
concurrency-heavy roadmap items cannot silently regress them.

PR 10 made the analyzer *flow aware*: an intraprocedural CFG
(:mod:`repro.analysis.cfg`) and a project-wide call graph with execution
contexts (:mod:`repro.analysis.callgraph`) feed the concurrency rule family
(:mod:`repro.analysis.concurrency`, ``RPL009``–``RPL014``), which guards the
thread+asyncio serving hybrid: no blocking call reachable from a coroutine,
no ``await`` under a threading lock, no lock-order cycles, no dropped task
handles, no loop state touched from foreign threads or executors.

* :mod:`repro.analysis.engine` — findings, suppression comments
  (``# repro-lint: disable=RPLxxx``), stale-suppression detection, the
  file walker and the shared-project ``lint_sources`` entry point;
* :mod:`repro.analysis.rules` — the rule registry;
* :mod:`repro.analysis.cfg` / :mod:`repro.analysis.callgraph` — the flow
  machinery behind the concurrency rules;
* :mod:`repro.analysis.cli` — the ``repro-lint`` entry point
  (``python -m repro.analysis``).
"""

from repro.analysis.engine import (
    UNUSED_SUPPRESSION_CODE,
    Finding,
    LintError,
    Suppression,
    iter_python_files,
    lint_paths,
    lint_source,
    lint_sources,
    scan_suppressions,
)
from repro.analysis.rules import RULES, Rule, rules_by_code
from repro.analysis.callgraph import Project

__all__ = [
    "Finding",
    "LintError",
    "Project",
    "RULES",
    "Rule",
    "Suppression",
    "UNUSED_SUPPRESSION_CODE",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "rules_by_code",
    "scan_suppressions",
]
