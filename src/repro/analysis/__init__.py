"""Project-invariant static analysis (``repro-lint``).

Six PRs of growth accumulated correctness contracts that lived only in
docstrings and test folklore: atomic artifact publication, the pickle trust
boundary, the convert-once ingest rule, send-lock discipline on multiplexed
sockets, frozen-config immutability, the kernel-provider seam, the single
serving error surface and pool confinement.  This package enforces them
mechanically with small AST rules (stable codes ``RPL001``…), so the
concurrency-heavy roadmap items cannot silently regress them.

* :mod:`repro.analysis.engine` — findings, suppression comments
  (``# repro-lint: disable=RPLxxx``), the file walker;
* :mod:`repro.analysis.rules` — the rule registry;
* :mod:`repro.analysis.cli` — the ``repro-lint`` entry point
  (``python -m repro.analysis``).
"""

from repro.analysis.engine import (
    Finding,
    LintError,
    iter_python_files,
    lint_paths,
    lint_source,
)
from repro.analysis.rules import RULES, Rule, rules_by_code

__all__ = [
    "Finding",
    "LintError",
    "Rule",
    "RULES",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "rules_by_code",
]
