"""Core of ``repro-lint``: findings, suppressions and the file walker.

The linter is deliberately small: one :func:`ast.parse` per file, one
independent walk per rule (see :mod:`repro.analysis.rules`), and a
tokenize-based suppression scanner.  Rules are *path scoped* — each rule
declares which repo-relative paths it guards (``applies_to``), so the same
source text can be legal in one module and a violation in another (e.g.
``pickle.loads`` inside the transport trust boundary vs. anywhere else).

Since PR 10 the engine is also *flow aware*: :func:`lint_sources` parses the
whole file set first and hands every rule one shared
:class:`~repro.analysis.callgraph.Project`, so the concurrency rules
(RPL009+) can follow call chains across modules.  Purely syntactic rules
ignore the project and behave exactly as before.

Suppression syntax
------------------
A violation is silenced by a ``# repro-lint: disable=RPLxxx`` comment either
on the flagged line itself or on a comment-only line directly above it::

    # repro-lint: disable=RPL003 -- documented float64 result contract
    return distances.astype(np.float64, copy=False)

Several codes may be listed, comma separated.  Suppressions are expected to
carry an inline justification after the code list; the linter does not parse
the prose, but review does.  A suppression that no longer silences any
finding is itself reported (code ``RPL000``) when
``report_unused_suppressions`` is on — stale suppressions hide future
regressions at exactly the sites someone once judged dangerous.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.analysis.rules import Rule

__all__ = [
    "Finding",
    "LintError",
    "Suppression",
    "UNUSED_SUPPRESSION_CODE",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "scan_suppressions",
    "suppressed_codes_by_line",
]

#: Pseudo-code used for stale-suppression findings.  No rule owns it; it is
#: reserved so ``--select`` validation and docs can name it.
UNUSED_SUPPRESSION_CODE = "RPL000"

#: Directories whose contents are never linted by the directory walker.
#: ``tests/fixtures/lint`` holds the deliberately-bad rule fixtures; linting
#: them through the walker would make the repo self-check unsatisfiable (the
#: per-rule tests lint them explicitly through :func:`lint_source` instead).
SKIPPED_DIR_PARTS: Tuple[Tuple[str, ...], ...] = (
    ("fixtures", "lint"),
    ("__pycache__",),
    (".git",),
)

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9,\s]+)")


class LintError(Exception):
    """Raised when a file cannot be linted at all (unreadable / syntax error)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    code: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """Human-readable one-liner in the ``path:line:col: CODE message`` shape."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (stable keys, machine consumable)."""
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """One ``disable=`` code: where it was written, which line it silences."""

    code: str
    #: The code line whose findings this suppression silences.
    target_line: int
    #: The line the comment physically sits on (== ``target_line`` for
    #: inline suppressions, the comment-only line above otherwise).
    comment_line: int


def normalized_path(path: str) -> str:
    """Repo-relative POSIX form of ``path`` used for rule scoping."""
    return Path(path).as_posix().lstrip("./")


def scan_suppressions(source: str) -> List[Suppression]:
    """Every suppression in ``source``, resolved to the line it silences.

    The scan is tokenize-based: only genuine ``COMMENT`` tokens count, so a
    docstring *describing* the suppression syntax (this module has one) can
    never create a phantom suppression.  A comment on a code line applies to
    that line; a comment-only line applies to the next code line, and chains
    of comment-only lines accumulate onto the first code line below them.
    """
    comment_lines: Dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comment_lines[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []
    suppressions: List[Suppression] = []
    #: code → comment line, for comment-only suppressions awaiting their
    #: target code line.
    pending: Dict[str, int] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        codes: Set[str] = set()
        comment = comment_lines.get(lineno)
        if comment is not None:
            match = _SUPPRESS_RE.search(comment)
            if match is not None:
                codes = {
                    code.strip() for code in match.group(1).split(",") if code.strip()
                }
        if text.strip().startswith("#"):
            for code in codes:
                pending.setdefault(code, lineno)
            continue
        for code in codes:
            suppressions.append(
                Suppression(code=code, target_line=lineno, comment_line=lineno)
            )
        for code, comment_line in pending.items():
            if code not in codes:
                suppressions.append(
                    Suppression(
                        code=code, target_line=lineno, comment_line=comment_line
                    )
                )
        pending = {}
    return suppressions


def suppressed_codes_by_line(source: str) -> Dict[int, Set[str]]:
    """Map line number → codes suppressed on that line."""
    suppressed: Dict[int, Set[str]] = {}
    for suppression in scan_suppressions(source):
        suppressed.setdefault(suppression.target_line, set()).add(suppression.code)
    return suppressed


def lint_sources(
    sources: Mapping[str, str],
    *,
    rules: Optional[Sequence["Rule"]] = None,
    report_unused_suppressions: bool = False,
) -> List[Finding]:
    """Lint a set of sources together, sharing one call-graph project.

    ``sources`` maps (repo-relative) paths to source text.  All files are
    parsed up front and indexed into a single
    :class:`~repro.analysis.callgraph.Project`, so flow-aware rules see
    cross-module call chains.  With ``report_unused_suppressions``, every
    ``disable=`` comment that silenced nothing (for a code an active rule
    owns) yields an :data:`UNUSED_SUPPRESSION_CODE` finding at the comment.
    """
    from repro.analysis.callgraph import Project
    from repro.analysis.rules import RULES

    active: Sequence["Rule"] = RULES if rules is None else tuple(rules)
    trees: Dict[str, ast.Module] = {}
    texts: Dict[str, str] = {}
    for path, source in sources.items():
        rel = normalized_path(path)
        try:
            trees[rel] = ast.parse(source, filename=rel)
        except SyntaxError as exc:
            raise LintError(f"{rel}: could not parse: {exc}") from exc
        texts[rel] = source
    project = Project(trees)
    active_codes = {rule.code for rule in active}
    findings: List[Finding] = []
    for rel, tree in trees.items():
        suppressions = scan_suppressions(texts[rel])
        suppressed: Dict[int, Set[str]] = {}
        for suppression in suppressions:
            suppressed.setdefault(suppression.target_line, set()).add(suppression.code)
        used: Set[Tuple[int, str]] = set()
        for rule in active:
            if not rule.applies_to(rel):
                continue
            for finding in rule.check_project(project, tree, rel):
                if rule.code in suppressed.get(finding.line, set()):
                    used.add((finding.line, rule.code))
                    continue
                findings.append(finding)
        if report_unused_suppressions:
            for suppression in suppressions:
                if suppression.code not in active_codes:
                    continue
                if (suppression.target_line, suppression.code) in used:
                    continue
                findings.append(
                    Finding(
                        code=UNUSED_SUPPRESSION_CODE,
                        path=rel,
                        line=suppression.comment_line,
                        col=0,
                        message=(
                            f"suppression disable={suppression.code} no longer "
                            "silences any finding; delete it (stale suppressions "
                            "hide future regressions)"
                        ),
                    )
                )
    findings.sort(key=lambda item: (item.path, item.line, item.col, item.code))
    return findings


def lint_source(
    source: str,
    path: str,
    *,
    rules: Optional[Sequence["Rule"]] = None,
    report_unused_suppressions: bool = False,
) -> List[Finding]:
    """Lint one source text as if it lived at repo-relative ``path``.

    The fixture tests lean on the ``path`` parameter: the same snippet can be
    checked both inside and outside a rule's scope without touching disk.
    """
    return lint_sources(
        {path: source},
        rules=rules,
        report_unused_suppressions=report_unused_suppressions,
    )


def _is_skipped(path: Path) -> bool:
    parts = path.parts
    for needle in SKIPPED_DIR_PARTS:
        span = len(needle)
        for start in range(len(parts) - span + 1):
            if parts[start : start + span] == needle:
                return True
    return False


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Yield the ``.py`` files under ``paths`` (files pass through as-is)."""
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            if not _is_skipped(root):
                yield root
            continue
        if not root.exists():
            raise LintError(f"no such file or directory: {raw}")
        for candidate in sorted(root.rglob("*.py")):
            if not _is_skipped(candidate):
                yield candidate


def lint_paths(
    paths: Iterable[str],
    *,
    rules: Optional[Sequence["Rule"]] = None,
    report_unused_suppressions: bool = False,
) -> List[Finding]:
    """Lint every Python file under ``paths`` and return the merged findings."""
    sources: Dict[str, str] = {}
    for file_path in iter_python_files(paths):
        try:
            sources[str(file_path)] = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"{file_path}: could not read: {exc}") from exc
    return lint_sources(
        sources,
        rules=rules,
        report_unused_suppressions=report_unused_suppressions,
    )
