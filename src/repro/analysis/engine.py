"""Core of ``repro-lint``: findings, suppressions and the file walker.

The linter is deliberately small: one :func:`ast.parse` per file, one
independent AST walk per rule (see :mod:`repro.analysis.rules`), and a
line-oriented suppression scanner.  Rules are *path scoped* — each rule
declares which repo-relative paths it guards (``applies_to``), so the same
source text can be legal in one module and a violation in another (e.g.
``pickle.loads`` inside the transport trust boundary vs. anywhere else).

Suppression syntax
------------------
A violation is silenced by a ``# repro-lint: disable=RPLxxx`` comment either
on the flagged line itself or on a comment-only line directly above it::

    # repro-lint: disable=RPL003 -- documented float64 result contract
    return distances.astype(np.float64, copy=False)

Several codes may be listed, comma separated.  Suppressions are expected to
carry an inline justification after the code list; the linter does not parse
the prose, but review does.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "LintError",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "suppressed_codes_by_line",
]

#: Directories whose contents are never linted by the directory walker.
#: ``tests/fixtures/lint`` holds the deliberately-bad rule fixtures; linting
#: them through the walker would make the repo self-check unsatisfiable (the
#: per-rule tests lint them explicitly through :func:`lint_source` instead).
SKIPPED_DIR_PARTS: Tuple[Tuple[str, ...], ...] = (
    ("fixtures", "lint"),
    ("__pycache__",),
    (".git",),
)

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9,\s]+)")


class LintError(Exception):
    """Raised when a file cannot be linted at all (unreadable / syntax error)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    code: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """Human-readable one-liner in the ``path:line:col: CODE message`` shape."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (stable keys, machine consumable)."""
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def normalized_path(path: str) -> str:
    """Repo-relative POSIX form of ``path`` used for rule scoping."""
    return Path(path).as_posix().lstrip("./")


def suppressed_codes_by_line(source: str) -> Dict[int, Set[str]]:
    """Map line number → codes suppressed on that line.

    A suppression comment on a line with code applies to that line; a
    comment-only suppression line applies to the *next* line (chains of
    comment-only lines accumulate onto the first code line below them).
    """
    suppressed: Dict[int, Set[str]] = {}
    lines = source.splitlines()
    pending: Set[str] = set()
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        codes: Set[str] = set()
        if match is not None:
            codes = {code.strip() for code in match.group(1).split(",") if code.strip()}
        stripped = text.strip()
        comment_only = stripped.startswith("#")
        if comment_only:
            pending |= codes
            continue
        here = codes | pending
        pending = set()
        if here:
            suppressed.setdefault(lineno, set()).update(here)
    return suppressed


def lint_source(
    source: str,
    path: str,
    *,
    rules: Sequence[object] | None = None,
) -> List[Finding]:
    """Lint one source text as if it lived at repo-relative ``path``.

    The fixture tests lean on the ``path`` parameter: the same snippet can be
    checked both inside and outside a rule's scope without touching disk.
    """
    from repro.analysis.rules import RULES

    active = RULES if rules is None else tuple(rules)  # type: ignore[assignment]
    rel = normalized_path(path)
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as exc:
        raise LintError(f"{rel}: could not parse: {exc}") from exc
    suppressed = suppressed_codes_by_line(source)
    findings: List[Finding] = []
    for rule in active:
        if not rule.applies_to(rel):
            continue
        for finding in rule.check(tree, rel):
            if rule.code in suppressed.get(finding.line, set()):
                continue
            findings.append(finding)
    findings.sort(key=lambda item: (item.path, item.line, item.col, item.code))
    return findings


def _is_skipped(path: Path) -> bool:
    parts = path.parts
    for needle in SKIPPED_DIR_PARTS:
        span = len(needle)
        for start in range(len(parts) - span + 1):
            if parts[start : start + span] == needle:
                return True
    return False


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Yield the ``.py`` files under ``paths`` (files pass through as-is)."""
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            if not _is_skipped(root):
                yield root
            continue
        if not root.exists():
            raise LintError(f"no such file or directory: {raw}")
        for candidate in sorted(root.rglob("*.py")):
            if not _is_skipped(candidate):
                yield candidate


def lint_paths(paths: Iterable[str]) -> List[Finding]:
    """Lint every Python file under ``paths`` and return the merged findings."""
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"{file_path}: could not read: {exc}") from exc
        findings.extend(lint_source(source, str(file_path)))
    return findings
