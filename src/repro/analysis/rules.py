"""The ``repro-lint`` rule set (codes ``RPL001`` … ``RPL008``).

Every rule guards one invariant that the test-suite folklore and module
docstrings previously carried as prose.  Each rule class documents *which*
invariant it enforces, *where* it applies (rules are path scoped — code that
is the documented implementation of an invariant is exempt from the rule
that guards its callers), and *what* a legitimate exception looks like
(those sites carry inline ``# repro-lint: disable=RPLxxx`` suppressions with
a justification).

The registry is :data:`RULES`; ``repro-lint --list-rules`` renders it so new
rules are discoverable without reading this file.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

from repro.analysis.engine import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.analysis.callgraph import Project

__all__ = ["Rule", "RULES", "rules_by_code"]

#: dtype spellings that denote index/mask arrays.  Converting *those* in the
#: hot path is bookkeeping, not a data-matrix copy, so RPL003 permits them.
_INDEX_DTYPES = frozenset(
    {
        "intp",
        "int8",
        "int16",
        "int32",
        "int64",
        "uint8",
        "uint16",
        "uint32",
        "uint64",
        "bool_",
        "int",
        "bool",
    }
)

#: Function names that form the descent/scoring hot path for RPL003.
_HOT_FUNCTIONS = frozenset(
    {"assign_arrays", "assign_entries", "frontier_descent", "descend", "decision_scores"}
)


def _repro_rel(path: str) -> Optional[str]:
    """Path relative to the ``repro`` package root, or ``None`` if outside it."""
    marker = "src/repro/"
    index = path.find(marker)
    if index >= 0:
        return path[index + len(marker) :]
    if path.startswith("repro/"):
        return path[len("repro/") :]
    return None


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted-name rendering of a Name/Attribute chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        prefix = _dotted(node.value)
        return f"{prefix}.{node.attr}" if prefix else node.attr
    return ""


def _is_index_dtype(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _INDEX_DTYPES
    if isinstance(node, ast.Attribute):
        return node.attr in _INDEX_DTYPES
    return False


class Rule:
    """Base class: a stable code, a path scope and an AST check."""

    code: str = ""
    name: str = ""
    #: Flow-aware rules set this; the engine still calls every rule through
    #: :meth:`check_project`, but the flag documents (and lets tools decide)
    #: which rules actually consume the shared project.
    requires_project: bool = False

    def applies_to(self, path: str) -> bool:
        raise NotImplementedError

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        raise NotImplementedError

    def check_project(
        self, project: "Project", tree: ast.Module, path: str
    ) -> Iterator[Finding]:
        """Project-aware entry point; syntactic rules ignore the project."""
        return self.check(tree, path)

    def summary(self) -> str:
        """First line of the rule docstring (used by ``--list-rules``)."""
        doc = (self.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else self.name

    def _finding(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            code=self.code,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class AtomicArtifactWrites(Rule):
    """Artifact/JSON writes must go through the atomic writers.

    ``write_json_atomic`` / ``write_npz_atomic`` (temp file + fsync +
    ``os.replace``) are the only crash-safe way to publish a model or
    results artifact; a raw ``json.dump`` / ``np.savez`` /
    ``write_text(json.dumps(...))`` can leave a truncated file that a later
    ``load_detector`` half-parses.  The writers themselves live in
    ``repro.core.serialization`` and ``repro.utils.mmapio``, which are
    exempt.
    """

    code = "RPL001"
    name = "atomic-artifact-writes"

    _EXEMPT = ("core/serialization.py", "utils/mmapio.py")

    def applies_to(self, path: str) -> bool:
        rel = _repro_rel(path)
        return rel is not None and rel not in self._EXEMPT

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            callee = _dotted(node.func)
            if callee in ("json.dump", "np.savez", "np.savez_compressed", "numpy.savez",
                          "numpy.savez_compressed"):
                yield self._finding(
                    path,
                    node,
                    f"raw {callee}() is not crash safe; route the write through "
                    "write_json_atomic()/write_npz_atomic()",
                )
                continue
            if isinstance(node.func, ast.Attribute) and node.func.attr == "write_text":
                for arg in node.args:
                    for inner in ast.walk(arg):
                        if isinstance(inner, ast.Call) and _dotted(inner.func) in (
                            "json.dumps",
                        ):
                            yield self._finding(
                                path,
                                node,
                                "write_text(json.dumps(...)) is not crash safe; use "
                                "write_json_atomic() or atomic_write()",
                            )
                            break


class PickleTrustBoundary(Rule):
    """``pickle`` deserialization is confined to ``serving/transport.py``.

    ``recv_frame`` is the one documented trust boundary where pickled bytes
    enter the process (framed, size-capped, from peers the operator
    configured).  A ``pickle.load(s)`` anywhere else silently widens that
    boundary to arbitrary files or sockets.
    """

    code = "RPL002"
    name = "pickle-trust-boundary"

    _LOADERS = frozenset({"load", "loads", "Unpickler"})

    def applies_to(self, path: str) -> bool:
        rel = _repro_rel(path)
        return rel is not None and rel != "serving/transport.py"

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                callee = _dotted(node.func)
                if callee in {f"pickle.{name}" for name in self._LOADERS}:
                    yield self._finding(
                        path,
                        node,
                        f"{callee}() outside serving/transport.py widens the pickle "
                        "trust boundary; deserialize via the framed transport only",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "pickle":
                bad = sorted(
                    alias.name for alias in node.names if alias.name in self._LOADERS
                )
                if bad:
                    yield self._finding(
                        path,
                        node,
                        f"importing {', '.join(bad)} from pickle outside "
                        "serving/transport.py widens the pickle trust boundary",
                    )


class HotPathDtypeConversion(Rule):
    """No float dtype conversions inside the descent/scoring hot path.

    The convert-once contract: input matrices are cast exactly once, at the
    ``check_array_2d(dtype=...)`` ingest boundary; after that the hot path
    (``assign_arrays`` / ``assign_entries`` / ``frontier_descent``) must
    operate on the arrays as-is, because an ``astype``/``asarray(dtype=...)``
    there silently copies the whole batch every call.  Index/mask dtype
    conversions (``intp``/``int64``/…) are bookkeeping and stay legal; the
    documented result-widening sites carry inline suppressions.
    """

    code = "RPL003"
    name = "hot-path-dtype-conversion"

    _MODULES = ("core/compiled.py", "serving/router.py", "serving/shards.py")
    _FACTORIES = ("np.asarray", "np.ascontiguousarray", "np.array", "numpy.asarray",
                  "numpy.ascontiguousarray", "numpy.array")

    def applies_to(self, path: str) -> bool:
        rel = _repro_rel(path)
        return rel in self._MODULES

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for outer in ast.walk(tree):
            if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if outer.name not in _HOT_FUNCTIONS:
                continue
            for node in ast.walk(outer):
                if not isinstance(node, ast.Call):
                    continue
                if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
                    target = node.args[0] if node.args else None
                    if target is not None and _is_index_dtype(target):
                        continue
                    yield self._finding(
                        path,
                        node,
                        f".astype() inside {outer.name}() re-copies the batch every "
                        "call; convert once at the check_array_2d ingest boundary",
                    )
                    continue
                if _dotted(node.func) in self._FACTORIES:
                    dtype_kw = next(
                        (kw for kw in node.keywords if kw.arg == "dtype"), None
                    )
                    if dtype_kw is not None and not _is_index_dtype(dtype_kw.value):
                        yield self._finding(
                            path,
                            node,
                            f"{_dotted(node.func)}(dtype=...) inside {outer.name}() "
                            "re-copies the batch every call; convert once at the "
                            "check_array_2d ingest boundary",
                        )


class SendLockDiscipline(Rule):
    """Socket sends in the transport tier happen under the send lock.

    The framed protocol multiplexes one socket across threads, so two
    interleaved writes corrupt the stream for good.  Discipline: raw
    ``sock.sendall``/``sock.send`` only inside ``send_frame`` (the framing
    helper), and every ``send_frame(...)`` call lexically inside a
    ``with <...lock...>:`` block.  Single-threaded setup paths (handshakes,
    before any reader thread exists) carry inline suppressions.
    """

    code = "RPL004"
    name = "send-lock-discipline"

    _MODULES = ("serving/transport.py", "serving/remote.py")

    def applies_to(self, path: str) -> bool:
        rel = _repro_rel(path)
        return rel in self._MODULES

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        findings: List[Finding] = []
        rule = self

        class Visitor(ast.NodeVisitor):
            def __init__(self) -> None:
                self.function_stack: List[str] = []
                self.lock_depth = 0

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                self._visit_function(node)

            def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
                self._visit_function(node)

            def _visit_function(self, node: ast.AST) -> None:
                self.function_stack.append(getattr(node, "name", "<anon>"))
                saved = self.lock_depth
                self.lock_depth = 0  # a nested def runs on its own thread/time
                self.generic_visit(node)
                self.lock_depth = saved
                self.function_stack.pop()

            def visit_With(self, node: ast.With) -> None:
                locked = any(
                    "lock" in _dotted(item.context_expr).lower()
                    or (
                        isinstance(item.context_expr, ast.Call)
                        and "lock" in _dotted(item.context_expr.func).lower()
                    )
                    for item in node.items
                )
                if locked:
                    self.lock_depth += 1
                self.generic_visit(node)
                if locked:
                    self.lock_depth -= 1

            def visit_Call(self, node: ast.Call) -> None:
                in_send_frame = "send_frame" in self.function_stack
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("send", "sendall")
                    and not in_send_frame
                ):
                    findings.append(
                        rule._finding(
                            path,
                            node,
                            f"raw socket .{node.func.attr}() outside send_frame() "
                            "bypasses the framing + send-lock discipline",
                        )
                    )
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "send_frame"
                    and self.lock_depth == 0
                ):
                    findings.append(
                        rule._finding(
                            path,
                            node,
                            "send_frame() outside a `with <send lock>:` block can "
                            "interleave frames from concurrent threads",
                        )
                    )
                self.generic_visit(node)

        Visitor().visit(tree)
        yield from findings


class FrozenDataclassSetattr(Rule):
    """``object.__setattr__`` on frozen dataclasses only in ``__post_init__``.

    The serving configuration layer is immutable by contract
    (hashable, safely shared across threads and pickled to workers).  The
    one sanctioned mutation window is ``__post_init__`` normalisation;
    anywhere else, ``object.__setattr__`` is a hole punched through
    ``frozen=True``.  ``__setstate__`` rehydration carries an inline
    suppression where it is legitimate.
    """

    code = "RPL005"
    name = "frozen-dataclass-setattr"

    def applies_to(self, path: str) -> bool:
        return _repro_rel(path) is not None

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        findings: List[Finding] = []
        rule = self

        class Visitor(ast.NodeVisitor):
            def __init__(self) -> None:
                self.function_stack: List[str] = []

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                self.function_stack.append(node.name)
                self.generic_visit(node)
                self.function_stack.pop()

            def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
                self.function_stack.append(node.name)
                self.generic_visit(node)
                self.function_stack.pop()

            def visit_Call(self, node: ast.Call) -> None:
                if (
                    _dotted(node.func) == "object.__setattr__"
                    and "__post_init__" not in self.function_stack
                ):
                    findings.append(
                        rule._finding(
                            path,
                            node,
                            "object.__setattr__ outside __post_init__ defeats "
                            "frozen=True; construct a new instance instead",
                        )
                    )
                self.generic_visit(node)

        Visitor().visit(tree)
        yield from findings


class KernelProviderSeam(Rule):
    """Kernel providers are resolved only through ``repro.core.kernels``.

    The fused providers (numba JIT, the C compile-and-ctypes path) are
    optional accelerators behind one seam: ``kernels.resolve_engine`` /
    ``kernels.fused_descent``.  Importing ``repro.core._numba_kernels`` or
    ``numba`` anywhere else couples callers to a provider that may not exist
    in the deployment and skips the probe/degrade policy.
    """

    code = "RPL006"
    name = "kernel-provider-seam"

    _EXEMPT = ("core/kernels.py", "core/_numba_kernels.py")

    def applies_to(self, path: str) -> bool:
        rel = _repro_rel(path)
        return rel is not None and rel not in self._EXEMPT

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if alias.name == "repro.core._numba_kernels" or root == "numba":
                        yield self._finding(
                            path,
                            node,
                            f"import {alias.name}: kernel providers are reached "
                            "through the repro.core.kernels seam only",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module in ("repro.core._numba_kernels", "numba") or module.startswith(
                    "numba."
                ):
                    yield self._finding(
                        path,
                        node,
                        f"from {module} import ...: kernel providers are reached "
                        "through the repro.core.kernels seam only",
                    )
                elif module == "repro.core" and any(
                    alias.name == "_numba_kernels" for alias in node.names
                ):
                    yield self._finding(
                        path,
                        node,
                        "from repro.core import _numba_kernels: kernel providers "
                        "are reached through the repro.core.kernels seam only",
                    )


class ServingExceptionWrap(Rule):
    """Broad handlers in ``serving/`` re-raise or wrap into the error surface.

    The serving stack promises callers one error surface: failures arrive as
    :class:`ReproError` subclasses (``ServingError``/``TransportError``)
    naming the backend, shard and batch.  An ``except Exception`` that
    neither re-raises nor mentions an error-surface class swallows pool and
    transport internals.  Reply-path handlers on the worker (failures become
    error frames the coordinator re-raises) carry inline suppressions.
    """

    code = "RPL007"
    name = "serving-exception-wrap"

    def applies_to(self, path: str) -> bool:
        rel = _repro_rel(path)
        return rel is not None and rel.startswith("serving/")

    @staticmethod
    def _is_broad(handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        return isinstance(handler.type, ast.Name) and handler.type.id in (
            "Exception",
            "BaseException",
        )

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler) or not self._is_broad(node):
                continue
            ok = False
            for stmt in node.body:
                for inner in ast.walk(stmt):
                    if isinstance(inner, ast.Raise):
                        ok = True
                    elif isinstance(inner, ast.Name) and inner.id.endswith("Error"):
                        ok = True
                    elif isinstance(inner, ast.Attribute) and inner.attr.endswith("Error"):
                        ok = True
                    if ok:
                        break
                if ok:
                    break
            if not ok:
                yield self._finding(
                    path,
                    node,
                    "broad except in serving/ must re-raise or wrap the failure "
                    "in ServingError/TransportError (one error surface)",
                )


class PoolConfinement(Rule):
    """Worker pools are created only by the backend seam.

    ``backends.make_backend`` and ``ServingPlan.build_backend`` own pool
    construction: sizing (``usable_workers``), fork-context selection, the
    close/rebuild-on-broken policy and the strict/degrade fallbacks.  A pool
    spun up elsewhere escapes all of that.  The worker server's
    per-connection task pool is the documented exception and carries an
    inline suppression.
    """

    code = "RPL008"
    name = "pool-confinement"

    _EXEMPT = ("serving/backends.py", "serving/config.py")
    _POOLS = frozenset({"ThreadPoolExecutor", "ProcessPoolExecutor", "Pool", "ThreadPool"})

    def applies_to(self, path: str) -> bool:
        rel = _repro_rel(path)
        return rel is not None and rel not in self._EXEMPT

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = ""
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            if name in self._POOLS:
                yield self._finding(
                    path,
                    node,
                    f"{name}() outside backends.make_backend()/"
                    "ServingPlan.build_backend() escapes pool sizing and "
                    "lifecycle policy",
                )


# The flow-aware concurrency family (RPL009+) lives in its own module but
# registers here so every consumer sees one registry.  The import sits at the
# bottom on purpose: ``concurrency`` imports :class:`Rule` from this module,
# which is already defined by the time this line runs (the package
# ``__init__`` imports ``rules`` before ``concurrency`` is reachable).
from repro.analysis.concurrency import CONCURRENCY_RULES  # noqa: E402

RULES: Tuple[Rule, ...] = (
    AtomicArtifactWrites(),
    PickleTrustBoundary(),
    HotPathDtypeConversion(),
    SendLockDiscipline(),
    FrozenDataclassSetattr(),
    KernelProviderSeam(),
    ServingExceptionWrap(),
    PoolConfinement(),
    *CONCURRENCY_RULES,
)


def rules_by_code() -> dict[str, Rule]:
    """Stable code → rule mapping (the programmatic registry surface)."""
    return {rule.code: rule for rule in RULES}
