"""The flow-aware concurrency rule family (``RPL009`` … ``RPL014``).

These rules guard the invariants of the thread+asyncio hybrid serving stack
(PR 9): the event loop must never block, threading locks must never be held
across a suspension point, acquisition order must be globally consistent,
task handles must be kept, and loop state must only be touched from the
loop thread.  None of them is expressible as a per-node pattern — they all
consume the :mod:`repro.analysis.cfg` dataflow or the
:mod:`repro.analysis.callgraph` context propagation, which is what this
family buys over the syntactic RPL001–RPL008 rules.

Each rule here sets ``requires_project = True``: when linting a file set,
the engine hands every rule one shared :class:`~repro.analysis.callgraph.Project`
over *all* parsed files, so a coroutine in ``gateway.py`` calling a blocking
helper in ``transport.py`` is still caught.  Under plain single-file
``lint_source`` the rules degrade gracefully to a one-module project.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.callgraph import FunctionInfo, Project, dotted_name
from repro.analysis.cfg import build_cfg, held_lock_states, node_await
from repro.analysis.engine import Finding
from repro.analysis.rules import Rule, _repro_rel

__all__ = ["CONCURRENCY_RULES", "ConcurrencyRule"]

#: asyncio-object methods that mutate loop-affine state and are therefore
#: only legal on the loop thread.  The thread-safe bridges
#: (``call_soon_threadsafe``, ``run_coroutine_threadsafe``) are deliberately
#: absent — calling those from a foreign thread is the documented fix.
_LOOP_MUTATORS = frozenset(
    {
        "call_soon",
        "cancel",
        "clear",
        "create_task",
        "get_nowait",
        "put",
        "put_nowait",
        "set",
        "set_exception",
        "set_result",
        "stop",
    }
)

#: The sanctioned thread→loop bridge entry points.
_THREADSAFE_BRIDGES = frozenset({"call_soon_threadsafe", "run_coroutine_threadsafe"})


def _chain(names: Tuple[str, ...]) -> str:
    return " -> ".join(f"{name}()" for name in names)


class ConcurrencyRule(Rule):
    """Base for the flow-aware family: project-scoped, serving-wide."""

    requires_project = True

    def applies_to(self, path: str) -> bool:
        return _repro_rel(path) is not None

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        # Single-file fallback: a project of one module.  Cross-module
        # context is lost, but every intra-module violation still fires.
        yield from self.check_project(Project({path: tree}), tree, path)

    def check_project(
        self, project: Project, tree: ast.Module, path: str
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def _module_functions(self, project: Project, path: str) -> List[FunctionInfo]:
        module = project.modules.get(path)
        return list(module.all_functions) if module is not None else []


class CoroutineBlockingCall(ConcurrencyRule):
    """No blocking call is reachable from a coroutine (event-loop stall).

    A coroutine runs on the event-loop thread; any ``time.sleep``, sync
    socket op, sync ``send_frame``/``recv_frame`` (or ``read_frame``/
    ``write_frame``) or direct ``detect()`` inside it — **including through
    sync helper functions, via the call graph** — stalls every other request
    on the loop for the full duration.  The fix is the async twin
    (``async_recv_frame`` …) or a ``loop.run_in_executor`` hop, which is
    exactly how ``gateway.py`` runs the model.  ``await``-ed calls are
    exempt (they suspend instead of blocking).
    """

    code = "RPL009"
    name = "coroutine-blocking-call"

    def check_project(
        self, project: Project, tree: ast.Module, path: str
    ) -> Iterator[Finding]:
        for fn in self._module_functions(project, path):
            if not fn.is_async:
                continue
            reported: Set[int] = set()
            for call, descr in project.blocking_calls(fn):
                reported.add(id(call))
                yield self._finding(
                    path,
                    call,
                    f"blocking {descr} inside async def {fn.name}() stalls the "
                    "event loop; use the async twin or loop.run_in_executor()",
                )
            for call, callee in project.call_edges(fn):
                if callee.is_async or id(call) in reported:
                    continue
                chain = project.blocking_chain(callee)
                if chain is None:
                    continue
                names, descr = chain
                reported.add(id(call))
                yield self._finding(
                    path,
                    call,
                    f"call to {callee.display}() blocks the event loop via "
                    f"{_chain(names)} reaching {descr}; hop via run_in_executor() "
                    "or make the helper async",
                )
            awaited = project.awaited_calls_in(fn)
            for call in project.calls_in(fn):
                if id(call) in reported or id(call) in awaited:
                    continue
                if (
                    isinstance(call.func, ast.Attribute)
                    and call.func.attr == "detect"
                ):
                    resolved = project.resolve_callable(call.func, fn)
                    if resolved is not None and resolved.is_async:
                        continue
                    yield self._finding(
                        path,
                        call,
                        f"direct {dotted_name(call.func)}() inside async def "
                        f"{fn.name}() runs the model on the event-loop thread; "
                        "dispatch it via loop.run_in_executor()",
                    )


class AwaitHoldingThreadLock(ConcurrencyRule):
    """No ``await`` while a ``threading`` lock is held.

    A suspension point parks the coroutine for an unbounded time while the
    OS lock stays locked, so every *thread* contending for it stalls — and
    if one of those threads is needed to complete the awaited future, the
    process deadlocks.  The CFG dataflow makes this flow-sensitive: an
    ``await`` between ``lock.acquire()`` and ``lock.release()`` is flagged
    even without a lexical ``with`` block, and an ``await`` after the
    release is not.  ``asyncio.Lock`` held via ``async with`` is the
    legitimate pattern and is never flagged.
    """

    code = "RPL010"
    name = "await-holding-thread-lock"

    def check_project(
        self, project: Project, tree: ast.Module, path: str
    ) -> Iterator[Finding]:
        for fn in self._module_functions(project, path):
            if not fn.is_async:
                continue

            def lock_of(expr: ast.expr, fn: FunctionInfo = fn) -> Optional[str]:
                return project.threading_lock_id(expr, fn)

            cfg = build_cfg(fn.node)
            entry_sets = held_lock_states(cfg, lock_of)
            for node in cfg.nodes:
                suspends = node_await(node)
                if suspends is None:
                    continue
                held = entry_sets[node.index]
                if not held:
                    continue
                yield self._finding(
                    path,
                    suspends,
                    f"await while holding threading lock "
                    f"{', '.join(sorted(held))} stalls every contending thread "
                    "for the whole suspension; release first or use asyncio.Lock",
                )


class LockOrderCycle(ConcurrencyRule):
    """Lock acquisition order is globally consistent (no A→B / B→A cycles).

    The project-wide lock graph records every site where one threading lock
    is taken while another is held — lexically nested ``with`` blocks *and*
    calls whose (transitive) callees acquire locks.  Any edge that sits on a
    cycle is a potential deadlock the moment two threads interleave; the
    rule flags each participating edge at its acquisition site so both
    halves of the inversion are visible.
    """

    code = "RPL011"
    name = "lock-order-cycle"

    def check_project(
        self, project: Project, tree: ast.Module, path: str
    ) -> Iterator[Finding]:
        seen: Set[Tuple[int, int, str, str]] = set()
        for edge in project.lock_cycle_edges():
            if edge.path != path:
                continue
            key = (edge.line, edge.col, edge.source, edge.target)
            if key in seen:
                continue
            seen.add(key)
            yield Finding(
                code=self.code,
                path=path,
                line=edge.line,
                col=edge.col,
                message=(
                    f"lock-order cycle: {edge.target} acquired (via {edge.via}) "
                    f"while holding {edge.source}, but the opposite order exists "
                    "elsewhere; pick one global acquisition order"
                ),
            )


class DroppedCreateTask(ConcurrencyRule):
    """``asyncio.create_task`` handles are kept, not fire-and-forgotten.

    The event loop holds only a *weak* reference to tasks; a
    ``create_task(...)`` whose result is discarded can be garbage-collected
    mid-flight and silently vanish (with its exceptions).  Keep the handle
    (assign it, add it to a set with a done-callback) or use a
    ``TaskGroup``, whose tasks are owned by the group.
    """

    code = "RPL012"
    name = "dropped-create-task"

    def check_project(
        self, project: Project, tree: ast.Module, path: str
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Expr) or not isinstance(node.value, ast.Call):
                continue
            call = node.value
            func = call.func
            terminal = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id
                if isinstance(func, ast.Name)
                else ""
            )
            if terminal != "create_task":
                continue
            if isinstance(func, ast.Attribute):
                receiver = dotted_name(func.value).lower()
                # TaskGroup.create_task is owned by the group: not dropped.
                if "group" in receiver or receiver == "tg":
                    continue
            yield self._finding(
                path,
                call,
                "create_task() handle discarded; the loop only keeps a weak "
                "reference, so the task can be garbage-collected mid-flight — "
                "store the handle or use asyncio.TaskGroup",
            )


class LoopStateFromForeignThread(ConcurrencyRule):
    """Loop-affine asyncio state is only mutated from the loop thread.

    asyncio primitives (queues, events, futures, the loop itself) are not
    thread safe; the call graph's thread-context propagation identifies
    functions that run as ``threading.Thread`` targets (reader threads,
    server loops), and any ``self.<asyncio attr>.<mutator>()`` there is a
    data race on loop internals.  Marshal onto the loop with
    ``loop.call_soon_threadsafe(...)`` / ``run_coroutine_threadsafe`` —
    those bridges are exempt, as are plain local objects the thread owns.
    """

    code = "RPL013"
    name = "loop-state-from-foreign-thread"

    def check_project(
        self, project: Project, tree: ast.Module, path: str
    ) -> Iterator[Finding]:
        thread_context = project.contexts()["thread"]
        for fn in self._module_functions(project, path):
            if fn.is_async:
                continue
            chain = thread_context.get(fn.qualname)
            if chain is None:
                continue
            attrs = project.asyncio_attrs_of(fn)
            if not attrs:
                continue
            for call in project.calls_in(fn):
                func = call.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr not in _LOOP_MUTATORS:
                    continue
                receiver = dotted_name(func.value)
                if not receiver.startswith("self."):
                    continue
                attr = receiver.split(".", 1)[1].split(".", 1)[0]
                if attr not in attrs:
                    continue
                yield self._finding(
                    path,
                    call,
                    f"self.{attr}.{func.attr}() runs on a foreign thread "
                    f"({_chain(chain)} is a Thread target); asyncio state is "
                    "loop-affine — marshal via loop.call_soon_threadsafe()",
                )


class ExecutorTouchesAsyncio(ConcurrencyRule):
    """Executor callables do not touch asyncio primitives.

    Functions handed to ``pool.submit`` / ``loop.run_in_executor`` run on a
    worker thread; the whole point of the hop is to keep blocking work *off*
    the loop, so reaching back into ``asyncio.*`` or loop-affine ``self``
    attributes from inside one re-introduces the race the hop removed.
    Results come back through the returned future; anything else must go
    through ``call_soon_threadsafe``/``run_coroutine_threadsafe``.
    """

    code = "RPL014"
    name = "executor-touches-asyncio"

    def check_project(
        self, project: Project, tree: ast.Module, path: str
    ) -> Iterator[Finding]:
        executor_context = project.contexts()["executor"]
        for fn in self._module_functions(project, path):
            if fn.is_async:
                continue
            chain = executor_context.get(fn.qualname)
            if chain is None:
                continue
            attrs = project.asyncio_attrs_of(fn)
            for call in project.calls_in(fn):
                func = call.func
                name = dotted_name(func)
                terminal = func.attr if isinstance(func, ast.Attribute) else name
                if terminal in _THREADSAFE_BRIDGES:
                    continue
                touched = ""
                if name.startswith("asyncio."):
                    touched = f"{name}()"
                elif isinstance(func, ast.Attribute):
                    receiver = dotted_name(func.value)
                    if receiver.startswith("self."):
                        attr = receiver.split(".", 1)[1].split(".", 1)[0]
                        if attr in attrs:
                            touched = f"self.{attr}"
                if not touched:
                    continue
                yield self._finding(
                    path,
                    call,
                    f"executor callable {fn.display}() ({_chain(chain)} runs in "
                    f"an executor) touches asyncio primitive {touched}; hand "
                    "results back via the future or call_soon_threadsafe()",
                )


CONCURRENCY_RULES: Tuple[Rule, ...] = (
    CoroutineBlockingCall(),
    AwaitHoldingThreadLock(),
    LockOrderCycle(),
    DroppedCreateTask(),
    LoopStateFromForeignThread(),
    ExecutorTouchesAsyncio(),
)
