"""Project-wide call graph with execution-context propagation.

The serving stack is a thread+asyncio hybrid, and its failure modes are
*transitive*: a coroutine that calls a helper that calls ``time.sleep``
stalls the event loop just as surely as a direct call — but a per-node AST
rule only sees the helper call.  :class:`Project` closes that gap: it
indexes every function in the linted file set, resolves call edges between
them, and propagates three execution contexts along those edges:

* **coroutine** — seeded by every ``async def``; everything it (sync-)calls
  runs on the event-loop thread inside a coroutine;
* **thread** — seeded by ``threading.Thread(target=...)`` targets (reader
  threads, server loops); their sync callees run off the loop;
* **executor** — seeded by ``pool.submit(fn, ...)`` and
  ``loop.run_in_executor(executor, fn, ...)`` callables.

Context transfer points (``Thread(target=)``, ``submit``,
``run_in_executor``) deliberately do **not** propagate the caller's context
— handing a blocking function to an executor is the sanctioned fix, not a
violation.

Edge resolution is conservative by construction: an edge exists only when
the callee is unambiguous — a nested/same-module function, a ``self.``/
``cls.`` method of the enclosing class (bases included), or a project-unique
name.  A name defined twice (``close``, ``run``, ``detect`` …) resolves to
nothing rather than to everything, so the flow rules over-warn only behind
explicit registries, never through wild aliasing.

On top of the same index sit the lock facts the concurrency rules need:
which ``self.<attr>`` names hold asyncio primitives vs. ``threading`` locks
(from ``__init__`` assignments, dataclass fields and annotations), which
functions acquire which locks, and the project-wide lock-order graph with
its cycles (RPL011).
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.cfg import FunctionNode, scoped_children

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "LockEdge",
    "ModuleInfo",
    "Project",
    "dotted_name",
]

#: ``threading`` constructors that produce ``with``-able locks.
_THREADING_LOCKS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

#: Dotted-call prefixes that are definitely not project functions; resolving
#: their terminal attribute against the project index would be noise.
_EXTERNAL_PREFIXES = (
    "asyncio.",
    "threading.",
    "socket.",
    "time.",
    "os.",
    "np.",
    "numpy.",
    "json.",
    "pickle.",
    "struct.",
    "ast.",
)

#: Calls that block the calling thread.  ``RPL009`` flags these when they
#: are reachable from a coroutine.  Method names are matched on any
#: receiver (``sock.recv``, ``future.result``); bare names cover the
#: project's own sync framing helpers (and their paper-text aliases
#: ``read_frame``/``write_frame``) even when the call does not resolve.
_BLOCKING_DOTTED = frozenset({"time.sleep", "socket.create_connection"})
_BLOCKING_METHODS = frozenset({"accept", "recv", "recv_into", "result", "sendall", "sendto"})
_BLOCKING_NAMES = frozenset({"read_frame", "recv_frame", "send_frame", "write_frame"})


def dotted_name(node: ast.AST) -> str:
    """Best-effort dotted rendering of a Name/Attribute chain ("" otherwise)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        prefix = dotted_name(node.value)
        return f"{prefix}.{node.attr}" if prefix else node.attr
    return ""


def _terminal_name(node: ast.AST) -> str:
    """The last path component of a call target (``a.b.c`` → ``c``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


@dataclass
class FunctionInfo:
    """One ``def``/``async def`` anywhere in the project (methods, nested)."""

    qualname: str
    name: str
    path: str
    node: FunctionNode
    class_name: Optional[str] = None
    parent: Optional["FunctionInfo"] = None
    is_async: bool = False
    nested: Dict[str, "FunctionInfo"] = field(default_factory=dict)

    @property
    def display(self) -> str:
        """Human name for witness chains: ``Class.method`` or ``function``."""
        if self.class_name is not None and self.parent is None:
            return f"{self.class_name}.{self.name}"
        return self.name


@dataclass
class ClassInfo:
    """One class: its methods plus the attribute typing facts rules need."""

    name: str
    path: str
    node: ast.ClassDef
    bases: Tuple[str, ...]
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Attributes assigned/annotated with asyncio primitives
    #: (``self._queue = asyncio.Queue()``, ``x: asyncio.Event``, …).
    asyncio_attrs: Set[str] = field(default_factory=set)
    #: Attribute → ``"threading"`` | ``"asyncio"`` for known lock objects.
    lock_attrs: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One linted file: its tree plus the indexed functions and classes."""

    path: str
    tree: ast.Module
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    all_functions: List[FunctionInfo] = field(default_factory=list)


@dataclass(frozen=True)
class LockEdge:
    """One observed acquisition order: ``source`` held while taking ``target``."""

    source: str
    target: str
    path: str
    line: int
    col: int
    #: How the inner acquisition happens: "nested with" or "call to f()".
    via: str


class Project:
    """The indexed file set all flow-aware rules share (see module docstring).

    Construction only builds the cheap per-module index; call edges,
    execution contexts, blocking closures and the lock graph are computed
    lazily and memoized, so a purely syntactic lint pays nothing for them.
    """

    def __init__(self, modules: Mapping[str, ast.Module]) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self._functions_by_name: Dict[str, List[FunctionInfo]] = {}
        self._classes_by_name: Dict[str, List[ClassInfo]] = {}
        for path, tree in modules.items():
            self._index_module(path, tree)
        self._edges: Dict[str, List[Tuple[ast.Call, FunctionInfo]]] = {}
        self._blocking: Dict[str, Optional[Tuple[Tuple[str, ...], str]]] = {}
        self._acquired: Dict[str, Set[str]] = {}
        self._contexts: Optional[Dict[str, Dict[str, Tuple[str, ...]]]] = None
        self._cycle_edges: Optional[List[LockEdge]] = None

    # ------------------------------------------------------------------ #
    # indexing
    # ------------------------------------------------------------------ #
    def _index_module(self, path: str, tree: ast.Module) -> None:
        module = ModuleInfo(path=path, tree=tree)
        self.modules[path] = module
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(module, stmt, None, None)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(module, stmt)

    def _index_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        info = ClassInfo(
            name=node.name,
            path=module.path,
            node=node,
            bases=tuple(
                _terminal_name(base) for base in node.bases if _terminal_name(base)
            ),
        )
        module.classes[node.name] = info
        self._classes_by_name.setdefault(node.name, []).append(info)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(module, stmt, info, None)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                self._classify_attr(info, stmt.target.id, stmt.annotation, stmt.value)
        # `self.<attr> = ...` assignments anywhere in the class's methods
        # (constructors mostly, but re-assignments elsewhere count too).
        for method in list(info.methods.values()):
            for sub in ast.walk(method.node):
                if isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            self._classify_attr(info, target.attr, None, sub.value)
                elif isinstance(sub, ast.AnnAssign):
                    target = sub.target
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        self._classify_attr(info, target.attr, sub.annotation, sub.value)

    def _classify_attr(
        self,
        info: ClassInfo,
        attr: str,
        annotation: Optional[ast.expr],
        value: Optional[ast.expr],
    ) -> None:
        """Record what kind of object ``self.<attr>`` holds, if provable."""
        constructor = ""
        if isinstance(value, ast.Call):
            constructor = dotted_name(value.func)
            if constructor in ("field", "dataclasses.field"):
                factory = next(
                    (kw.value for kw in value.keywords if kw.arg == "default_factory"),
                    None,
                )
                constructor = dotted_name(factory) if factory is not None else ""
        annotated = ""
        if annotation is not None:
            try:
                annotated = ast.unparse(annotation)
            except ValueError:  # pragma: no cover - malformed annotation
                annotated = ""
        if constructor.startswith("asyncio.") or "asyncio." in annotated:
            info.asyncio_attrs.add(attr)
            if constructor == "asyncio.Lock" or "asyncio.Lock" in annotated:
                info.lock_attrs[attr] = "asyncio"
            return
        if (
            constructor.startswith("threading.")
            and constructor.split(".")[-1] in _THREADING_LOCKS
        ):
            info.lock_attrs[attr] = "threading"

    def _index_function(
        self,
        module: ModuleInfo,
        node: FunctionNode,
        cls: Optional[ClassInfo],
        parent: Optional[FunctionInfo],
    ) -> None:
        if parent is not None:
            qualname = f"{parent.qualname}.<locals>.{node.name}"
            class_name = parent.class_name
        elif cls is not None:
            qualname = f"{module.path}::{cls.name}.{node.name}"
            class_name = cls.name
        else:
            qualname = f"{module.path}::{node.name}"
            class_name = None
        info = FunctionInfo(
            qualname=qualname,
            name=node.name,
            path=module.path,
            node=node,
            class_name=class_name,
            parent=parent,
            is_async=isinstance(node, ast.AsyncFunctionDef),
        )
        module.all_functions.append(info)
        self._functions_by_name.setdefault(node.name, []).append(info)
        if parent is not None:
            parent.nested[node.name] = info
        elif cls is not None:
            cls.methods[node.name] = info
        else:
            module.functions[node.name] = info
        for child in self._direct_nested_defs(node):
            self._index_function(module, child, None, info)

    @staticmethod
    def _direct_nested_defs(node: FunctionNode) -> Iterator[FunctionNode]:
        for child in scoped_children(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def class_of(self, fn: FunctionInfo) -> Optional[ClassInfo]:
        if fn.class_name is None:
            return None
        return self._resolve_class(fn.path, fn.class_name)

    def _resolve_class(self, path: str, name: str) -> Optional[ClassInfo]:
        module = self.modules.get(path)
        if module is not None and name in module.classes:
            return module.classes[name]
        candidates = self._classes_by_name.get(name, [])
        return candidates[0] if len(candidates) == 1 else None

    def _mro(self, info: ClassInfo) -> List[ClassInfo]:
        """The class plus every project-resolvable base, breadth-first."""
        order: List[ClassInfo] = []
        seen: Set[str] = set()
        queue: deque[ClassInfo] = deque([info])
        while queue:
            current = queue.popleft()
            key = f"{current.path}::{current.name}"
            if key in seen:
                continue
            seen.add(key)
            order.append(current)
            for base in current.bases:
                resolved = self._resolve_class(current.path, base)
                if resolved is not None:
                    queue.append(resolved)
        return order

    def _lookup_method(self, fn: FunctionInfo, name: str) -> Optional[FunctionInfo]:
        cls = self.class_of(fn)
        if cls is None:
            return None
        for candidate in self._mro(cls):
            if name in candidate.methods:
                return candidate.methods[name]
        return None

    def asyncio_attrs_of(self, fn: FunctionInfo) -> Set[str]:
        """Asyncio-primitive attribute names visible on ``self`` inside ``fn``."""
        cls = self.class_of(fn)
        if cls is None:
            return set()
        names: Set[str] = set()
        for candidate in self._mro(cls):
            names |= candidate.asyncio_attrs
        return names

    def resolve_callable(
        self, expr: ast.AST, caller: FunctionInfo
    ) -> Optional[FunctionInfo]:
        """Resolve a call target / callable reference, or ``None`` if ambiguous."""
        if isinstance(expr, ast.Name):
            scope: Optional[FunctionInfo] = caller
            while scope is not None:
                if expr.id in scope.nested:
                    return scope.nested[expr.id]
                scope = scope.parent
            module = self.modules.get(caller.path)
            if module is not None and expr.id in module.functions:
                return module.functions[expr.id]
            candidates = self._functions_by_name.get(expr.id, [])
            return candidates[0] if len(candidates) == 1 else None
        if isinstance(expr, ast.Attribute):
            receiver = expr.value
            if (
                isinstance(receiver, ast.Name)
                and receiver.id in ("self", "cls")
                and caller.class_name is not None
            ):
                return self._lookup_method(caller, expr.attr)
            full = dotted_name(expr)
            if full.startswith(_EXTERNAL_PREFIXES):
                return None
            candidates = self._functions_by_name.get(expr.attr, [])
            return candidates[0] if len(candidates) == 1 else None
        return None

    # ------------------------------------------------------------------ #
    # calls, edges, transfers
    # ------------------------------------------------------------------ #
    @staticmethod
    def calls_in(fn: FunctionInfo) -> List[ast.Call]:
        """Every call in ``fn``'s own scope, in source order."""
        calls = [
            node for node in scoped_children(fn.node) if isinstance(node, ast.Call)
        ]
        calls.sort(key=lambda call: (call.lineno, call.col_offset))
        return calls

    @staticmethod
    def awaited_calls_in(fn: FunctionInfo) -> Set[int]:
        """``id()`` of every Call that is the direct operand of an ``await``."""
        return {
            id(node.value)
            for node in scoped_children(fn.node)
            if isinstance(node, ast.Await) and isinstance(node.value, ast.Call)
        }

    def call_edges(self, fn: FunctionInfo) -> List[Tuple[ast.Call, FunctionInfo]]:
        """Resolved ``(call site, callee)`` pairs for ``fn``, memoized."""
        cached = self._edges.get(fn.qualname)
        if cached is not None:
            return cached
        edges: List[Tuple[ast.Call, FunctionInfo]] = []
        for call in self.calls_in(fn):
            callee = self.resolve_callable(call.func, fn)
            if callee is not None and callee.qualname != fn.qualname:
                edges.append((call, callee))
        self._edges[fn.qualname] = edges
        return edges

    def transfer_targets(self, fn: FunctionInfo) -> List[Tuple[str, FunctionInfo]]:
        """Context-transfer seeds created inside ``fn``.

        Returns ``(kind, target)`` pairs where ``kind`` is ``"thread"``
        (``threading.Thread(target=...)``) or ``"executor"``
        (``pool.submit(fn, ...)`` / ``loop.run_in_executor(exec, fn, ...)``).
        """
        transfers: List[Tuple[str, FunctionInfo]] = []
        for call in self.calls_in(fn):
            name = dotted_name(call.func)
            target: Optional[ast.AST] = None
            kind = ""
            if name == "Thread" or name.endswith("threading.Thread") or name == "threading.Thread":
                keyword = next(
                    (kw.value for kw in call.keywords if kw.arg == "target"), None
                )
                target, kind = keyword, "thread"
            elif isinstance(call.func, ast.Attribute) and call.func.attr == "submit":
                if call.args:
                    target, kind = call.args[0], "executor"
            elif (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "run_in_executor"
                and len(call.args) >= 2
            ):
                target, kind = call.args[1], "executor"
            if target is None:
                continue
            resolved = self.resolve_callable(target, fn)
            if resolved is not None:
                transfers.append((kind, resolved))
        return transfers

    # ------------------------------------------------------------------ #
    # execution contexts
    # ------------------------------------------------------------------ #
    def contexts(self) -> Dict[str, Dict[str, Tuple[str, ...]]]:
        """``{"coroutine"|"thread"|"executor": {qualname: witness chain}}``.

        A witness chain is the display-name path from the seed to the
        function (``("DetectionGateway._handle_client", "_admit")`` …); it
        goes straight into finding messages so a reader can follow *why*
        the analyzer believes the function runs in that context.
        """
        if self._contexts is not None:
            return self._contexts
        coroutine_seeds: List[FunctionInfo] = []
        thread_seeds: List[FunctionInfo] = []
        executor_seeds: List[FunctionInfo] = []
        for module in self.modules.values():
            for fn in module.all_functions:
                if fn.is_async:
                    coroutine_seeds.append(fn)
                for kind, target in self.transfer_targets(fn):
                    if kind == "thread":
                        thread_seeds.append(target)
                    else:
                        executor_seeds.append(target)
        self._contexts = {
            "coroutine": self._propagate(coroutine_seeds),
            "thread": self._propagate(thread_seeds),
            "executor": self._propagate(executor_seeds),
        }
        return self._contexts

    def _propagate(
        self, seeds: Sequence[FunctionInfo]
    ) -> Dict[str, Tuple[str, ...]]:
        """BFS a context from ``seeds`` through sync call edges only.

        ``async def`` callees are never entered (calling one just builds a
        coroutine object; if it runs, it is a coroutine seed of its own),
        and transfer edges are not followed (handing work to a thread or an
        executor is a context *boundary*, not propagation).
        """
        chains: Dict[str, Tuple[str, ...]] = {}
        queue: deque[FunctionInfo] = deque()
        for seed in seeds:
            if seed.qualname not in chains:
                chains[seed.qualname] = (seed.display,)
                queue.append(seed)
        while queue:
            fn = queue.popleft()
            for _, callee in self.call_edges(fn):
                if callee.is_async or callee.qualname in chains:
                    continue
                chains[callee.qualname] = chains[fn.qualname] + (callee.display,)
                queue.append(callee)
        return chains

    # ------------------------------------------------------------------ #
    # blocking-call closure (RPL009)
    # ------------------------------------------------------------------ #
    def blocking_calls(self, fn: FunctionInfo) -> List[Tuple[ast.Call, str]]:
        """Direct blocking calls inside ``fn`` (awaited calls are exempt)."""
        awaited = self.awaited_calls_in(fn)
        sites: List[Tuple[ast.Call, str]] = []
        for call in self.calls_in(fn):
            if id(call) in awaited:
                continue
            name = dotted_name(call.func)
            terminal = _terminal_name(call.func)
            if name in _BLOCKING_DOTTED:
                sites.append((call, f"{name}()"))
            elif terminal in _BLOCKING_NAMES:
                sites.append((call, f"{terminal}()"))
            elif isinstance(call.func, ast.Attribute) and terminal in _BLOCKING_METHODS:
                sites.append((call, f".{terminal}()"))
        return sites

    def blocking_chain(
        self, fn: FunctionInfo
    ) -> Optional[Tuple[Tuple[str, ...], str]]:
        """``(call chain, blocking description)`` if ``fn`` can block, else ``None``.

        The chain starts at ``fn`` and follows resolved sync call edges down
        to the first function with a direct blocking call — the witness the
        RPL009 message prints.  Memoized; cycles terminate via the
        in-progress ``None`` sentinel.
        """
        if fn.qualname in self._blocking:
            return self._blocking[fn.qualname]
        self._blocking[fn.qualname] = None  # cycle guard
        result: Optional[Tuple[Tuple[str, ...], str]] = None
        sites = self.blocking_calls(fn)
        if sites:
            result = ((fn.display,), sites[0][1])
        else:
            for _, callee in self.call_edges(fn):
                if callee.is_async:
                    continue
                nested = self.blocking_chain(callee)
                if nested is not None:
                    result = ((fn.display,) + nested[0], nested[1])
                    break
        self._blocking[fn.qualname] = result
        return result

    # ------------------------------------------------------------------ #
    # lock identities and the lock-order graph (RPL010 / RPL011)
    # ------------------------------------------------------------------ #
    def threading_lock_id(
        self, expr: ast.AST, fn: FunctionInfo
    ) -> Optional[str]:
        """Stable identity of a *threading* lock expression, else ``None``.

        ``self.<attr>`` locks are class-qualified (the same lock object in
        every method); bare names are qualified by the outermost enclosing
        function (closures share their parent's locals); known asyncio locks
        are excluded.  Unknown attributes fall back to a name heuristic
        ("lock"/"mutex"), biased towards ``threading`` because that is the
        dangerous reading for every rule built on top.
        """
        name = dotted_name(expr)
        if not name:
            return None
        lockish = "lock" in name.lower() or "mutex" in name.lower()
        if name.startswith("self.") and name.count(".") == 1:
            attr = name.split(".", 1)[1]
            cls = self.class_of(fn)
            if cls is not None:
                for candidate in self._mro(cls):
                    kind = candidate.lock_attrs.get(attr)
                    if kind == "threading":
                        return f"{candidate.name}.{attr}"
                    if kind == "asyncio":
                        return None
                if attr in self.asyncio_attrs_of(fn):
                    return None
            if lockish:
                owner = fn.class_name or fn.qualname
                return f"{owner}.{attr}"
            return None
        if isinstance(expr, ast.Name) and lockish:
            root = fn
            while root.parent is not None:
                root = root.parent
            return f"{root.display}:{name}"
        return None

    def acquired_closure(self, fn: FunctionInfo) -> Set[str]:
        """Every threading lock ``fn`` may acquire, transitively."""
        cached = self._acquired.get(fn.qualname)
        if cached is not None:
            return cached
        self._acquired[fn.qualname] = set()  # cycle guard
        acquired, _, _ = self._lock_structure(fn)
        result = set(acquired)
        for _, callee in self.call_edges(fn):
            result |= self.acquired_closure(callee)
        self._acquired[fn.qualname] = result
        return result

    def _lock_structure(
        self, fn: FunctionInfo
    ) -> Tuple[
        Set[str],
        List[Tuple[str, str, ast.AST]],
        List[Tuple[Tuple[str, ...], ast.Call]],
    ]:
        """Lock facts of one function body.

        Returns ``(acquired, nested edges, calls-under-lock)`` where nested
        edges are lexical ``with A: with B:`` pairs and calls-under-lock
        records each call with the stack of locks held around it.
        """
        acquired: Set[str] = set()
        edges: List[Tuple[str, str, ast.AST]] = []
        calls_under: List[Tuple[Tuple[str, ...], ast.Call]] = []
        held: List[str] = []

        def visit(node: ast.AST) -> None:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
            ):
                return
            if isinstance(node, ast.With):
                taken: List[str] = []
                for item in node.items:
                    lock = self.threading_lock_id(item.context_expr, fn)
                    if lock is None:
                        continue
                    acquired.add(lock)
                    for outer in held:
                        edges.append((outer, lock, node))
                    taken.append(lock)
                held.extend(taken)
                for child in ast.iter_child_nodes(node):
                    visit(child)
                if taken:
                    del held[-len(taken):]
                return
            if isinstance(node, ast.Call) and held:
                calls_under.append((tuple(held), node))
            for child in ast.iter_child_nodes(node):
                visit(child)

        for stmt in fn.node.body:
            visit(stmt)
        return acquired, edges, calls_under

    def lock_edges(self) -> List[LockEdge]:
        """Every acquisition-order edge in the project, lexical + via calls."""
        edges: List[LockEdge] = []
        for module in self.modules.values():
            for fn in module.all_functions:
                _, lexical, calls_under = self._lock_structure(fn)
                for source, target, node in lexical:
                    edges.append(
                        LockEdge(
                            source=source,
                            target=target,
                            path=fn.path,
                            line=getattr(node, "lineno", 1),
                            col=getattr(node, "col_offset", 0),
                            via="nested with",
                        )
                    )
                for held, call in calls_under:
                    callee = self.resolve_callable(call.func, fn)
                    if callee is None:
                        continue
                    for target in sorted(self.acquired_closure(callee)):
                        for source in held:
                            if source == target:
                                continue
                            edges.append(
                                LockEdge(
                                    source=source,
                                    target=target,
                                    path=fn.path,
                                    line=call.lineno,
                                    col=call.col_offset,
                                    via=f"call to {callee.display}()",
                                )
                            )
        return edges

    def lock_cycle_edges(self) -> List[LockEdge]:
        """The subset of :meth:`lock_edges` that participates in a cycle."""
        if self._cycle_edges is not None:
            return self._cycle_edges
        edges = self.lock_edges()
        adjacency: Dict[str, Set[str]] = {}
        for edge in edges:
            adjacency.setdefault(edge.source, set()).add(edge.target)
        cyclic: List[LockEdge] = []
        for edge in edges:
            if edge.source == edge.target or self._reachable(
                edge.target, edge.source, adjacency
            ):
                cyclic.append(edge)
        self._cycle_edges = cyclic
        return cyclic

    @staticmethod
    def _reachable(
        start: str, goal: str, adjacency: Mapping[str, Set[str]]
    ) -> bool:
        seen: Set[str] = set()
        queue: deque[str] = deque([start])
        while queue:
            current = queue.popleft()
            if current == goal:
                return True
            if current in seen:
                continue
            seen.add(current)
            queue.extend(adjacency.get(current, ()))
        return False
