"""``repro-lint`` — the project-invariant linter's command line.

Run it over the tree (exit status 1 when findings exist, 2 on usage or
parse errors)::

    repro-lint src tests                 # human output
    repro-lint src --format json         # machine output (CI artifact)
    repro-lint --list-rules              # the rule registry

Equivalent without the console script: ``python -m repro.analysis ...``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis.engine import Finding, LintError, lint_paths
from repro.analysis.rules import RULES

__all__ = ["build_parser", "main", "render_findings", "rule_registry"]

#: Bumped when rules are added/changed so CI artifacts are comparable.
LINT_VERSION = "1.0.0"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST lint for repro project invariants (rules RPL001...)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (directories are walked for *.py)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (json is stable and machine readable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry (code, name, invariant) and exit",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro-lint {LINT_VERSION} ({len(RULES)} rules)",
    )
    return parser


def rule_registry() -> List[dict[str, str]]:
    """The registry as plain dicts — the programmatic discovery surface."""
    return [
        {"code": rule.code, "name": rule.name, "summary": rule.summary()}
        for rule in RULES
    ]


def render_findings(findings: Sequence[Finding], fmt: str) -> str:
    if fmt == "json":
        payload = {
            "version": LINT_VERSION,
            "rules": [rule.code for rule in RULES],
            "findings": [finding.to_dict() for finding in findings],
        }
        return json.dumps(payload, indent=2)
    if not findings:
        return "repro-lint: no findings"
    lines = [finding.render() for finding in findings]
    lines.append(f"repro-lint: {len(findings)} finding(s)")
    return "\n".join(lines)


def _render_rules(fmt: str) -> str:
    registry = rule_registry()
    if fmt == "json":
        return json.dumps({"version": LINT_VERSION, "rules": registry}, indent=2)
    width = max(len(entry["name"]) for entry in registry)
    return "\n".join(
        f"{entry['code']}  {entry['name']:<{width}}  {entry['summary']}"
        for entry in registry
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_render_rules(args.format))
        return 0
    if not args.paths:
        parser.error("no paths given (or use --list-rules)")
    try:
        findings = lint_paths(args.paths)
    except LintError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    print(render_findings(findings, args.format))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
