"""``repro-lint`` — the project-invariant linter's command line.

Run it over the tree (exit status 1 when findings exist, 2 on usage or
parse errors)::

    repro-lint src tests                       # human output
    repro-lint src --format json               # machine output (CI artifact)
    repro-lint src --select RPL009,RPL010      # one rule family only
    repro-lint --changed                       # git-modified files only
    repro-lint src --report-unused-suppressions
    repro-lint --list-rules                    # the rule registry

Equivalent without the console script: ``python -m repro.analysis ...``.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.engine import Finding, LintError, lint_paths
from repro.analysis.rules import RULES, Rule, rules_by_code

__all__ = ["build_parser", "changed_python_files", "main", "render_findings", "rule_registry"]

#: Bumped when rules are added/changed so CI artifacts are comparable.
#: 2.0.0: flow-aware engine, concurrency family RPL009–RPL014, stale
#: suppressions, ``--select`` / ``--changed``.
LINT_VERSION = "2.0.0"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST lint for repro project invariants (rules RPL001...)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (directories are walked for *.py)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (json is stable and machine readable)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all rules)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="lint only git-modified python files (instead of explicit paths)",
    )
    parser.add_argument(
        "--report-unused-suppressions",
        action="store_true",
        help="also report disable= comments that no longer silence anything "
        "(as RPL000 findings)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry (code, name, invariant) and exit",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro-lint {LINT_VERSION} ({len(RULES)} rules)",
    )
    return parser


def rule_registry() -> List[dict[str, str]]:
    """The registry as plain dicts — the programmatic discovery surface."""
    return [
        {"code": rule.code, "name": rule.name, "summary": rule.summary()}
        for rule in RULES
    ]


def changed_python_files() -> List[str]:
    """Python files git considers modified (staged, unstaged or untracked).

    Parses ``git status --porcelain``: deletions are skipped, renames
    (``old -> new``) resolve to the new path, and only paths that still
    exist as ``.py`` files are returned.
    """
    result = subprocess.run(
        ["git", "status", "--porcelain", "-uall"],
        capture_output=True,
        text=True,
        check=False,
    )
    if result.returncode != 0:
        raise LintError(
            f"git status failed: {result.stderr.strip() or result.returncode}"
        )
    files: List[str] = []
    for line in result.stdout.splitlines():
        if len(line) < 4:
            continue
        status, path = line[:2], line[3:]
        if "D" in status:
            continue
        if " -> " in path:
            path = path.split(" -> ", 1)[1]
        path = path.strip().strip('"')
        if path.endswith(".py") and Path(path).is_file():
            files.append(path)
    return sorted(files)


def _selected_rules(
    parser: argparse.ArgumentParser, select: Optional[str]
) -> Optional[Sequence[Rule]]:
    if select is None:
        return None
    registry = rules_by_code()
    codes = [code.strip() for code in select.split(",") if code.strip()]
    unknown = sorted(set(codes) - set(registry))
    if unknown:
        parser.error(
            f"unknown rule code(s): {', '.join(unknown)} (see --list-rules)"
        )
    return tuple(registry[code] for code in codes)


def render_findings(
    findings: Sequence[Finding],
    fmt: str,
    *,
    rules: Optional[Sequence[Rule]] = None,
) -> str:
    active = RULES if rules is None else tuple(rules)
    if fmt == "json":
        payload = {
            "version": LINT_VERSION,
            "rules": [rule.code for rule in active],
            "findings": [finding.to_dict() for finding in findings],
        }
        return json.dumps(payload, indent=2)
    if not findings:
        return "repro-lint: no findings"
    lines = [finding.render() for finding in findings]
    lines.append(f"repro-lint: {len(findings)} finding(s)")
    return "\n".join(lines)


def _render_rules(fmt: str) -> str:
    registry = rule_registry()
    if fmt == "json":
        return json.dumps({"version": LINT_VERSION, "rules": registry}, indent=2)
    width = max(len(entry["name"]) for entry in registry)
    return "\n".join(
        f"{entry['code']}  {entry['name']:<{width}}  {entry['summary']}"
        for entry in registry
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_render_rules(args.format))
        return 0
    rules = _selected_rules(parser, args.select)
    if args.changed and args.paths:
        parser.error("--changed and explicit paths are mutually exclusive")
    if args.changed:
        try:
            paths = changed_python_files()
        except LintError as exc:
            print(f"repro-lint: error: {exc}", file=sys.stderr)
            return 2
        if not paths:
            print("repro-lint: no changed python files")
            return 0
    elif args.paths:
        paths = args.paths
    else:
        parser.error("no paths given (or use --changed / --list-rules)")
    try:
        findings = lint_paths(
            paths,
            rules=rules,
            report_unused_suppressions=args.report_unused_suppressions,
        )
    except LintError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    print(render_findings(findings, args.format, rules=rules))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
