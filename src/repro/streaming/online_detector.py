"""The online (streaming) anomaly detector.

:class:`OnlineDetector` wraps any fitted batch detector from this library and
adds the machinery a long-running deployment needs:

* **adaptive threshold scaling** — an EWMA of the scores of records the
  detector currently believes are normal; as benign traffic slowly drifts,
  the effective alarm threshold follows it;
* **drift-triggered refitting** — a drift detector watches the same benign
  score stream; when it fires, the detector is refitted from a sliding buffer
  of recent records (self-supervised: the records the detector itself judged
  normal), which restores accuracy after genuine distribution change;
* **bounded memory** — only the sliding buffer and a handful of scalars are
  kept, regardless of how long the stream runs.

The design mirrors the adaptive/online extensions proposed for GHSOM-based
intrusion detection: the base model stays a GHSOM; adaptation happens in the
thresholding and through periodic retraining on recent traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, cast

import numpy as np

from repro._typing import AnyArray
from repro.core.detector import BaseAnomalyDetector, alarm_decisions
from repro.exceptions import ConfigurationError, NotFittedError
from repro.streaming.drift import DriftDetector, MeanShiftDetector
from repro.streaming.window import EwmaEstimator, SlidingMatrixWindow
from repro.utils.validation import check_array_2d

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.serving.config import ServingConfig


@dataclass
class OnlineStepResult:
    """Outcome of processing one batch of streamed records."""

    predictions: AnyArray
    scores: AnyArray
    drift_detected: bool
    refitted: bool
    effective_scale: float
    #: Best-effort class label per record from the wrapped detector's single
    #: detection pass (``None`` during warm-up).  Labels use the detector's
    #: nominal threshold of 1.0; ``predictions`` above applies the adaptive
    #: scale on top, so a drifted-but-benign record can be labelled with a
    #: class yet not alarm.
    categories: Optional[List[str]] = None
    extra: Dict[str, object] = field(default_factory=dict)


class OnlineDetector:
    """Streaming wrapper around a batch anomaly detector.

    Parameters
    ----------
    detector:
        A fitted (or at least constructed) detector following the
        :class:`~repro.core.detector.BaseAnomalyDetector` contract.  If it is
        not fitted yet, the first ``warmup_size`` streamed records are used to
        fit it.
    buffer_size:
        Capacity of the sliding buffer of recent benign records used for
        refitting.
    adaptation:
        ``"threshold"`` (default) adapts only the score scale,
        ``"refit"`` additionally refits the base detector when drift is
        detected, ``"none"`` disables adaptation (the static baseline in the
        drift experiment).
    ewma_alpha:
        Smoothing factor of the benign-score EWMA.
    drift_detector:
        Drift detector instance (defaults to :class:`MeanShiftDetector`).
    warmup_size:
        Number of initial records used to fit an unfitted detector.
    """

    def __init__(
        self,
        detector: BaseAnomalyDetector,
        *,
        buffer_size: int = 2000,
        adaptation: str = "threshold",
        ewma_alpha: float = 0.02,
        drift_detector: Optional[DriftDetector] = None,
        warmup_size: int = 1000,
    ) -> None:
        if adaptation not in ("none", "threshold", "refit"):
            raise ConfigurationError(
                f"adaptation must be 'none', 'threshold' or 'refit', got {adaptation!r}"
            )
        if buffer_size < 10:
            raise ConfigurationError(f"buffer_size must be >= 10, got {buffer_size}")
        if warmup_size < 10:
            raise ConfigurationError(f"warmup_size must be >= 10, got {warmup_size}")
        self.detector = detector
        self.buffer_size = int(buffer_size)
        self.adaptation = adaptation
        self.warmup_size = int(warmup_size)
        self.score_ewma = EwmaEstimator(alpha=ewma_alpha)
        self.drift_detector = drift_detector or MeanShiftDetector()
        self._buffer = SlidingMatrixWindow(self.buffer_size)
        self._warmup: List[AnyArray] = []
        self._is_warmed_up = self._detector_is_fitted()
        self.n_processed = 0
        self.n_refits = 0
        self.n_drift_events = 0

    # ------------------------------------------------------------------ #
    def _detector_is_fitted(self) -> bool:
        fitted = getattr(self.detector, "is_fitted", None)
        return bool(fitted) if fitted is not None else False

    @property
    def is_ready(self) -> bool:
        """Whether the wrapped detector is fitted and scoring."""
        return self._is_warmed_up

    @property
    def serving_config(self) -> "Optional[ServingConfig]":
        """The wrapped detector's :class:`~repro.serving.ServingConfig`.

        ``None`` for detectors outside the config layer (baselines).  The
        config is carried by the detector itself, so it survives
        drift-triggered refits unchanged: ``GhsomDetector.fit`` re-applies
        the full serving setup — dtype snapshot, engine, sharding — to the
        newly compiled model, and the next ``process`` batch serves with the
        exact same plan as before the refit.
        """
        return cast(
            "Optional[ServingConfig]", getattr(self.detector, "serving_config", None)
        )

    def _effective_scale(self) -> float:
        """Multiplier applied to the nominal threshold of 1.0.

        The scale tracks the EWMA of benign scores: if benign traffic slowly
        drifts to higher raw scores, the scale grows with it (never below 1.0
        so a freshly calibrated detector is unchanged).
        """
        if self.adaptation == "none" or self.score_ewma.n_updates < 10:
            return 1.0
        # Benign scores sit well below 1.0 right after calibration; track
        # their mean + 3 sigma as the new "edge of normal".
        adapted = self.score_ewma.mean + 3.0 * self.score_ewma.std
        return float(max(1.0, adapted))

    # ------------------------------------------------------------------ #
    def process(self, batch: object) -> OnlineStepResult:
        """Process one batch of streamed records and return decisions plus bookkeeping."""
        matrix = check_array_2d(batch, "batch")
        self.n_processed += matrix.shape[0]
        if not self._is_warmed_up:
            return self._warmup_step(matrix)
        return self._scoring_step(matrix)

    def _serving_matrix(self, matrix: AnyArray) -> AnyArray:
        """Cast the scoring copy to the wrapped detector's serving dtype once.

        A float32-serving detector would otherwise pay a fresh
        float64→float32 conversion inside *every* ``detect`` call; casting
        here at the stream boundary makes the downstream validation a no-op
        pass-through.  The float64 ``matrix`` itself is untouched — warm-up
        and refit buffers keep full precision.
        """
        dtype = getattr(self.detector, "serving_dtype", None)
        if dtype is None or np.dtype(dtype) == matrix.dtype:
            return matrix
        return np.ascontiguousarray(matrix, dtype=dtype)

    def _scoring_step(self, matrix: AnyArray) -> OnlineStepResult:
        """Score one batch with the fitted detector and run the adaptation loop."""
        # Single-pass serving: one detection pass yields scores *and* class
        # labels (for GhsomDetector that is one tree descent total).
        detection = self.detector.detect(self._serving_matrix(matrix))
        scores = np.asarray(detection.scores, dtype=float)
        scale = self._effective_scale()
        # The shared decision rule: strictly above the (scaled) threshold
        # alarms, so a score exactly on the boundary gets the same verdict
        # here as on the batch `predict` path (`alarm_decisions` is the
        # single source of truth for the comparison).
        predictions = alarm_decisions(scores, scale)
        drift_detected = False
        refitted = False
        benign_mask = predictions == 0
        benign_scores = scores[benign_mask]
        if benign_scores.size:
            self.score_ewma.update_many(benign_scores)
            drift_detected = self.drift_detector.update_many(benign_scores)
        self._buffer.extend(matrix[benign_mask])
        if drift_detected:
            self.n_drift_events += 1
            self.drift_detector.reset()
            if self.adaptation == "refit" and len(self._buffer) >= 100:
                self._refit_from_buffer()
                refitted = True
        return OnlineStepResult(
            predictions=predictions,
            scores=scores,
            drift_detected=drift_detected,
            refitted=refitted,
            effective_scale=scale,
            categories=detection.categories,
        )

    def _warmup_step(self, matrix: AnyArray) -> OnlineStepResult:
        """Accumulate warm-up records; fit the detector once enough arrived.

        The batch that completes warm-up is *not* reported as all-normal
        zeros: the detector is fitted inside this very call, so the batch is
        immediately scored with it and real predictions / scores / categories
        are returned (flagged with ``extra["warmup_completed"]``).  Only
        batches that leave the detector still unfitted get the placeholder
        all-normal result.
        """
        self._warmup.append(matrix)
        total = sum(block.shape[0] for block in self._warmup)
        if total >= self.warmup_size:
            warmup_matrix = np.concatenate(self._warmup, axis=0)
            self.detector.fit(warmup_matrix)
            self._warmup = []
            self._is_warmed_up = True
            result = self._scoring_step(matrix)
            result.extra["warmup_completed"] = True
            return result
        # Still warming up: everything is reported as normal (no model yet).
        return OnlineStepResult(
            predictions=np.zeros(matrix.shape[0], dtype=int),
            scores=np.zeros(matrix.shape[0]),
            drift_detected=False,
            refitted=False,
            effective_scale=1.0,
            extra={"warming_up": True},
        )

    # ------------------------------------------------------------------ #
    def _refit_from_buffer(self) -> None:
        """Refit the wrapped detector on the recent benign buffer and reset adaptation."""
        buffer_matrix = self._buffer.values()
        self.detector.fit(buffer_matrix)
        self.n_refits += 1
        self.score_ewma = EwmaEstimator(alpha=self.score_ewma.alpha)

    # ------------------------------------------------------------------ #
    def predict(self, batch: object) -> AnyArray:
        """Decisions only (convenience wrapper around :meth:`process`)."""
        return self.process(batch).predictions

    def score_samples(self, batch: object) -> AnyArray:
        """Scores from the wrapped detector without updating any online state.

        Routed through :meth:`_serving_matrix` exactly like :meth:`process`:
        a float32-serving detector sees the batch cast once at the stream
        boundary instead of paying a fresh float64→float32 conversion inside
        the call, and both entry points hand the wrapped detector the same
        dtype (so their scores cannot diverge).
        """
        if not self._is_warmed_up:
            raise NotFittedError("OnlineDetector is still warming up")
        matrix = self._serving_matrix(check_array_2d(batch, "batch"))
        return np.asarray(self.detector.score_samples(matrix), dtype=float)
