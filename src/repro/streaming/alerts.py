"""Alert aggregation: turning per-record alarms into incidents.

A flood of 500 per-connection alarms is one DoS *incident* to an operator.
:class:`AlertAggregator` groups alarmed records that are close in time (and,
when available, share a predicted category) into :class:`Incident` objects
with a start/end time, a record count and a dominant category — the form in
which detection results are actually consumed, and the form the anomaly
"extraction" discussion in the literature cares about.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_same_length


@dataclass
class Incident:
    """A group of temporally-adjacent alarmed records."""

    incident_id: int
    start_time: float
    end_time: float
    n_records: int
    dominant_category: str
    category_counts: Dict[str, int] = field(default_factory=dict)
    peak_score: float = 0.0

    @property
    def duration(self) -> float:
        """Length of the incident in the stream's time unit."""
        return self.end_time - self.start_time

    def as_row(self) -> List[object]:
        """Row representation for table rendering."""
        return [
            self.incident_id,
            self.start_time,
            self.end_time,
            self.n_records,
            self.dominant_category,
            self.peak_score,
        ]

    @staticmethod
    def headers() -> List[str]:
        """Headers matching :meth:`as_row`."""
        return ["incident", "start", "end", "records", "category", "peak_score"]


class AlertAggregator:
    """Groups alarmed records into incidents by temporal proximity.

    Parameters
    ----------
    gap_seconds:
        A new incident starts when the time since the previous alarmed record
        exceeds this gap.
    min_records:
        Groups with fewer alarmed records than this do not become incidents;
        they are counted as residual noise (``n_residual_records`` /
        ``n_residual_groups`` in :meth:`summarize`) so dropped alarms remain
        visible to the operator.
    split_by_category:
        When predicted categories are provided, records of different
        categories never share an incident even if adjacent in time.
    """

    def __init__(
        self,
        *,
        gap_seconds: float = 30.0,
        min_records: int = 3,
        split_by_category: bool = True,
    ) -> None:
        if gap_seconds <= 0:
            raise ConfigurationError(f"gap_seconds must be positive, got {gap_seconds}")
        if min_records < 1:
            raise ConfigurationError(f"min_records must be >= 1, got {min_records}")
        self.gap_seconds = float(gap_seconds)
        self.min_records = int(min_records)
        self.split_by_category = split_by_category
        #: Residual noise from the most recent :meth:`aggregate` call:
        #: alarmed records (and the sub-``min_records`` groups they formed)
        #: that were too sparse to become incidents.
        self.n_residual_records = 0
        self.n_residual_groups = 0

    # ------------------------------------------------------------------ #
    def aggregate(
        self,
        timestamps: Sequence[float],
        alarms: Sequence[int],
        *,
        scores: Optional[Sequence[float]] = None,
        categories: Optional[Sequence[str]] = None,
    ) -> List[Incident]:
        """Group the alarmed records into incidents.

        Parameters
        ----------
        timestamps:
            Per-record timestamps (any monotone-comparable unit).
        alarms:
            Per-record binary decisions (1 = alarm).
        scores:
            Optional per-record anomaly scores (used for ``peak_score``).
        categories:
            Optional per-record predicted categories.
        """
        times = np.asarray(timestamps, dtype=float)
        decisions = np.asarray(alarms, dtype=int)
        check_same_length(times, decisions, "timestamps", "alarms")
        if scores is not None:
            check_same_length(times, scores, "timestamps", "scores")
        if categories is not None:
            check_same_length(times, categories, "timestamps", "categories")
        self.n_residual_records = 0
        self.n_residual_groups = 0
        alarm_indices = np.flatnonzero(decisions == 1)
        if alarm_indices.size == 0:
            return []
        order = alarm_indices[np.argsort(times[alarm_indices], kind="stable")]

        incidents: List[Incident] = []
        current: List[int] = []

        def flush() -> None:
            if not current:
                return
            if len(current) < self.min_records:
                # Too sparse to be an incident — counted, never silently lost.
                self.n_residual_records += len(current)
                self.n_residual_groups += 1
                current.clear()
                return
            group_times = times[current]
            group_categories = (
                [str(categories[index]) for index in current] if categories is not None else ["anomaly"] * len(current)
            )
            counts = Counter(group_categories)
            dominant, _ = counts.most_common(1)[0]
            peak = (
                float(np.max([float(scores[index]) for index in current])) if scores is not None else 0.0
            )
            incidents.append(
                Incident(
                    incident_id=len(incidents),
                    start_time=float(group_times.min()),
                    end_time=float(group_times.max()),
                    n_records=len(current),
                    dominant_category=dominant,
                    category_counts=dict(counts),
                    peak_score=peak,
                )
            )
            current.clear()

        for index in order:
            if not current:
                current.append(int(index))
                continue
            previous = current[-1]
            gap = times[index] - times[previous]
            same_category = True
            if self.split_by_category and categories is not None:
                same_category = str(categories[index]) == str(categories[previous])
            if gap <= self.gap_seconds and same_category:
                current.append(int(index))
            else:
                flush()
                current.append(int(index))
        flush()
        return incidents

    def summarize(self, incidents: Sequence[Incident]) -> Dict[str, object]:
        """Aggregate statistics over a set of incidents.

        ``n_residual_records`` / ``n_residual_groups`` report the alarmed
        records the most recent :meth:`aggregate` call dropped for falling
        under ``min_records`` — the "residual noise" the class promises to
        surface rather than silently discard.
        """
        if not incidents:
            return {
                "n_incidents": 0,
                "n_alarmed_records": 0,
                "n_residual_records": int(self.n_residual_records),
                "n_residual_groups": int(self.n_residual_groups),
            }
        return {
            "n_incidents": len(incidents),
            "n_alarmed_records": int(sum(incident.n_records for incident in incidents)),
            "n_residual_records": int(self.n_residual_records),
            "n_residual_groups": int(self.n_residual_groups),
            "categories": dict(
                Counter(incident.dominant_category for incident in incidents)
            ),
            "longest_duration": float(max(incident.duration for incident in incidents)),
            "largest_incident": int(max(incident.n_records for incident in incidents)),
        }
