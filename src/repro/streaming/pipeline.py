"""The streaming evaluation pipeline (drift experiment, Figure 6).

:class:`StreamingPipeline` replays a labelled dataset as a stream of fixed-size
windows through an :class:`~repro.streaming.online_detector.OnlineDetector`,
recording per-window detection metrics.  Comparing an adaptive run against a
static run on the same drifting stream reproduces the online-adaptation
experiment: the static detector's false-positive rate climbs after the drift
point while the adaptive one recovers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro._typing import AnyArray
from repro.eval.metrics import binary_metrics
from repro.exceptions import ConfigurationError
from repro.streaming.online_detector import OnlineDetector
from repro.utils.validation import check_array_2d, check_same_length

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.data.synthetic import KddSyntheticGenerator


@dataclass(frozen=True)
class WindowReport:
    """Metrics for one stream window."""

    window_index: int
    n_records: int
    detection_rate: float
    false_positive_rate: float
    accuracy: float
    drift_detected: bool
    refitted: bool
    effective_scale: float
    #: Wall-clock seconds spent processing the window (scoring + adaptation).
    seconds: float = 0.0

    @property
    def records_per_second(self) -> float:
        """Throughput of this window (0.0 when the clock showed no elapsed time)."""
        return self.n_records / self.seconds if self.seconds > 0 else 0.0


class StreamingPipeline:
    """Replays a labelled record stream through an online detector.

    Parameters
    ----------
    online_detector:
        The wrapped online detector (fitted or warm-up based).
    window_size:
        Number of records per evaluation window.
    """

    def __init__(self, online_detector: OnlineDetector, *, window_size: int = 500) -> None:
        if window_size < 10:
            raise ConfigurationError(f"window_size must be >= 10, got {window_size}")
        self.online_detector = online_detector
        self.window_size = int(window_size)
        self.reports: List[WindowReport] = []

    # ------------------------------------------------------------------ #
    def _iter_windows(
        self, X: AnyArray, y: AnyArray
    ) -> Iterator[Tuple[int, AnyArray, AnyArray]]:
        n_records = X.shape[0]
        for window_index, start in enumerate(range(0, n_records, self.window_size)):
            stop = min(start + self.window_size, n_records)
            yield window_index, X[start:stop], y[start:stop]

    def run(self, X: object, y_true_binary: Sequence[int]) -> List[WindowReport]:
        """Stream ``X`` through the detector window by window and collect metrics.

        Parameters
        ----------
        X:
            Record matrix in stream order.
        y_true_binary:
            Ground-truth binary labels (1 = attack) in the same order.
        """
        matrix = check_array_2d(X, "X")
        truth = np.asarray(y_true_binary, dtype=int)
        check_same_length(matrix, truth, "X", "y_true_binary")
        self.reports = []
        for window_index, window_X, window_y in self._iter_windows(matrix, truth):
            started = time.perf_counter()
            step = self.online_detector.process(window_X)
            elapsed = time.perf_counter() - started
            metrics = binary_metrics(window_y, step.predictions)
            self.reports.append(
                WindowReport(
                    window_index=window_index,
                    n_records=int(window_X.shape[0]),
                    detection_rate=metrics.detection_rate,
                    false_positive_rate=metrics.false_positive_rate,
                    accuracy=metrics.accuracy,
                    drift_detected=step.drift_detected,
                    refitted=step.refitted,
                    effective_scale=step.effective_scale,
                    seconds=elapsed,
                )
            )
        return self.reports

    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, object]:
        """Aggregate metrics over all processed windows.

        Two aggregate families: the ``mean_*`` keys equal-weight every
        window (per-window trend view, kept for compatibility), while the
        ``weighted_*`` keys weight each window by its record count — the
        per-record view.  The distinction matters because the final window
        is usually ragged: a 17-record tail window would otherwise move the
        stream-level metrics as much as a full 500-record one.
        """
        if not self.reports:
            return {"n_windows": 0}
        total_seconds = float(sum(report.seconds for report in self.reports))
        total_records = sum(report.n_records for report in self.reports)
        weights = np.asarray([report.n_records for report in self.reports], dtype=float)

        def weighted(values: Sequence[float]) -> float:
            return float(np.average(np.asarray(values, dtype=float), weights=weights))

        return {
            "n_windows": len(self.reports),
            "n_records": int(total_records),
            "mean_detection_rate": float(np.mean([report.detection_rate for report in self.reports])),
            "mean_false_positive_rate": float(
                np.mean([report.false_positive_rate for report in self.reports])
            ),
            "mean_accuracy": float(np.mean([report.accuracy for report in self.reports])),
            "weighted_detection_rate": weighted(
                [report.detection_rate for report in self.reports]
            ),
            "weighted_false_positive_rate": weighted(
                [report.false_positive_rate for report in self.reports]
            ),
            "weighted_accuracy": weighted([report.accuracy for report in self.reports]),
            "n_drift_events": sum(1 for report in self.reports if report.drift_detected),
            "n_refits": sum(1 for report in self.reports if report.refitted),
            "total_seconds": total_seconds,
            # Aggregate throughput (total records / total time), not a mean of
            # per-window rates: a mean would equal-weight a 10-record refit
            # window with a 10k-record steady-state one.
            "records_per_second": (
                total_records / total_seconds if total_seconds > 0 else 0.0
            ),
        }


def make_drifting_stream(
    generator_factory: "Callable[[int], KddSyntheticGenerator]",
    *,
    n_before: int = 4000,
    n_after: int = 4000,
    drift_scale: float = 2.0,
    attack_fraction: float = 0.1,
    random_state: int = 0,
) -> Tuple[AnyArray, AnyArray, int]:
    """Build a two-phase stream whose normal traffic drifts halfway through.

    The second half multiplies the volume-related features of *normal*
    records by ``drift_scale`` (heavier but still benign traffic), which is
    the classic benign-drift scenario: a static detector starts flagging the
    new normal as anomalous, an adaptive one re-calibrates.

    Returns
    -------
    (X, y, drift_index):
        The streamed matrix, binary labels, and the row index where drift
        begins.
    """
    from repro.data.preprocess import PreprocessingPipeline
    from repro.data.synthetic import KddSyntheticGenerator, DEFAULT_CLASS_MIX

    if n_before < 100 or n_after < 100:
        raise ConfigurationError("both stream phases need at least 100 records")
    generator: KddSyntheticGenerator = generator_factory(random_state)
    # Class mix with the requested attack fraction.
    attack_weight = {
        label: weight
        for label, weight in DEFAULT_CLASS_MIX.items()
        if label != "normal" and label in generator.profiles
    }
    total_attack = sum(attack_weight.values())
    mix: Dict[str, float] = {"normal": 1.0 - attack_fraction}
    mix.update(
        {
            label: attack_fraction * weight / total_attack
            for label, weight in attack_weight.items()
        }
    )
    before = generator.generate(n_before, class_mix=mix)
    after = generator.generate(n_after, class_mix=mix)
    # Apply benign drift to the "after" phase: scale the byte/count volume
    # features of normal records.
    volume_features = ("src_bytes", "dst_bytes", "count", "srv_count")
    after_raw = after.raw.copy()
    normal_mask = after.categories == "normal"
    for feature in volume_features:
        column = after.schema.index_of(feature)
        values = after_raw[:, column].astype(float)
        values[normal_mask] = values[normal_mask] * drift_scale
        after_raw[:, column] = values
    drifted_after = type(after)(after_raw, after.labels, schema=after.schema)
    combined = before.concat(drifted_after)
    pipeline = PreprocessingPipeline()
    pipeline.fit(before)
    X = pipeline.transform(combined)
    y = combined.is_attack.astype(int)
    return X, y, n_before
