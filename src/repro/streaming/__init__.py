"""Online / streaming detection: sliding windows, drift detection, adaptive thresholds."""

from repro.streaming.alerts import AlertAggregator, Incident
from repro.streaming.window import EwmaEstimator, SlidingMatrixWindow, SlidingWindow
from repro.streaming.drift import DriftDetector, MeanShiftDetector, PageHinkleyDetector
from repro.streaming.online_detector import OnlineDetector
from repro.streaming.pipeline import StreamingPipeline, WindowReport

__all__ = [
    "AlertAggregator",
    "Incident",
    "EwmaEstimator",
    "SlidingMatrixWindow",
    "SlidingWindow",
    "DriftDetector",
    "MeanShiftDetector",
    "PageHinkleyDetector",
    "OnlineDetector",
    "StreamingPipeline",
    "WindowReport",
]
