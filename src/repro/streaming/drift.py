"""Concept-drift detectors for the online detection pipeline.

Traffic distributions drift (new services deployed, load changes, seasonal
patterns); a detector calibrated on last month's traffic slowly degrades.  The
online pipeline watches the anomaly-score stream of records it believes are
normal — if that stream shifts upward persistently, either the traffic changed
or a slow attack is underway, and the pipeline reacts (re-calibrates or
re-fits).  Two standard change detectors are provided.
"""

from __future__ import annotations

import abc
from typing import Iterable, Union

from repro._typing import AnyArray
from repro.exceptions import ConfigurationError
from repro.streaming.window import SlidingWindow


class DriftDetector(abc.ABC):
    """Interface: feed scalar observations, get told when the stream changed."""

    @abc.abstractmethod
    def update(self, value: float) -> bool:
        """Add one observation; return ``True`` when drift is detected."""

    def update_many(self, values: Union[Iterable[float], AnyArray]) -> bool:
        """Feed a batch of observations; ``True`` when any of them fired.

        The observations are applied in order with identical semantics to
        calling :meth:`update` once per value (the detectors are inherently
        sequential), and the batch keeps being consumed after the first alarm
        so the internal state matches the one-by-one path exactly.  Accepts
        any iterable of scalars, including lazy generators.
        """
        fired = False
        for value in values:
            fired = self.update(float(value)) or fired
        return fired

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget all state (called after the caller has reacted to drift)."""


class PageHinkleyDetector(DriftDetector):
    """Page–Hinkley test for an upward shift in the mean of a stream.

    Parameters
    ----------
    delta:
        Magnitude of changes to ignore (tolerated drift per observation).
    threshold:
        Alarm when the cumulative deviation exceeds this value.
    min_observations:
        Number of observations required before an alarm may fire.
    """

    def __init__(
        self,
        *,
        delta: float = 0.005,
        threshold: float = 5.0,
        min_observations: int = 30,
    ) -> None:
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be positive, got {threshold}")
        if min_observations < 1:
            raise ConfigurationError(
                f"min_observations must be >= 1, got {min_observations}"
            )
        self.delta = float(delta)
        self.threshold = float(threshold)
        self.min_observations = int(min_observations)
        self.reset()

    def reset(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._cumulative = 0.0
        self._minimum = 0.0

    def update(self, value: float) -> bool:
        value = float(value)
        self._count += 1
        # Running mean of the stream so far.
        self._mean += (value - self._mean) / self._count
        self._cumulative += value - self._mean - self.delta
        self._minimum = min(self._minimum, self._cumulative)
        if self._count < self.min_observations:
            return False
        return (self._cumulative - self._minimum) > self.threshold


class MeanShiftDetector(DriftDetector):
    """Compares the mean of a recent window against a reference window.

    Alarm when the recent mean exceeds the reference mean by more than
    ``sensitivity`` reference standard deviations.  Simpler and easier to
    reason about than Page–Hinkley; used as the default in the pipeline
    because its false-alarm behaviour is easy to control.
    """

    def __init__(
        self,
        *,
        reference_size: int = 200,
        recent_size: int = 50,
        sensitivity: float = 3.0,
    ) -> None:
        if recent_size < 2 or reference_size < 2:
            raise ConfigurationError("window sizes must be at least 2")
        if sensitivity <= 0:
            raise ConfigurationError(f"sensitivity must be positive, got {sensitivity}")
        self.reference = SlidingWindow(reference_size)
        self.recent = SlidingWindow(recent_size)
        self.sensitivity = float(sensitivity)

    def reset(self) -> None:
        self.reference.clear()
        self.recent.clear()

    def update(self, value: float) -> bool:
        value = float(value)
        # The reference window fills first; afterwards new values go to the
        # recent window and graduate into the reference as they age out.
        if not self.reference.is_full:
            self.reference.append(value)
            return False
        if self.recent.is_full:
            oldest = self.recent.values()[0]
            self.reference.append(float(oldest))
        self.recent.append(value)
        if not self.recent.is_full:
            return False
        reference_std = max(self.reference.std(), 1e-9)
        gap = self.recent.mean() - self.reference.mean()
        return gap > self.sensitivity * reference_std
