"""Streaming statistics: fixed-size sliding windows and exponential averages."""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Optional, Union

import numpy as np

from repro._typing import AnyArray
from repro.exceptions import ConfigurationError


class SlidingWindow:
    """A fixed-capacity window of recent values with cheap summary statistics.

    Used by the online detector to keep a bounded buffer of recent
    observations (for refitting) and recent scores (for adaptive thresholds).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._values: Deque[float] = deque(maxlen=self.capacity)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def is_full(self) -> bool:
        """Whether the window holds ``capacity`` values."""
        return len(self._values) == self.capacity

    def append(self, value: float) -> None:
        """Add one value (evicting the oldest when full)."""
        self._values.append(float(value))

    def extend(self, values: Union[Iterable[float], AnyArray]) -> None:
        """Add a batch of values in one O(n) operation.

        Equivalent to appending one by one (the deque evicts from the left as
        it fills), but the conversion and eviction happen in bulk instead of
        one Python call per value.
        """
        if isinstance(values, np.ndarray):
            if values.ndim != 1:
                # A matrix here almost certainly means the caller wanted the
                # row buffer (SlidingMatrixWindow); flattening silently would
                # pour n*d feature values into the scalar statistics.
                raise ConfigurationError(
                    f"SlidingWindow stores scalars; got an array of shape "
                    f"{values.shape} (use SlidingMatrixWindow for row batches)"
                )
            array = values.astype(float)
        else:
            # Lazy iterables (generators) are part of the contract; fromiter
            # consumes them without materialising an intermediate list.
            array = np.fromiter((float(value) for value in values), dtype=float)
        if array.size > self.capacity:
            # Only the trailing `capacity` values can survive anyway.
            array = array[-self.capacity :]
        self._values.extend(float(value) for value in array.tolist())

    def values(self) -> AnyArray:
        """The current window contents, oldest first."""
        return np.array(self._values, dtype=float)

    def mean(self) -> float:
        """Mean of the window (0.0 when empty)."""
        return float(np.mean(self.values())) if self._values else 0.0

    def std(self) -> float:
        """Standard deviation of the window (0.0 when empty)."""
        return float(np.std(self.values())) if self._values else 0.0

    def percentile(self, q: float) -> float:
        """Percentile ``q`` of the window (0.0 when empty)."""
        if not self._values:
            return 0.0
        return float(np.percentile(self.values(), q))

    def clear(self) -> None:
        """Drop all stored values."""
        self._values.clear()


class SlidingMatrixWindow:
    """A fixed-capacity window of recent *row vectors* (a bounded record buffer).

    The online detector keeps the last ``capacity`` benign records for
    drift-triggered refits.  This is a preallocated circular buffer: a batch
    of rows is absorbed with two slice writes at most (wrap-around), so
    extending by ``n`` rows costs O(n) numpy work with no per-row Python.

    The feature dimensionality is fixed by the first batch; later batches
    must match it.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._data: Optional[AnyArray] = None  # (capacity, d), allocated lazily
        self._head = 0  # next write position
        self._count = 0  # rows currently stored

    def __len__(self) -> int:
        return self._count

    @property
    def is_full(self) -> bool:
        """Whether the buffer holds ``capacity`` rows."""
        return self._count == self.capacity

    @property
    def n_features(self) -> Optional[int]:
        """Row dimensionality (``None`` until the first batch arrives)."""
        return None if self._data is None else int(self._data.shape[1])

    def extend(self, rows: object) -> None:
        """Absorb a batch of rows, evicting the oldest when over capacity."""
        batch = np.asarray(rows, dtype=float)
        if batch.size == 0:
            # Checked before the 1-D promotion: an empty 1-D input would
            # otherwise become a phantom (1, 0) row and pin n_features to 0.
            return
        if batch.ndim == 1:
            batch = batch.reshape(1, -1)
        if batch.ndim != 2:
            raise ConfigurationError(
                f"rows must be a 2-D batch, got shape {batch.shape}"
            )
        data = self._data
        if data is None:
            data = np.empty((self.capacity, batch.shape[1]), dtype=float)
            self._data = data
        elif batch.shape[1] != data.shape[1]:
            raise ConfigurationError(
                f"rows have {batch.shape[1]} features, the buffer holds "
                f"{data.shape[1]}"
            )
        if batch.shape[0] >= self.capacity:
            data[:] = batch[-self.capacity :]
            self._head = 0
            self._count = self.capacity
            return
        first = min(batch.shape[0], self.capacity - self._head)
        data[self._head : self._head + first] = batch[:first]
        remainder = batch.shape[0] - first
        if remainder:
            data[:remainder] = batch[first:]
        self._head = (self._head + batch.shape[0]) % self.capacity
        self._count = min(self._count + batch.shape[0], self.capacity)

    def values(self) -> AnyArray:
        """The buffered rows, oldest first, as a ``(len(self), d)`` copy."""
        data = self._data
        if data is None:
            return np.zeros((0, 0), dtype=float)
        if self._count == 0:
            # Dimensionality is known: keep it in the empty result so callers
            # can concatenate / inspect shape[1] safely.
            return data[:0].copy()
        if self._count < self.capacity:
            # The buffer has never wrapped: rows 0..count are in order.
            return data[: self._count].copy()
        return np.concatenate([data[self._head :], data[: self._head]], axis=0)

    def clear(self) -> None:
        """Drop all stored rows (the allocation and dimensionality are kept)."""
        self._head = 0
        self._count = 0


class EwmaEstimator:
    """Exponentially weighted moving average (and variance) of a scalar stream.

    Parameters
    ----------
    alpha:
        Smoothing factor in ``(0, 1]``; larger values react faster.
    initial:
        Optional initial mean (otherwise the first observation initialises it).
    """

    def __init__(self, alpha: float = 0.05, initial: Optional[float] = None) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self._mean: Optional[float] = float(initial) if initial is not None else None
        self._variance: float = 0.0
        self.n_updates: int = 0

    @property
    def mean(self) -> float:
        """Current smoothed mean (0.0 before the first update)."""
        return self._mean if self._mean is not None else 0.0

    @property
    def std(self) -> float:
        """Current smoothed standard deviation."""
        return float(np.sqrt(max(self._variance, 0.0)))

    def update(self, value: float) -> float:
        """Fold one observation into the average and return the new mean."""
        value = float(value)
        if self._mean is None:
            mean = value
            self._variance = 0.0
        else:
            delta = value - self._mean
            mean = self._mean + self.alpha * delta
            self._variance = (1.0 - self.alpha) * (
                self._variance + self.alpha * delta * delta
            )
        self._mean = mean
        self.n_updates += 1
        return mean

    def update_many(self, values: Union[Iterable[float], AnyArray]) -> float:
        """Fold several observations and return the final mean."""
        result = self.mean
        for value in values:
            result = self.update(float(value))
        return result
