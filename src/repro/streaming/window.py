"""Streaming statistics: fixed-size sliding windows and exponential averages."""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Optional

import numpy as np

from repro.exceptions import ConfigurationError


class SlidingWindow:
    """A fixed-capacity window of recent values with cheap summary statistics.

    Used by the online detector to keep a bounded buffer of recent
    observations (for refitting) and recent scores (for adaptive thresholds).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._values: Deque[float] = deque(maxlen=self.capacity)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def is_full(self) -> bool:
        """Whether the window holds ``capacity`` values."""
        return len(self._values) == self.capacity

    def append(self, value: float) -> None:
        """Add one value (evicting the oldest when full)."""
        self._values.append(float(value))

    def extend(self, values: Iterable[float]) -> None:
        """Add several values."""
        for value in values:
            self.append(value)

    def values(self) -> np.ndarray:
        """The current window contents, oldest first."""
        return np.array(self._values, dtype=float)

    def mean(self) -> float:
        """Mean of the window (0.0 when empty)."""
        return float(np.mean(self._values)) if self._values else 0.0

    def std(self) -> float:
        """Standard deviation of the window (0.0 when empty)."""
        return float(np.std(self._values)) if self._values else 0.0

    def percentile(self, q: float) -> float:
        """Percentile ``q`` of the window (0.0 when empty)."""
        if not self._values:
            return 0.0
        return float(np.percentile(self.values(), q))

    def clear(self) -> None:
        """Drop all stored values."""
        self._values.clear()


class EwmaEstimator:
    """Exponentially weighted moving average (and variance) of a scalar stream.

    Parameters
    ----------
    alpha:
        Smoothing factor in ``(0, 1]``; larger values react faster.
    initial:
        Optional initial mean (otherwise the first observation initialises it).
    """

    def __init__(self, alpha: float = 0.05, initial: Optional[float] = None) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self._mean: Optional[float] = float(initial) if initial is not None else None
        self._variance: float = 0.0
        self.n_updates: int = 0

    @property
    def mean(self) -> float:
        """Current smoothed mean (0.0 before the first update)."""
        return self._mean if self._mean is not None else 0.0

    @property
    def std(self) -> float:
        """Current smoothed standard deviation."""
        return float(np.sqrt(max(self._variance, 0.0)))

    def update(self, value: float) -> float:
        """Fold one observation into the average and return the new mean."""
        value = float(value)
        if self._mean is None:
            self._mean = value
            self._variance = 0.0
        else:
            delta = value - self._mean
            self._mean += self.alpha * delta
            self._variance = (1.0 - self.alpha) * (self._variance + self.alpha * delta * delta)
        self.n_updates += 1
        return self._mean

    def update_many(self, values: Iterable[float]) -> float:
        """Fold several observations and return the final mean."""
        result = self.mean
        for value in values:
            result = self.update(value)
        return result
