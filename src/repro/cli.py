"""Command-line interface for the GHSOM traffic anomaly detector.

The CLI wraps the most common workflows so the system can be driven without
writing Python:

``repro-ids generate``
    Write a synthetic KDD-style dataset to a CSV file.
``repro-ids simulate``
    Simulate raw enterprise traffic with injected attacks and write the
    derived KDD-style records to a CSV file.
``repro-ids train``
    Train a GHSOM detector (supervised or one-class) on a CSV dataset and
    save a single JSON bundle holding the preprocessing pipeline and the
    fitted detector.
``repro-ids detect``
    Score a CSV dataset with a saved bundle; prints a summary and optionally
    writes per-record alarms.
``repro-ids evaluate``
    Train and compare several detectors on a train/test CSV pair and print
    (or save) the comparison report.
``repro-ids inspect``
    Print the topology and layer tree of a saved model bundle.
``repro-ids shard-worker``
    Serve shard tasks over TCP for distributed detection: start one worker
    per host, then point ``repro-ids detect --shard-backend remote
    --remote-workers HOST:PORT,...`` at them.
``repro-ids serve``
    Run the async detection gateway: load one model bundle, listen for
    concurrent ``detect`` requests over the framed transport, and coalesce
    requests arriving within a few-ms tick into single batched detection
    calls (see :class:`repro.serving.gateway.DetectionGateway`).

Run ``repro-ids <command> --help`` for the options of each command.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence


from repro.baselines import KMeansDetector, KnnDetector, LofDetector, PcaSubspaceDetector, SomDetector
from repro.core import GhsomConfig, GhsomDetector, SomTrainingConfig
from repro.core import kernels
from repro.core.inspection import describe_tree
from repro.core.serialization import (
    BINARY_FORMAT_VERSION,
    _UNSET,
    _legacy_serving_overrides,
    check_artifact_format,
    detector_binary_payload,
    detector_from_dict,
    detector_to_dict,
    sidecar_path_for,
    write_binary_sidecar,
    write_json_atomic,
)
from repro.data.loader import load_csv, save_csv
from repro.data.preprocess import PreprocessingPipeline
from repro.data.synthetic import KddSyntheticGenerator
from repro.eval.experiments import DetectorResult, evaluate_detector
from repro.eval.metrics import binary_metrics, per_category_detection_rates
from repro.eval.reporting import save_markdown_report, save_results_json
from repro.eval.tables import format_table
from repro.exceptions import ReproError
from repro.serving.config import ServingConfig, ShardingSpec

#: Bundle v2 embeds the compiled flat arrays + per-leaf tables (detector
#: format v2), so ``detect`` serves without rebuilding the Python tree;
#: bundle v3 (``--format binary``) moves the arrays into an ``.npz`` sidecar
#: next to the JSON, memory-mapped at load.  v1/v2 bundles are still read.
BUNDLE_FORMAT_VERSION = 2
BUNDLE_BINARY_FORMAT_VERSION = BINARY_FORMAT_VERSION
SUPPORTED_BUNDLE_VERSIONS = (1, 2, 3)


# --------------------------------------------------------------------------- #
# bundle helpers (pipeline + detector in one JSON document)
# --------------------------------------------------------------------------- #
def save_bundle(
    pipeline: PreprocessingPipeline,
    detector: GhsomDetector,
    path: Path,
    *,
    format: str = "json",
) -> None:
    """Write the preprocessing pipeline and the fitted detector as one bundle.

    ``format="json"`` (default) produces the single-document v2 bundle;
    ``format="binary"`` produces the v3 pair — the JSON bundle (metadata,
    pipeline, tree structure, integrity header) plus an ``.npz`` array
    sidecar next to it that ``load_bundle`` memory-maps.  Every file is
    written atomically (temp file + rename): a crash mid-save can never
    leave a truncated, unloadable bundle behind.
    """
    path = Path(path)
    if check_artifact_format(format) == "binary":
        detector_payload, arrays = detector_binary_payload(detector)
        # The sidecar header lives on the *detector* payload (where the
        # reader resolves it) and the sidecar shares the bundle's stem.
        write_binary_sidecar(detector_payload, arrays, path)
        payload = {
            "kind": "repro_bundle",
            "format_version": BUNDLE_BINARY_FORMAT_VERSION,
            "pipeline": pipeline.to_dict(),
            "detector": detector_payload,
        }
    else:
        payload = {
            "kind": "repro_bundle",
            "format_version": BUNDLE_FORMAT_VERSION,
            "pipeline": pipeline.to_dict(),
            "detector": detector_to_dict(detector),
        }
    write_json_atomic(payload, path)


def load_bundle(
    path: Path,
    *,
    config: Optional[ServingConfig] = None,
    overrides: Optional[Mapping[str, object]] = None,
    dtype: object = _UNSET,
    shards: object = _UNSET,
    workers: object = _UNSET,
    shard_backend: object = _UNSET,
    remote_workers: object = _UNSET,
    mmap: object = _UNSET,
    verify: object = _UNSET,
    engine: object = _UNSET,
):
    """Load a bundle written by :func:`save_bundle` (any supported version).

    The bundle version is auto-detected from the JSON header; a v3 (binary)
    bundle memory-maps the ``.npz`` sidecar next to the JSON file.

    How the loaded detector serves is one declarative object — a
    :class:`repro.serving.ServingConfig` covering dtype, compute engine,
    sharding and artifact options.  Precedence follows
    :func:`repro.serving.config.effective_config`: pass ``config=`` (a full
    config, wins wholesale), or ``overrides=`` (flat field overrides — the
    knobs the caller actually chose — applied on top of the config embedded
    in the artifact, falling back to the library default).  A v2+ bundle
    saved from a configured detector therefore round-trips its serving
    setup: ``load_bundle(path)`` alone rehydrates the detector exactly as it
    was configured when saved.

    Resolution is *strict* at load time — e.g. requesting the ``"fused"``
    engine on a host without a kernel provider fails here instead of at the
    first score.  Scores stay byte-identical to the unsharded float64 engine
    for every sharding setup; ``dtype="float32"`` opts into the narrowed
    serving mode (see :meth:`repro.core.CompiledGhsom.astype`).

    The individual keyword arguments (``dtype``, ``shards``, ``workers``,
    ``shard_backend``, ``remote_workers``, ``mmap``, ``verify``, ``engine``)
    are deprecated shims over ``overrides=`` and emit a
    :class:`DeprecationWarning`.
    """
    merged = dict(overrides or {})
    merged.update(
        _legacy_serving_overrides(
            {
                "dtype": dtype,
                "shards": shards,
                "workers": workers,
                "backend": shard_backend,
                "remote_workers": remote_workers,
                "mmap": mmap,
                "verify": verify,
                "engine": engine,
            },
            "load_bundle()",
        )
    )
    path = Path(path)
    payload = json.loads(path.read_text())
    if payload.get("kind") != "repro_bundle":
        raise ReproError(f"{path} is not a repro model bundle")
    if payload.get("format_version") not in SUPPORTED_BUNDLE_VERSIONS:
        raise ReproError(
            f"{path} has unsupported bundle version {payload.get('format_version')!r}"
        )
    pipeline = PreprocessingPipeline.from_dict(payload["pipeline"])
    detector = detector_from_dict(
        payload["detector"],
        config=config,
        overrides=merged or None,
        sidecar_dir=path.parent,
    )
    return pipeline, detector


# --------------------------------------------------------------------------- #
# shared serving flags
# --------------------------------------------------------------------------- #
def add_serving_args(
    parser: argparse.ArgumentParser,
    *,
    dtype: bool = True,
    artifact: bool = True,
    sharding: bool = True,
    engine_help: Optional[str] = None,
) -> None:
    """Attach the shared serving flags to one subcommand parser.

    One flag block for every command that loads a model (``detect``,
    ``inspect``) or serves one (``shard-worker``), so the vocabulary cannot
    drift between commands.  The flags map one-to-one onto
    :class:`repro.serving.ServingConfig` fields via
    :func:`serving_overrides_from_args`.
    """
    group = parser.add_argument_group("serving options")
    if dtype:
        group.add_argument(
            "--float32",
            action="store_true",
            help="serve in float32 (faster on large models; scores drift ~1e-4 relative)",
        )
    group.add_argument(
        "--engine",
        choices=("numpy", "fused", "auto"),
        default=None,
        help=engine_help
        or (
            "descent compute engine: numpy = vectorised reference "
            "(byte-exact, default); fused = single-pass distance+argmin "
            "kernel (fails if no provider is available); auto = fused when "
            "possible, numpy otherwise"
        ),
    )
    if artifact:
        group.add_argument(
            "--no-mmap",
            action="store_true",
            help="read a binary (v3) artifact's sidecar eagerly instead of memory-mapping it",
        )
        group.add_argument(
            "--verify",
            action="store_true",
            help="check a binary (v3) sidecar's SHA-256 against the integrity header at load",
        )
    if sharding:
        group.add_argument(
            "--shards",
            type=int,
            default=None,
            metavar="K",
            help="serve through K root-subtree shards (scores stay byte-identical)",
        )
        group.add_argument(
            "--workers",
            type=int,
            default=None,
            help="worker count for the shard backend (default: usable CPU cores)",
        )
        group.add_argument(
            "--shard-backend",
            choices=("serial", "thread", "process", "remote"),
            default=None,
            help="how sharded sub-batches execute (default: thread; requires --shards)",
        )
        group.add_argument(
            "--remote-workers",
            metavar="HOST:PORT[,HOST:PORT...]",
            default=None,
            help=(
                "shard-worker addresses for --shard-backend remote (one "
                "repro-ids shard-worker per address; unreachable workers fail "
                "over to local serial execution)"
            ),
        )
        group.add_argument(
            "--provisioning",
            choices=("auto", "reference", "value"),
            default=None,
            help=(
                "how remote workers receive the shard set: auto = by "
                "reference when sidecar fingerprints match, else by value; "
                "reference = strict; value = always stream the arrays"
            ),
        )


def serving_overrides_from_args(args: argparse.Namespace) -> Dict[str, object]:
    """The serving-config overrides the operator explicitly passed.

    Only flags that were actually given end up in the mapping — that is what
    gives CLI flags field-wise precedence over an artifact-embedded config
    without clobbering it (see
    :func:`repro.serving.config.effective_config`).
    """
    overrides: Dict[str, object] = {}
    if getattr(args, "float32", False):
        overrides["dtype"] = "float32"
    if getattr(args, "engine", None) is not None:
        overrides["engine"] = args.engine
    if getattr(args, "no_mmap", False):
        overrides["mmap"] = False
    if getattr(args, "verify", False):
        overrides["verify"] = True
    if getattr(args, "shards", None) is not None:
        overrides["shards"] = args.shards
    if getattr(args, "workers", None) is not None:
        overrides["workers"] = args.workers
    if getattr(args, "shard_backend", None) is not None:
        overrides["backend"] = args.shard_backend
    if getattr(args, "remote_workers", None) is not None:
        overrides["remote_workers"] = args.remote_workers
    if getattr(args, "provisioning", None) is not None:
        overrides["provisioning"] = args.provisioning
    return overrides


def serving_config_from_args(args: argparse.Namespace) -> ServingConfig:
    """A full :class:`ServingConfig` built from the shared CLI flags.

    Library defaults fill everything the operator did not pass.  Commands
    that load artifacts use :func:`serving_overrides_from_args` instead (the
    artifact-embedded config must stay the base); this constructor is for
    callers that need the config as a standalone value — e.g. to embed it in
    a bundle they are about to save, or ship it to a service.
    """
    overrides = serving_overrides_from_args(args)
    return ServingConfig().with_overrides(overrides) if overrides else ServingConfig()


# --------------------------------------------------------------------------- #
# commands
# --------------------------------------------------------------------------- #
def cmd_generate(args: argparse.Namespace) -> int:
    generator = KddSyntheticGenerator(random_state=args.seed)
    if args.normal_only:
        dataset = generator.generate_normal(args.records)
    else:
        dataset = generator.generate(args.records)
    save_csv(dataset, args.output)
    print(f"wrote {len(dataset)} records to {args.output}")
    print(f"class mix: {dataset.class_counts()}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.netsim import AttackInjection, TrafficSimulator

    injections = []
    for spec in args.attack or []:
        try:
            name, start = spec.split(":", maxsplit=1)
            injections.append(AttackInjection(name.strip(), float(start)))
        except ValueError as exc:
            raise ReproError(f"invalid --attack spec {spec!r}; expected NAME:START_SECONDS") from exc
    simulator = TrafficSimulator(
        duration_seconds=args.duration,
        sessions_per_second=args.rate,
        injections=injections,
        random_state=args.seed,
    )
    dataset = simulator.run()
    save_csv(dataset, args.output)
    print(f"simulated {args.duration:.0f}s of traffic: {len(dataset)} connections -> {args.output}")
    print(f"class mix: {dataset.class_counts()}")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    dataset = load_csv(args.train)
    pipeline = PreprocessingPipeline()
    X_train = pipeline.fit_transform(dataset)
    config = GhsomConfig(
        tau1=args.tau1,
        tau2=args.tau2,
        max_depth=args.max_depth,
        max_map_size=args.max_map_size,
        min_samples_for_expansion=args.min_expansion,
        training=SomTrainingConfig(epochs=args.epochs),
        random_state=args.seed,
    )
    detector = GhsomDetector(
        config, threshold_strategy=args.threshold_strategy, random_state=args.seed
    )
    labels = None if args.one_class else [str(category) for category in dataset.categories]
    detector.fit(X_train, labels)
    model_path = Path(args.model)
    save_bundle(pipeline, detector, model_path, format=args.format)
    topology = detector.topology_summary()
    print(f"trained GHSOM on {len(dataset)} records ({'one-class' if args.one_class else 'labelled'})")
    print(
        f"topology: {topology['n_maps']} maps, {topology['n_units']} units, depth {topology['depth']}"
    )
    print(f"model bundle written to {args.model}")
    if args.format == "binary":
        print(
            f"binary array sidecar written to {sidecar_path_for(model_path)} "
            "(keep it next to the bundle; detect/inspect mmap it on load)"
        )
    return 0


def cmd_detect(args: argparse.Namespace) -> int:
    overrides = serving_overrides_from_args(args)
    pipeline, detector = load_bundle(Path(args.model), overrides=overrides or None)
    dataset = load_csv(args.input)
    if len(dataset) == 0:
        # load_csv already rejects empty files; this keeps the alarm-rate
        # division safe (and the exit contract identical) should it ever
        # start returning empty datasets.
        raise ReproError(f"{args.input} contains no records")
    X = pipeline.transform(dataset)
    sharding = detector.sharding
    if sharding is not None:
        print(
            f"sharded serving: {sharding['n_shards']} shards on the "
            f"{sharding['backend']} backend ({sharding['workers']} workers)"
        )
    # One pass: scores, decisions and categories all come from a single
    # tree descent instead of one per method call.  Sharded serving is
    # disabled again afterwards so pooled workers never linger into
    # interpreter shutdown.
    try:
        result = detector.detect(X)
    finally:
        detector.configure(detector.serving_config.evolve(sharding=ShardingSpec()))
    alarms, scores, categories = result.predictions, result.scores, result.categories
    n_alarms = int(alarms.sum())
    print(f"scored {len(dataset)} records: {n_alarms} alarms ({n_alarms / len(dataset):.2%})")
    stats = result.stats
    if stats is not None:
        print(
            f"serving: engine={stats.engine} dtype={stats.dtype} "
            f"ingest {stats.ingest_s * 1e3:.1f} ms, route {stats.route_s * 1e3:.1f} ms, "
            f"descend {stats.descend_s * 1e3:.1f} ms, merge {stats.merge_s * 1e3:.1f} ms "
            f"(total {stats.total_s * 1e3:.1f} ms)"
        )
    # If the input carries attack labels, also report detection quality —
    # unless the operator said the labels are not to be trusted.
    true_categories = [str(category) for category in dataset.categories]
    labels_present = any(category != "normal" for category in true_categories)
    if not args.assume_unlabeled and labels_present:
        metrics = binary_metrics(dataset.is_attack.astype(int), alarms)
        print(
            format_table(
                [[metrics.detection_rate, metrics.false_positive_rate, metrics.precision, metrics.f1]],
                ["detection_rate", "false_positive_rate", "precision", "f1"],
                title="Detection quality (using labels found in the input)",
            )
        )
        rates = per_category_detection_rates(true_categories, alarms)
        print()
        print(
            format_table(
                [[category, rate] for category, rate in sorted(rates.items())],
                ["category", "alarm_fraction"],
            )
        )
    if args.output:
        output = Path(args.output)
        output.parent.mkdir(parents=True, exist_ok=True)
        with output.open("w") as handle:
            handle.write("record_index,alarm,score,predicted_category\n")
            for index, (alarm, score, category) in enumerate(zip(alarms, scores, categories, strict=True)):
                handle.write(f"{index},{int(alarm)},{float(score):.6f},{category}\n")
        print(f"\nper-record decisions written to {output}")
    return 0


def cmd_shard_worker(args: argparse.Namespace) -> int:
    """Run one distributed-serving worker until interrupted.

    With ``--model`` the worker validates the artifact pair on its disk
    (fail fast, before a coordinator depends on it) and advertises the v3
    sidecar's fingerprint so coordinators can provision shards *by
    reference* — the wire then carries region descriptors instead of
    codebook bytes.  ``--shards K`` additionally validates the bundle is
    servable sharded at K and pre-reads the sidecar, so the first
    provisioning request lands on a warm page cache.  Without ``--model``
    the worker still serves any coordinator, receiving its shards by value.
    """
    from repro.serving.remote import ShardWorkerServer
    from repro.serving.transport import parse_address

    host, port = parse_address(args.listen)
    if args.shards and args.model is None:
        # Same convention as load_bundle: an inapplicable flag is rejected,
        # never silently ignored (the operator believes the worker is
        # validated and warm when nothing happened).
        raise ReproError(
            "--shards validates and warms a local model artifact; pass "
            "--model alongside it (a worker without --model serves shards "
            "by value only)"
        )
    if args.model is not None:
        model_path = Path(args.model)
        # Fail fast on a broken or missing artifact; optionally prove the
        # shard manifest plans cleanly at the requested K (and touch the
        # sidecar so first-provision page faults land on a warm cache).
        pipeline, detector = load_bundle(
            model_path,
            overrides={"shards": args.shards, "backend": "serial"} if args.shards else None,
        )
        del pipeline, detector
        sidecar = sidecar_path_for(model_path)
        if args.shards and sidecar.exists():
            # Warm the page cache in fixed-size chunks: the sidecar can be
            # larger than this host's RAM, so never materialise it whole.
            with sidecar.open("rb") as stream:
                while stream.read(1 << 22):
                    pass
    server = ShardWorkerServer(host, port, model_path=args.model, engine=args.engine)
    mode = (
        "by-reference/by-value provisioning"
        if server.sidecar_path is not None
        else "by-value provisioning only"
        if args.model
        else "by-value provisioning only (no --model)"
    )
    print(
        f"shard worker listening on {server.address[0]}:{server.address[1]} "
        f"(pid {os.getpid()}, {mode})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the async detection gateway until interrupted.

    One model bundle, resolved through the standard serving-config
    precedence (CLI flags > artifact-embedded config > defaults) exactly
    once at startup — the banner prints the resolved plan so a strict
    misconfiguration fails here, never at a client's first request.
    """
    from repro.serving.gateway import DetectionGateway
    from repro.serving.transport import parse_address

    host, port = parse_address(args.listen)
    overrides = serving_overrides_from_args(args)
    pipeline, detector = load_bundle(Path(args.model), overrides=overrides or None)
    del pipeline  # the gateway serves preprocessed records
    gateway = DetectionGateway(
        detector,
        host,
        port,
        tick_ms=args.tick_ms,
        max_batch_rows=args.max_batch_rows,
        max_pending_rows=args.max_pending_rows,
    )
    plan = detector.resolved_plan()
    plan_text = f"dtype={plan.dtype} engine={plan.engine}" + (
        f" shards={plan.n_shards} backend={plan.backend}" if plan.sharded else ""
    )
    print(
        f"detection gateway listening on {gateway.address[0]}:{gateway.address[1]} "
        f"(pid {os.getpid()}, tick {args.tick_ms} ms, "
        f"max batch {args.max_batch_rows} rows, {plan_text})",
        flush=True,
    )
    try:
        gateway.serve_forever()
    finally:
        gateway.shutdown()
    return 0


def _build_detector(name: str, seed: int):
    registry = {
        "ghsom": lambda: GhsomDetector(GhsomConfig(random_state=seed), random_state=seed),
        "som": lambda: SomDetector(10, 10, training=SomTrainingConfig(epochs=10), random_state=seed),
        "kmeans": lambda: KMeansDetector(n_clusters=60, random_state=seed),
        "pca": lambda: PcaSubspaceDetector(threshold_mode="percentile"),
        "knn": lambda: KnnDetector(random_state=seed),
        "lof": lambda: LofDetector(random_state=seed),
    }
    if name not in registry:
        raise ReproError(f"unknown detector {name!r}; available: {sorted(registry)}")
    return registry[name]()


def cmd_evaluate(args: argparse.Namespace) -> int:
    train = load_csv(args.train)
    test = load_csv(args.test)
    pipeline = PreprocessingPipeline()
    X_train = pipeline.fit_transform(train)
    X_test = pipeline.transform(test)
    y_train = None if args.one_class else [str(category) for category in train.categories]
    names = [name.strip() for name in args.detectors.split(",") if name.strip()]
    results: Dict[str, DetectorResult] = {}
    for name in names:
        detector = _build_detector(name, args.seed)
        result = evaluate_detector(
            detector,
            X_train,
            y_train,
            X_test,
            [str(category) for category in test.categories],
            with_confusion=not args.one_class,
        )
        result.name = name
        results[name] = result
    rows = [results[name].summary_row() for name in names]
    print(format_table(rows, DetectorResult.summary_headers(), title="Evaluation results"))
    if args.json:
        save_results_json(results, args.json, metadata={"train": str(args.train), "test": str(args.test)})
        print(f"JSON results written to {args.json}")
    if args.report:
        save_markdown_report(
            results,
            args.report,
            title="GHSOM evaluation report",
            metadata={"train": str(args.train), "test": str(args.test)},
        )
        print(f"Markdown report written to {args.report}")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    overrides = serving_overrides_from_args(args)
    pipeline, detector = load_bundle(Path(args.model), overrides=overrides or None)
    topology = detector.topology_summary()
    print(
        format_table(
            [[topology[key] for key in ("n_maps", "n_units", "n_leaf_units", "depth", "tau1", "tau2")]],
            ["maps", "units", "leaf_units", "depth", "tau1", "tau2"],
            title="Model topology",
        )
    )
    print()
    print(describe_tree(detector.model, detector.labeler))
    if detector.is_labeled:
        print()
        print(
            format_table(
                [[label, count] for label, count in sorted(detector.leaf_label_distribution().items())],
                ["leaf label", "count"],
                title="Leaf label distribution",
            )
        )
    # The resolved serving plan: what this host would actually execute for
    # the loaded artifact + the flags passed to this command (artifact-
    # embedded config with CLI overrides on top, resolved here and now).
    plan = detector.resolved_plan().describe()
    shard_layout = "-"
    if plan["sharded"]:
        shard_layout = f"{plan['n_shards']} shards / {plan['backend']} backend"
        if plan["remote_workers"]:
            shard_layout += f" ({','.join(plan['remote_workers'])})"
        elif plan["workers"]:
            shard_layout += f" ({plan['workers']} workers)"
    rows = [
        ["dtype", plan["dtype"]],
        ["engine", f"{plan['engine']} (requested {plan['engine_requested']})"],
        ["provider", plan["provider"] or "-"],
        ["sharding", shard_layout],
        ["mmap / verify", f"{plan['mmap']} / {plan['verify']}"],
        ["usable cores", plan["usable_cores"]],
        ["default engine", plan["default_engine"]],
        ["fused providers", ",".join(plan["fused_providers_available"]) or "-"],
    ]
    print()
    print(format_table(rows, ["knob", "resolved"], title="Serving plan"))
    diagnostics = kernels.provider_diagnostics()
    if diagnostics:
        print()
        print(
            format_table(
                [[name, reason] for name, reason in sorted(diagnostics.items())],
                ["provider", "unavailable because"],
                title="Provider diagnostics",
            )
        )
    return 0


# --------------------------------------------------------------------------- #
# argument parsing
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ids",
        description="GHSOM-based network traffic anomaly detection",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic KDD-style dataset")
    generate.add_argument("--records", type=int, default=5000, help="number of records")
    generate.add_argument("--output", required=True, help="output CSV path")
    generate.add_argument("--normal-only", action="store_true", help="generate only normal traffic")
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(handler=cmd_generate)

    simulate = subparsers.add_parser("simulate", help="simulate raw traffic with injected attacks")
    simulate.add_argument("--duration", type=float, default=600.0, help="trace length in seconds")
    simulate.add_argument("--rate", type=float, default=2.0, help="background sessions per second")
    simulate.add_argument(
        "--attack",
        action="append",
        metavar="NAME:START",
        help="inject an attack, e.g. --attack neptune:120 (repeatable)",
    )
    simulate.add_argument("--output", required=True, help="output CSV path")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.set_defaults(handler=cmd_simulate)

    train = subparsers.add_parser("train", help="train a GHSOM detector and save a model bundle")
    train.add_argument("--train", required=True, help="training CSV")
    train.add_argument("--model", required=True, help="output model bundle (JSON)")
    train.add_argument("--one-class", action="store_true", help="ignore labels (novelty detection)")
    train.add_argument("--tau1", type=float, default=0.3)
    train.add_argument("--tau2", type=float, default=0.05)
    train.add_argument("--max-depth", type=int, default=3)
    train.add_argument("--max-map-size", type=int, default=100)
    train.add_argument("--min-expansion", type=int, default=60)
    train.add_argument("--epochs", type=int, default=5)
    train.add_argument(
        "--threshold-strategy", choices=("per_unit", "global"), default="per_unit"
    )
    train.add_argument(
        "--format",
        choices=("json", "binary"),
        default="json",
        help=(
            "artifact format: json = single self-contained document; "
            "binary = JSON metadata + .npz array sidecar, memory-mapped on "
            "load for O(metadata) cold starts (detect/inspect auto-detect)"
        ),
    )
    train.add_argument("--seed", type=int, default=0)
    train.set_defaults(handler=cmd_train)

    detect = subparsers.add_parser("detect", help="score a dataset with a saved model bundle")
    detect.add_argument("--model", required=True, help="model bundle (JSON)")
    detect.add_argument("--input", required=True, help="CSV of records to score")
    detect.add_argument("--output", help="optional CSV of per-record decisions")
    detect.add_argument(
        "--assume-unlabeled",
        action="store_true",
        help="do not compute quality metrics from labels in the input",
    )
    add_serving_args(detect)
    detect.set_defaults(handler=cmd_detect)

    shard_worker = subparsers.add_parser(
        "shard-worker",
        help="serve shard tasks over TCP for distributed detection",
    )
    shard_worker.add_argument(
        "--listen",
        required=True,
        metavar="HOST:PORT",
        help="address to listen on (PORT 0 binds an ephemeral port, printed at startup)",
    )
    shard_worker.add_argument(
        "--model",
        default=None,
        help=(
            "model bundle on this host; a v3 (binary) bundle enables "
            "by-reference shard provisioning (validated against the "
            "coordinator's per-member CRC-32s)"
        ),
    )
    shard_worker.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help="validate --model serves sharded at K and pre-read the sidecar (warm start)",
    )
    add_serving_args(
        shard_worker,
        dtype=False,
        artifact=False,
        sharding=False,
        engine_help=(
            "worker-local descent-engine override applied to every "
            "provisioned shard (wins over the engine in the coordinator's "
            "shipped ServingConfig; resolution inside shards is non-strict, "
            "so a host without a kernel provider degrades to numpy)"
        ),
    )
    shard_worker.set_defaults(handler=cmd_shard_worker)

    serve = subparsers.add_parser(
        "serve",
        help="run the async detection gateway (micro-batched live scoring)",
    )
    serve.add_argument(
        "--listen",
        required=True,
        metavar="HOST:PORT",
        help="address to listen on (PORT 0 binds an ephemeral port, printed at startup)",
    )
    serve.add_argument("--model", required=True, help="model bundle to serve")
    serve.add_argument(
        "--tick-ms",
        type=float,
        default=2.0,
        metavar="MS",
        help=(
            "micro-batching window: requests arriving within this many "
            "milliseconds of the first one coalesce into a single detect "
            "call (0 disables the wait; larger ticks trade per-request "
            "latency for throughput)"
        ),
    )
    serve.add_argument(
        "--max-batch-rows",
        type=int,
        default=4096,
        metavar="N",
        help="row cap per coalesced detect call (also the largest row-block one request may carry)",
    )
    serve.add_argument(
        "--max-pending-rows",
        type=int,
        default=32768,
        metavar="N",
        help=(
            "admission bound on rows admitted-but-unanswered; requests over "
            "it are rejected with an explicit error reply (backpressure, "
            "never silent drops)"
        ),
    )
    add_serving_args(serve)
    serve.set_defaults(handler=cmd_serve)

    evaluate = subparsers.add_parser("evaluate", help="compare detectors on a train/test pair")
    evaluate.add_argument("--train", required=True)
    evaluate.add_argument("--test", required=True)
    evaluate.add_argument(
        "--detectors",
        default="ghsom,som,kmeans,pca,knn",
        help="comma-separated detectors (ghsom,som,kmeans,pca,knn,lof)",
    )
    evaluate.add_argument("--one-class", action="store_true")
    evaluate.add_argument("--json", help="write machine-readable results to this path")
    evaluate.add_argument("--report", help="write a Markdown report to this path")
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.set_defaults(handler=cmd_evaluate)

    inspect = subparsers.add_parser(
        "inspect",
        help="print the structure and resolved serving plan of a saved model bundle",
    )
    inspect.add_argument("--model", required=True)
    add_serving_args(inspect)
    inspect.set_defaults(handler=cmd_inspect)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return int(args.handler(args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
