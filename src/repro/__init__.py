"""Network traffic anomaly detection based on a Growing Hierarchical SOM (GHSOM).

This package is a from-scratch reproduction of a GHSOM-based network
intrusion / traffic-anomaly detection system:

* :mod:`repro.core` -- the GHSOM model itself (growing SOM layers, hierarchy,
  unit labelling, threshold calibration) and the :class:`GhsomDetector`;
* :mod:`repro.data` -- the KDD-style connection-record schema, a synthetic
  dataset generator standing in for the public KDD/NSL-KDD files, loading and
  preprocessing;
* :mod:`repro.netsim` -- a flow-level traffic simulator with attack injection
  and a KDD feature extractor (the raw-trace substrate);
* :mod:`repro.baselines` -- flat SOM, k-means, PCA-subspace and k-NN baseline
  detectors;
* :mod:`repro.serving` -- sharded serving on the compiled flat arrays
  (root-subtree shards, batch router, serial/thread/process backends);
* :mod:`repro.streaming` -- online detection with adaptive thresholds and
  drift handling;
* :mod:`repro.eval` -- metrics, the experiment runner and parameter sweeps
  that regenerate the paper-style tables and figures.

Quickstart
----------
>>> from repro import KddSyntheticGenerator, PreprocessingPipeline, GhsomDetector
>>> generator = KddSyntheticGenerator(random_state=0)
>>> train, test = generator.generate_train_test(2000, 1000)
>>> pipeline = PreprocessingPipeline()
>>> detector = GhsomDetector(random_state=0)
>>> _ = detector.fit(pipeline.fit_transform(train), train.categories)
>>> alarms = detector.predict(pipeline.transform(test))
"""

from repro.baselines import KMeansDetector, KnnDetector, LofDetector, PcaSubspaceDetector, SomDetector
from repro.core import (
    BaseAnomalyDetector,
    EnsembleDetector,
    describe_tree,
    u_matrix,
    Ghsom,
    GhsomConfig,
    GhsomDetector,
    GrowingSom,
    Som,
    SomTrainingConfig,
    UnitLabeler,
    load_detector,
    load_ghsom,
    save_detector,
    save_ghsom,
)
from repro.data import (
    ConnectionRecord,
    Dataset,
    KddSchema,
    KddSyntheticGenerator,
    PreprocessingPipeline,
    load_csv,
    save_csv,
    stratified_split,
    train_test_split,
)
from repro.eval import (
    ExperimentRunner,
    cross_validate_detector,
    auc,
    binary_metrics,
    confusion_matrix,
    evaluate_detector,
    format_table,
    per_category_detection_rates,
    roc_curve,
)
from repro.netsim import AttackInjection, TrafficSimulator
from repro.streaming import AlertAggregator, OnlineDetector, StreamingPipeline

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "BaseAnomalyDetector",
    "EnsembleDetector",
    "describe_tree",
    "u_matrix",
    "Ghsom",
    "GhsomConfig",
    "GhsomDetector",
    "GrowingSom",
    "Som",
    "SomTrainingConfig",
    "UnitLabeler",
    "load_detector",
    "load_ghsom",
    "save_detector",
    "save_ghsom",
    # data
    "ConnectionRecord",
    "Dataset",
    "KddSchema",
    "KddSyntheticGenerator",
    "PreprocessingPipeline",
    "load_csv",
    "save_csv",
    "stratified_split",
    "train_test_split",
    # baselines
    "KMeansDetector",
    "KnnDetector",
    "LofDetector",
    "PcaSubspaceDetector",
    "SomDetector",
    # eval
    "ExperimentRunner",
    "cross_validate_detector",
    "auc",
    "binary_metrics",
    "confusion_matrix",
    "evaluate_detector",
    "format_table",
    "per_category_detection_rates",
    "roc_curve",
    # netsim
    "AttackInjection",
    "TrafficSimulator",
    # streaming
    "AlertAggregator",
    "OnlineDetector",
    "StreamingPipeline",
]
