"""Loading, saving and splitting of KDD-style datasets.

The on-disk format mirrors the original KDD Cup 99 files: one comma-separated
record per line, 41 feature fields followed by the label (optionally with the
trailing dot used in the original distribution).  A header line is optional
and auto-detected.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.data.records import Dataset
from repro.data.schema import KddSchema
from repro.exceptions import DataValidationError
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_fraction

PathLike = Union[str, Path]


def save_csv(dataset: Dataset, path: PathLike, *, header: bool = True) -> None:
    """Write ``dataset`` to ``path`` in KDD CSV format (features + label)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        if header:
            writer.writerow(list(dataset.schema.feature_names) + ["label"])
        for row, label in zip(dataset.raw, dataset.labels, strict=True):
            writer.writerow([_format_field(value) for value in row] + [str(label)])


def _format_field(value: object) -> str:
    """Render a raw field: integers without a decimal point, floats compactly."""
    if isinstance(value, str):
        return value
    number = float(value)
    if number.is_integer():
        return str(int(number))
    return f"{number:.6g}"


def load_csv(path: PathLike, *, schema: Optional[KddSchema] = None) -> Dataset:
    """Read a KDD-format CSV file into a :class:`Dataset`.

    A header line is detected by checking whether the first field of the first
    row matches the first schema feature name.
    """
    path = Path(path)
    schema = schema or KddSchema()
    if not path.exists():
        raise DataValidationError(f"dataset file does not exist: {path}")
    rows: List[List[object]] = []
    labels: List[str] = []
    with path.open("r", newline="") as handle:
        reader = csv.reader(handle)
        for line_number, fields in enumerate(reader):
            if not fields:
                continue
            if line_number == 0 and fields[0].strip() == schema.feature_names[0]:
                continue  # header line
            if len(fields) != schema.n_features + 1:
                raise DataValidationError(
                    f"line {line_number + 1} of {path} has {len(fields)} fields; "
                    f"expected {schema.n_features + 1}"
                )
            raw_row = [
                _parse_field(field.strip(), name, schema)
                for field, name in zip(fields[: schema.n_features], schema.feature_names, strict=True)
            ]
            rows.append(raw_row)
            labels.append(fields[-1].strip().rstrip("."))
    if not rows:
        raise DataValidationError(f"dataset file {path} contains no records")
    return Dataset(rows, labels, schema=schema)


def _parse_field(field: str, name: str, schema: KddSchema) -> object:
    if schema.is_categorical(name):
        return field
    try:
        return float(field)
    except ValueError as exc:
        raise DataValidationError(
            f"could not parse numeric feature {name!r} from value {field!r}"
        ) from exc


def train_test_split(
    dataset: Dataset,
    test_fraction: float = 0.3,
    *,
    random_state: RandomState = None,
) -> Tuple[Dataset, Dataset]:
    """Random split of ``dataset`` into a train and test part."""
    fraction = check_fraction(test_fraction, "test_fraction", inclusive=False)
    rng = ensure_rng(random_state)
    n_records = len(dataset)
    n_test = max(1, int(round(n_records * fraction)))
    if n_test >= n_records:
        raise DataValidationError(
            f"test_fraction={fraction} leaves no training records for a dataset of size {n_records}"
        )
    order = rng.permutation(n_records)
    test_indices = order[:n_test]
    train_indices = order[n_test:]
    return dataset.subset(train_indices), dataset.subset(test_indices)


def stratified_split(
    dataset: Dataset,
    test_fraction: float = 0.3,
    *,
    by_category: bool = True,
    random_state: RandomState = None,
) -> Tuple[Dataset, Dataset]:
    """Split keeping the per-class proportions identical in train and test.

    Classes with a single record are placed in the training set.
    """
    fraction = check_fraction(test_fraction, "test_fraction", inclusive=False)
    rng = ensure_rng(random_state)
    keys = dataset.categories if by_category else dataset.labels
    train_indices: List[int] = []
    test_indices: List[int] = []
    for value in np.unique(keys.astype(str)):
        class_indices = np.flatnonzero(keys.astype(str) == value)
        rng.shuffle(class_indices)
        n_test = int(round(len(class_indices) * fraction))
        if len(class_indices) > 1:
            n_test = min(max(n_test, 1), len(class_indices) - 1)
        else:
            n_test = 0
        test_indices.extend(class_indices[:n_test].tolist())
        train_indices.extend(class_indices[n_test:].tolist())
    rng.shuffle(train_indices)
    rng.shuffle(test_indices)
    return dataset.subset(train_indices), dataset.subset(test_indices)


def class_balance(dataset: Dataset) -> Dict[str, float]:
    """Fraction of records per category (sums to 1)."""
    counts = dataset.class_counts()
    total = sum(counts.values())
    if total == 0:
        return {}
    return {label: count / total for label, count in sorted(counts.items())}
