"""KDD-style network connection datasets: schema, generation, loading, preprocessing."""

from repro.data.schema import (
    ATTACK_CATEGORIES,
    ATTACK_TO_CATEGORY,
    CATEGORICAL_FEATURES,
    FEATURE_NAMES,
    KddSchema,
    attack_category,
)
from repro.data.records import ConnectionRecord, Dataset
from repro.data.synthetic import ClassProfile, KddSyntheticGenerator, default_profiles
from repro.data.loader import load_csv, save_csv, stratified_split, train_test_split
from repro.data.preprocess import (
    MinMaxScaler,
    OneHotEncoder,
    OrdinalEncoder,
    PreprocessingPipeline,
    StandardScaler,
)
from repro.data.features import (
    correlation_matrix,
    select_by_variance,
    feature_entropy,
    select_top_k_by_entropy,
)

__all__ = [
    "ATTACK_CATEGORIES",
    "ATTACK_TO_CATEGORY",
    "CATEGORICAL_FEATURES",
    "FEATURE_NAMES",
    "KddSchema",
    "attack_category",
    "ConnectionRecord",
    "Dataset",
    "ClassProfile",
    "KddSyntheticGenerator",
    "default_profiles",
    "load_csv",
    "save_csv",
    "stratified_split",
    "train_test_split",
    "MinMaxScaler",
    "OneHotEncoder",
    "OrdinalEncoder",
    "PreprocessingPipeline",
    "StandardScaler",
    "correlation_matrix",
    "select_by_variance",
    "feature_entropy",
    "select_top_k_by_entropy",
]
