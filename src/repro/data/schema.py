"""The KDD Cup 99 / NSL-KDD connection-record feature schema.

Network traffic is summarised into *connection records*, each describing one
TCP/UDP/ICMP connection with 41 features grouped into four families:

* **basic** features derived from the connection itself (duration, protocol,
  service, flag, bytes transferred, ...),
* **content** features derived from payload inspection (failed logins, shell
  prompts, ...),
* **time-window** features computed over the last two seconds of traffic from
  the same source (connection counts, error rates, ...), and
* **host-window** features computed over the last 100 connections to the same
  destination host.

This module defines the canonical feature ordering, which features are
categorical, and the mapping from named attacks (``smurf``, ``neptune``, ...)
to the four high-level attack categories used in the evaluation: ``dos``,
``probe``, ``r2l`` and ``u2r``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import SchemaError

#: Canonical KDD-99 feature names, in column order.
FEATURE_NAMES: Tuple[str, ...] = (
    # --- basic features -------------------------------------------------
    "duration",
    "protocol_type",
    "service",
    "flag",
    "src_bytes",
    "dst_bytes",
    "land",
    "wrong_fragment",
    "urgent",
    # --- content features ------------------------------------------------
    "hot",
    "num_failed_logins",
    "logged_in",
    "num_compromised",
    "root_shell",
    "su_attempted",
    "num_root",
    "num_file_creations",
    "num_shells",
    "num_access_files",
    "num_outbound_cmds",
    "is_host_login",
    "is_guest_login",
    # --- time-based traffic features (2-second window) --------------------
    "count",
    "srv_count",
    "serror_rate",
    "srv_serror_rate",
    "rerror_rate",
    "srv_rerror_rate",
    "same_srv_rate",
    "diff_srv_rate",
    "srv_diff_host_rate",
    # --- host-based traffic features (100-connection window) --------------
    "dst_host_count",
    "dst_host_srv_count",
    "dst_host_same_srv_rate",
    "dst_host_diff_srv_rate",
    "dst_host_same_src_port_rate",
    "dst_host_srv_diff_host_rate",
    "dst_host_serror_rate",
    "dst_host_srv_serror_rate",
    "dst_host_rerror_rate",
    "dst_host_srv_rerror_rate",
)

#: Features whose values are symbolic rather than numeric.
CATEGORICAL_FEATURES: Tuple[str, ...] = ("protocol_type", "service", "flag")

#: Binary indicator features (kept numeric, but useful to know for generation).
BINARY_FEATURES: Tuple[str, ...] = (
    "land",
    "logged_in",
    "root_shell",
    "su_attempted",
    "is_host_login",
    "is_guest_login",
)

#: Values the categorical features may take in this reproduction.
PROTOCOL_VALUES: Tuple[str, ...] = ("tcp", "udp", "icmp")
SERVICE_VALUES: Tuple[str, ...] = (
    "http",
    "smtp",
    "ftp",
    "ftp_data",
    "telnet",
    "dns",
    "ssh",
    "pop_3",
    "imap4",
    "ecr_i",
    "private",
    "finger",
    "other",
)
FLAG_VALUES: Tuple[str, ...] = ("SF", "S0", "REJ", "RSTO", "RSTR", "SH", "OTH")

#: The four attack categories plus the normal class.
ATTACK_CATEGORIES: Tuple[str, ...] = ("normal", "dos", "probe", "r2l", "u2r")

#: Mapping from named attacks (as found in KDD-style label columns) to categories.
ATTACK_TO_CATEGORY: Dict[str, str] = {
    "normal": "normal",
    # denial of service
    "smurf": "dos",
    "neptune": "dos",
    "back": "dos",
    "teardrop": "dos",
    "pod": "dos",
    "land": "dos",
    "udpstorm": "dos",
    "apache2": "dos",
    "processtable": "dos",
    "mailbomb": "dos",
    # probing / scanning
    "portsweep": "probe",
    "ipsweep": "probe",
    "satan": "probe",
    "nmap": "probe",
    "mscan": "probe",
    "saint": "probe",
    # remote to local
    "guess_passwd": "r2l",
    "ftp_write": "r2l",
    "imap": "r2l",
    "phf": "r2l",
    "multihop": "r2l",
    "warezmaster": "r2l",
    "warezclient": "r2l",
    "spy": "r2l",
    "snmpguess": "r2l",
    "snmpgetattack": "r2l",
    "httptunnel": "r2l",
    "sendmail": "r2l",
    "xlock": "r2l",
    "xsnoop": "r2l",
    "named": "r2l",
    # user to root
    "buffer_overflow": "u2r",
    "rootkit": "u2r",
    "loadmodule": "u2r",
    "perl": "u2r",
    "sqlattack": "u2r",
    "xterm": "u2r",
    "ps": "u2r",
}


def attack_category(label: str) -> str:
    """Return the high-level category (``normal``/``dos``/``probe``/``r2l``/``u2r``) for a label.

    Labels that are already categories are returned unchanged.  Trailing dots
    (present in the original KDD files, e.g. ``"smurf."``) are stripped.

    Raises
    ------
    SchemaError
        If the label is not a known attack name or category.
    """
    cleaned = label.strip().rstrip(".").lower()
    if cleaned in ATTACK_CATEGORIES:
        return cleaned
    if cleaned in ATTACK_TO_CATEGORY:
        return ATTACK_TO_CATEGORY[cleaned]
    raise SchemaError(f"unknown traffic label: {label!r}")


@dataclass(frozen=True)
class KddSchema:
    """Describes the layout of a KDD-style feature table.

    The default instance describes the full 41-feature schema; reduced schemas
    (e.g. after feature selection) can be constructed by passing an explicit
    ``feature_names`` tuple.
    """

    feature_names: Tuple[str, ...] = FEATURE_NAMES
    categorical: Tuple[str, ...] = CATEGORICAL_FEATURES
    categorical_values: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: {
            "protocol_type": PROTOCOL_VALUES,
            "service": SERVICE_VALUES,
            "flag": FLAG_VALUES,
        }
    )

    def __post_init__(self) -> None:
        unknown = [name for name in self.categorical if name not in self.feature_names]
        if unknown:
            raise SchemaError(f"categorical features not in schema: {unknown}")
        missing_values = [name for name in self.categorical if name not in self.categorical_values]
        if missing_values:
            raise SchemaError(f"categorical features without a value set: {missing_values}")

    @property
    def n_features(self) -> int:
        """Number of raw (pre-encoding) features."""
        return len(self.feature_names)

    @property
    def numeric_features(self) -> Tuple[str, ...]:
        """Names of the non-categorical features, in schema order."""
        return tuple(name for name in self.feature_names if name not in self.categorical)

    def index_of(self, feature: str) -> int:
        """Column index of ``feature`` in the raw table."""
        try:
            return self.feature_names.index(feature)
        except ValueError as exc:
            raise SchemaError(f"feature {feature!r} is not part of the schema") from exc

    def is_categorical(self, feature: str) -> bool:
        """Whether ``feature`` is symbolic."""
        if feature not in self.feature_names:
            raise SchemaError(f"feature {feature!r} is not part of the schema")
        return feature in self.categorical

    def values_for(self, feature: str) -> Tuple[str, ...]:
        """The admissible symbolic values for a categorical feature."""
        if not self.is_categorical(feature):
            raise SchemaError(f"feature {feature!r} is not categorical")
        return self.categorical_values[feature]

    def validate_row(self, row: Sequence) -> None:
        """Validate one raw record against the schema (length and categorical values)."""
        if len(row) != self.n_features:
            raise SchemaError(
                f"record has {len(row)} fields but the schema defines {self.n_features}"
            )
        for name in self.categorical:
            value = row[self.index_of(name)]
            if value not in self.categorical_values[name]:
                raise SchemaError(
                    f"value {value!r} is not admissible for categorical feature {name!r}"
                )


def category_labels(labels: Sequence[str]) -> List[str]:
    """Vectorised :func:`attack_category` over a sequence of labels."""
    return [attack_category(label) for label in labels]
