"""Containers for connection records and labelled datasets.

Two layers of representation are used throughout the library:

* :class:`ConnectionRecord` — a single raw record holding the 41 schema
  features (mixed symbolic / numeric values) together with its label, mainly
  produced by the :mod:`repro.netsim` feature extractor and the synthetic
  generator.
* :class:`Dataset` — a column-oriented table of many records, carrying the
  raw object array, the label vector, and the :class:`~repro.data.schema.KddSchema`
  describing the columns.  Datasets are what the preprocessing pipeline
  consumes and what the loader reads/writes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.data.schema import KddSchema, attack_category
from repro.exceptions import DataValidationError, SchemaError
from repro.utils.rng import RandomState, ensure_rng


@dataclass
class ConnectionRecord:
    """One network connection summarised into KDD-style features.

    Parameters
    ----------
    values:
        Mapping from feature name to value.  Must contain exactly the features
        of ``schema`` (extra keys raise, missing keys raise).
    label:
        The traffic label, either a named attack (``"smurf"``) or a category
        (``"normal"``, ``"dos"``, ...).
    schema:
        The feature schema; defaults to the full 41-feature KDD schema.
    """

    values: Dict[str, Union[str, float]]
    label: str = "normal"
    schema: KddSchema = field(default_factory=KddSchema)

    def __post_init__(self) -> None:
        expected = set(self.schema.feature_names)
        provided = set(self.values)
        missing = expected - provided
        extra = provided - expected
        if missing:
            raise SchemaError(f"record is missing features: {sorted(missing)}")
        if extra:
            raise SchemaError(f"record has unknown features: {sorted(extra)}")
        # Validate categorical values eagerly so bad records fail at creation.
        for name in self.schema.categorical:
            value = self.values[name]
            if value not in self.schema.values_for(name):
                raise SchemaError(
                    f"value {value!r} is not admissible for categorical feature {name!r}"
                )

    @property
    def category(self) -> str:
        """High-level attack category of this record."""
        return attack_category(self.label)

    @property
    def is_attack(self) -> bool:
        """Whether the record is anything other than normal traffic."""
        return self.category != "normal"

    def as_row(self) -> List[Union[str, float]]:
        """The record as a list ordered by the schema's feature order."""
        return [self.values[name] for name in self.schema.feature_names]

    def numeric_vector(self) -> np.ndarray:
        """The numeric features only, as a float vector in schema order."""
        return np.array(
            [float(self.values[name]) for name in self.schema.numeric_features], dtype=float
        )


class Dataset:
    """A labelled, column-oriented table of connection records.

    Attributes
    ----------
    raw:
        Object array of shape ``(n_records, n_features)`` holding the raw
        (pre-encoding) feature values in schema order.
    labels:
        Array of per-record labels (named attacks or categories).
    schema:
        The :class:`KddSchema` describing the columns.
    """

    def __init__(
        self,
        raw: Sequence[Sequence[Union[str, float]]],
        labels: Sequence[str],
        schema: Optional[KddSchema] = None,
    ) -> None:
        self.schema = schema or KddSchema()
        raw_array = np.asarray(raw, dtype=object)
        if raw_array.ndim == 1:
            raw_array = raw_array.reshape(1, -1)
        if raw_array.ndim != 2:
            raise DataValidationError(f"raw data must be 2-dimensional, got shape {raw_array.shape}")
        if raw_array.shape[1] != self.schema.n_features:
            raise DataValidationError(
                f"raw data has {raw_array.shape[1]} columns but the schema defines "
                f"{self.schema.n_features}"
            )
        labels_array = np.asarray(list(labels), dtype=object)
        if labels_array.shape[0] != raw_array.shape[0]:
            raise DataValidationError(
                f"got {raw_array.shape[0]} records but {labels_array.shape[0]} labels"
            )
        self.raw = raw_array
        self.labels = labels_array

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_records(cls, records: Iterable[ConnectionRecord]) -> "Dataset":
        """Build a dataset from an iterable of :class:`ConnectionRecord`."""
        records = list(records)
        if not records:
            raise DataValidationError("cannot build a Dataset from zero records")
        schema = records[0].schema
        rows = [record.as_row() for record in records]
        labels = [record.label for record in records]
        return cls(rows, labels, schema=schema)

    @classmethod
    def empty_like(cls, other: "Dataset") -> "Dataset":
        """An empty dataset sharing ``other``'s schema (useful for accumulation)."""
        empty_raw = np.empty((0, other.schema.n_features), dtype=object)
        return cls(empty_raw, [], schema=other.schema)

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.raw.shape[0]

    def __iter__(self) -> Iterator[ConnectionRecord]:
        for index in range(len(self)):
            yield self.record(index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dataset(n_records={len(self)}, n_features={self.schema.n_features}, "
            f"classes={sorted(self.class_counts())})"
        )

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    def record(self, index: int) -> ConnectionRecord:
        """Materialise record ``index`` as a :class:`ConnectionRecord`."""
        row = self.raw[index]
        values = {name: row[column] for column, name in enumerate(self.schema.feature_names)}
        return ConnectionRecord(values=values, label=str(self.labels[index]), schema=self.schema)

    def column(self, feature: str) -> np.ndarray:
        """The raw column for ``feature``."""
        return self.raw[:, self.schema.index_of(feature)]

    def numeric_matrix(self) -> np.ndarray:
        """The numeric (non-categorical) columns as a float matrix."""
        columns = [self.schema.index_of(name) for name in self.schema.numeric_features]
        return self.raw[:, columns].astype(float)

    @property
    def categories(self) -> np.ndarray:
        """Per-record high-level attack categories."""
        return np.array([attack_category(str(label)) for label in self.labels], dtype=object)

    @property
    def is_attack(self) -> np.ndarray:
        """Boolean vector: ``True`` where the record is an attack."""
        return self.categories != "normal"

    def class_counts(self, *, by_category: bool = True) -> Dict[str, int]:
        """Record counts per class (by category by default, else by raw label)."""
        values = self.categories if by_category else self.labels
        return dict(Counter(str(value) for value in values))

    # ------------------------------------------------------------------ #
    # manipulation
    # ------------------------------------------------------------------ #
    def subset(self, indices: Sequence[int]) -> "Dataset":
        """A new dataset containing only the rows in ``indices`` (order preserved)."""
        index_array = np.asarray(indices, dtype=int)
        return Dataset(self.raw[index_array], self.labels[index_array], schema=self.schema)

    def filter_by_category(self, *categories: str) -> "Dataset":
        """Keep only records whose category is in ``categories``."""
        wanted = set(categories)
        mask = np.array([category in wanted for category in self.categories])
        return self.subset(np.flatnonzero(mask))

    def concat(self, other: "Dataset") -> "Dataset":
        """Concatenate two datasets sharing the same schema."""
        if other.schema.feature_names != self.schema.feature_names:
            raise DataValidationError("cannot concatenate datasets with different schemas")
        raw = np.concatenate([self.raw, other.raw], axis=0)
        labels = np.concatenate([self.labels, other.labels], axis=0)
        return Dataset(raw, labels, schema=self.schema)

    def shuffled(self, random_state: RandomState = None) -> "Dataset":
        """A new dataset with rows in random order."""
        rng = ensure_rng(random_state)
        order = rng.permutation(len(self))
        return self.subset(order)

    def sample(
        self,
        n: int,
        *,
        replace: bool = False,
        random_state: RandomState = None,
    ) -> "Dataset":
        """Random sample of ``n`` records."""
        if n <= 0:
            raise DataValidationError(f"sample size must be positive, got {n}")
        if not replace and n > len(self):
            raise DataValidationError(
                f"cannot sample {n} records without replacement from {len(self)}"
            )
        rng = ensure_rng(random_state)
        indices = rng.choice(len(self), size=n, replace=replace)
        return self.subset(indices)

    def summary(self) -> Dict[str, object]:
        """A small dictionary summarising the dataset (used by Table 1)."""
        counts = self.class_counts()
        total = len(self)
        return {
            "n_records": total,
            "n_features": self.schema.n_features,
            "class_counts": counts,
            "attack_fraction": float(np.mean(self.is_attack)) if total else 0.0,
        }
