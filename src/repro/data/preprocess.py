"""Preprocessing: categorical encoding, scaling and the end-to-end pipeline.

SOM-family models operate on numeric vectors in a bounded range, so a raw
KDD-style :class:`~repro.data.records.Dataset` must be transformed before
training:

1. symbolic features (``protocol_type``, ``service``, ``flag``) are one-hot or
   ordinal encoded,
2. heavy-tailed volume features (bytes, counts, duration) are compressed with
   ``log1p``,
3. everything is scaled to ``[0, 1]`` (min-max) or standardised (z-score).

:class:`PreprocessingPipeline` bundles the three steps behind a scikit-learn
style ``fit`` / ``transform`` interface and remembers the produced feature
names so model inspection can refer back to meaningful columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.records import Dataset
from repro.data.schema import KddSchema
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.utils.validation import check_array_2d

#: Heavy-tailed features that benefit from a log1p transform before scaling.
LOG_SCALE_FEATURES: Tuple[str, ...] = (
    "duration",
    "src_bytes",
    "dst_bytes",
    "hot",
    "num_compromised",
    "num_root",
    "count",
    "srv_count",
    "dst_host_count",
    "dst_host_srv_count",
)


class OneHotEncoder:
    """One-hot encoder for a single categorical column.

    Unknown values at transform time map to the all-zeros vector (an explicit
    "none of the known categories" encoding) rather than raising, because test
    traffic routinely contains service values never seen in training.
    """

    def __init__(self, categories: Optional[Sequence[str]] = None) -> None:
        self._categories: Optional[Tuple[str, ...]] = (
            tuple(categories) if categories is not None else None
        )
        self._index: Optional[Dict[str, int]] = None

    @property
    def categories(self) -> Tuple[str, ...]:
        if self._categories is None:
            raise NotFittedError("OneHotEncoder is not fitted")
        return self._categories

    def fit(self, values: Sequence[str]) -> "OneHotEncoder":
        if self._categories is None:
            self._categories = tuple(sorted({str(value) for value in values}))
        self._index = {value: position for position, value in enumerate(self._categories)}
        return self

    def transform(self, values: Sequence[str]) -> np.ndarray:
        if self._index is None:
            raise NotFittedError("OneHotEncoder is not fitted")
        encoded = np.zeros((len(values), len(self._categories or ())), dtype=float)
        for row, value in enumerate(values):
            column = self._index.get(str(value))
            if column is not None:
                encoded[row, column] = 1.0
        return encoded

    def fit_transform(self, values: Sequence[str]) -> np.ndarray:
        return self.fit(values).transform(values)


class OrdinalEncoder:
    """Maps categorical values to integer codes (unknown values get ``-1``)."""

    def __init__(self, categories: Optional[Sequence[str]] = None) -> None:
        self._categories: Optional[Tuple[str, ...]] = (
            tuple(categories) if categories is not None else None
        )
        self._index: Optional[Dict[str, int]] = None

    @property
    def categories(self) -> Tuple[str, ...]:
        if self._categories is None:
            raise NotFittedError("OrdinalEncoder is not fitted")
        return self._categories

    def fit(self, values: Sequence[str]) -> "OrdinalEncoder":
        if self._categories is None:
            self._categories = tuple(sorted({str(value) for value in values}))
        self._index = {value: position for position, value in enumerate(self._categories)}
        return self

    def transform(self, values: Sequence[str]) -> np.ndarray:
        if self._index is None:
            raise NotFittedError("OrdinalEncoder is not fitted")
        return np.array([self._index.get(str(value), -1) for value in values], dtype=float)

    def fit_transform(self, values: Sequence[str]) -> np.ndarray:
        return self.fit(values).transform(values)


class MinMaxScaler:
    """Scales each column to ``[0, 1]`` based on the training data range.

    Columns that are constant in the training data are mapped to zero.  Values
    outside the training range at transform time are clipped, which keeps SOM
    inputs bounded even under distribution shift.
    """

    def __init__(self, *, clip: bool = True) -> None:
        self.clip = clip
        self._minimum: Optional[np.ndarray] = None
        self._range: Optional[np.ndarray] = None

    def fit(self, matrix) -> "MinMaxScaler":
        data = check_array_2d(matrix, "matrix")
        self._minimum = data.min(axis=0)
        spread = data.max(axis=0) - self._minimum
        spread[spread == 0.0] = 1.0
        self._range = spread
        return self

    def transform(self, matrix) -> np.ndarray:
        if self._minimum is None or self._range is None:
            raise NotFittedError("MinMaxScaler is not fitted")
        data = check_array_2d(matrix, "matrix")
        if data.shape[1] != self._minimum.shape[0]:
            raise DataValidationError(
                f"matrix has {data.shape[1]} columns but the scaler was fitted on "
                f"{self._minimum.shape[0]}"
            )
        scaled = (data - self._minimum) / self._range
        if self.clip:
            scaled = np.clip(scaled, 0.0, 1.0)
        return scaled

    def fit_transform(self, matrix) -> np.ndarray:
        return self.fit(matrix).transform(matrix)

    def inverse_transform(self, matrix) -> np.ndarray:
        if self._minimum is None or self._range is None:
            raise NotFittedError("MinMaxScaler is not fitted")
        data = check_array_2d(matrix, "matrix")
        return data * self._range + self._minimum


class StandardScaler:
    """Standardises each column to zero mean and unit variance."""

    def __init__(self) -> None:
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    def fit(self, matrix) -> "StandardScaler":
        data = check_array_2d(matrix, "matrix")
        self._mean = data.mean(axis=0)
        std = data.std(axis=0)
        std[std == 0.0] = 1.0
        self._std = std
        return self

    def transform(self, matrix) -> np.ndarray:
        if self._mean is None or self._std is None:
            raise NotFittedError("StandardScaler is not fitted")
        data = check_array_2d(matrix, "matrix")
        if data.shape[1] != self._mean.shape[0]:
            raise DataValidationError(
                f"matrix has {data.shape[1]} columns but the scaler was fitted on "
                f"{self._mean.shape[0]}"
            )
        return (data - self._mean) / self._std

    def fit_transform(self, matrix) -> np.ndarray:
        return self.fit(matrix).transform(matrix)

    def inverse_transform(self, matrix) -> np.ndarray:
        if self._mean is None or self._std is None:
            raise NotFittedError("StandardScaler is not fitted")
        data = check_array_2d(matrix, "matrix")
        return data * self._std + self._mean


@dataclass
class _FittedColumns:
    """Bookkeeping for the columns produced by the pipeline."""

    feature_names: List[str]
    numeric_names: List[str]
    categorical_names: List[str]


class PreprocessingPipeline:
    """Raw :class:`Dataset` -> numeric feature matrix ready for SOM training.

    Parameters
    ----------
    categorical_encoding:
        ``"onehot"`` (default) or ``"ordinal"``.
    scaling:
        ``"minmax"`` (default), ``"zscore"`` or ``"none"``.
    log_transform:
        Apply ``log1p`` to the heavy-tailed volume features before scaling.
    schema:
        Feature schema; defaults to the full KDD schema.
    """

    def __init__(
        self,
        *,
        categorical_encoding: str = "onehot",
        scaling: str = "minmax",
        log_transform: bool = True,
        schema: Optional[KddSchema] = None,
    ) -> None:
        if categorical_encoding not in ("onehot", "ordinal"):
            raise ConfigurationError(
                f"categorical_encoding must be 'onehot' or 'ordinal', got {categorical_encoding!r}"
            )
        if scaling not in ("minmax", "zscore", "none"):
            raise ConfigurationError(
                f"scaling must be 'minmax', 'zscore' or 'none', got {scaling!r}"
            )
        self.categorical_encoding = categorical_encoding
        self.scaling = scaling
        self.log_transform = log_transform
        self.schema = schema or KddSchema()
        self._encoders: Dict[str, object] = {}
        self._scaler: Optional[object] = None
        self._columns: Optional[_FittedColumns] = None

    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        return self._columns is not None

    @property
    def feature_names_out(self) -> List[str]:
        """Names of the columns of the transformed matrix."""
        if self._columns is None:
            raise NotFittedError("PreprocessingPipeline is not fitted")
        return list(self._columns.feature_names)

    @property
    def n_features_out(self) -> int:
        """Number of columns of the transformed matrix."""
        return len(self.feature_names_out)

    # ------------------------------------------------------------------ #
    def fit(self, dataset: Dataset) -> "PreprocessingPipeline":
        """Learn encoders and scaler statistics from ``dataset``."""
        self._fit_encoders(dataset)
        unscaled, columns = self._assemble(dataset)
        self._columns = columns
        if self.scaling == "minmax":
            self._scaler = MinMaxScaler().fit(unscaled)
        elif self.scaling == "zscore":
            self._scaler = StandardScaler().fit(unscaled)
        else:
            self._scaler = None
        return self

    def transform(self, dataset: Dataset) -> np.ndarray:
        """Transform ``dataset`` into the fitted numeric representation."""
        if self._columns is None:
            raise NotFittedError("PreprocessingPipeline is not fitted")
        unscaled, _ = self._assemble(dataset)
        if self._scaler is None:
            return unscaled
        return self._scaler.transform(unscaled)

    def fit_transform(self, dataset: Dataset) -> np.ndarray:
        """Fit on ``dataset`` and return its transformed matrix."""
        return self.fit(dataset).transform(dataset)

    # ------------------------------------------------------------------ #
    def _fit_encoders(self, dataset: Dataset) -> None:
        self._encoders = {}
        for name in self.schema.categorical:
            values = self.schema.values_for(name)
            if self.categorical_encoding == "onehot":
                encoder: object = OneHotEncoder(categories=values).fit(values)
            else:
                encoder = OrdinalEncoder(categories=values).fit(values)
            self._encoders[name] = encoder

    # ------------------------------------------------------------------ #
    # serialization (used by the CLI to bundle the pipeline with a model)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible representation of a fitted pipeline."""
        if self._columns is None:
            raise NotFittedError("PreprocessingPipeline is not fitted")
        scaler_payload: Optional[Dict[str, object]] = None
        if isinstance(self._scaler, MinMaxScaler):
            scaler_payload = {
                "kind": "minmax",
                "clip": self._scaler.clip,
                "minimum": self._scaler._minimum.tolist(),
                "range": self._scaler._range.tolist(),
            }
        elif isinstance(self._scaler, StandardScaler):
            scaler_payload = {
                "kind": "zscore",
                "mean": self._scaler._mean.tolist(),
                "std": self._scaler._std.tolist(),
            }
        return {
            "kind": "preprocessing_pipeline",
            "categorical_encoding": self.categorical_encoding,
            "scaling": self.scaling,
            "log_transform": self.log_transform,
            "columns": {
                "feature_names": list(self._columns.feature_names),
                "numeric_names": list(self._columns.numeric_names),
                "categorical_names": list(self._columns.categorical_names),
            },
            "scaler": scaler_payload,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PreprocessingPipeline":
        """Rebuild a fitted pipeline from :meth:`to_dict` output."""
        if data.get("kind") != "preprocessing_pipeline":
            raise ConfigurationError(
                f"payload is not a preprocessing pipeline (kind={data.get('kind')!r})"
            )
        pipeline = cls(
            categorical_encoding=str(data["categorical_encoding"]),
            scaling=str(data["scaling"]),
            log_transform=bool(data["log_transform"]),
        )
        pipeline._fit_encoders_from_schema()
        columns = dict(data["columns"])
        pipeline._columns = _FittedColumns(
            feature_names=[str(name) for name in columns["feature_names"]],
            numeric_names=[str(name) for name in columns["numeric_names"]],
            categorical_names=[str(name) for name in columns["categorical_names"]],
        )
        scaler_payload = data.get("scaler")
        if scaler_payload is None:
            pipeline._scaler = None
        elif scaler_payload["kind"] == "minmax":
            scaler = MinMaxScaler(clip=bool(scaler_payload["clip"]))
            scaler._minimum = np.asarray(scaler_payload["minimum"], dtype=float)
            scaler._range = np.asarray(scaler_payload["range"], dtype=float)
            pipeline._scaler = scaler
        elif scaler_payload["kind"] == "zscore":
            scaler = StandardScaler()
            scaler._mean = np.asarray(scaler_payload["mean"], dtype=float)
            scaler._std = np.asarray(scaler_payload["std"], dtype=float)
            pipeline._scaler = scaler
        else:
            raise ConfigurationError(f"unknown scaler kind {scaler_payload['kind']!r}")
        return pipeline

    def _fit_encoders_from_schema(self) -> None:
        """Fit the categorical encoders from the schema's fixed value sets."""
        self._fit_encoders(None)

    def _assemble(self, dataset: Dataset) -> Tuple[np.ndarray, _FittedColumns]:
        if dataset.schema.feature_names != self.schema.feature_names:
            raise DataValidationError("dataset schema does not match the pipeline schema")
        blocks: List[np.ndarray] = []
        names: List[str] = []
        numeric_names: List[str] = []
        categorical_names: List[str] = []
        for name in self.schema.feature_names:
            column = dataset.column(name)
            if self.schema.is_categorical(name):
                encoder = self._encoders[name]
                if isinstance(encoder, OneHotEncoder):
                    encoded = encoder.transform(column)
                    blocks.append(encoded)
                    produced = [f"{name}={value}" for value in encoder.categories]
                else:
                    encoded = encoder.transform(column).reshape(-1, 1)
                    blocks.append(encoded)
                    produced = [name]
                names.extend(produced)
                categorical_names.extend(produced)
            else:
                numeric = column.astype(float).reshape(-1, 1)
                if self.log_transform and name in LOG_SCALE_FEATURES:
                    numeric = np.log1p(np.maximum(numeric, 0.0))
                blocks.append(numeric)
                names.append(name)
                numeric_names.append(name)
        matrix = np.concatenate(blocks, axis=1)
        return matrix, _FittedColumns(names, numeric_names, categorical_names)
