"""Feature analysis and selection utilities.

These helpers operate on already-encoded numeric matrices (the output of
:class:`~repro.data.preprocess.PreprocessingPipeline`) and are used both by
the examples (feature studies) and by the ablation benchmarks to show that the
GHSOM detector degrades gracefully under aggressive feature reduction.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import DataValidationError
from repro.utils.validation import check_array_2d, check_positive


def select_by_variance(matrix, threshold: float = 1e-12) -> np.ndarray:
    """Indices of columns whose variance exceeds ``threshold``.

    Constant columns carry no information for a distance-based model and only
    dilute the metric, so dropping them is a cheap win.
    """
    data = check_array_2d(matrix, "matrix")
    variances = data.var(axis=0)
    return np.flatnonzero(variances > threshold)


def feature_entropy(matrix, n_bins: int = 16) -> np.ndarray:
    """Shannon entropy of each column's empirical (binned) distribution.

    Entropy is measured in bits.  Constant columns have zero entropy.
    """
    data = check_array_2d(matrix, "matrix")
    check_positive(n_bins, "n_bins")
    entropies = np.zeros(data.shape[1])
    for column in range(data.shape[1]):
        values = data[:, column]
        low, high = values.min(), values.max()
        if high == low:
            entropies[column] = 0.0
            continue
        histogram, _ = np.histogram(values, bins=int(n_bins), range=(low, high))
        probabilities = histogram / histogram.sum()
        nonzero = probabilities[probabilities > 0]
        entropies[column] = float(-np.sum(nonzero * np.log2(nonzero)))
    return entropies


def select_top_k_by_entropy(matrix, k: int, n_bins: int = 16) -> np.ndarray:
    """Indices of the ``k`` columns with the highest empirical entropy."""
    data = check_array_2d(matrix, "matrix")
    if k <= 0:
        raise DataValidationError(f"k must be positive, got {k}")
    k = min(k, data.shape[1])
    entropies = feature_entropy(data, n_bins=n_bins)
    order = np.argsort(entropies)[::-1]
    return np.sort(order[:k])


def correlation_matrix(matrix) -> np.ndarray:
    """Pearson correlation matrix of the columns (constant columns give zero rows)."""
    data = check_array_2d(matrix, "matrix")
    std = data.std(axis=0)
    safe_std = np.where(std == 0.0, 1.0, std)
    centered = (data - data.mean(axis=0)) / safe_std
    correlation = centered.T @ centered / data.shape[0]
    constant = std == 0.0
    correlation[constant, :] = 0.0
    correlation[:, constant] = 0.0
    np.fill_diagonal(correlation, 1.0)
    return correlation


def drop_highly_correlated(matrix, threshold: float = 0.98) -> np.ndarray:
    """Greedy selection of column indices keeping at most one of each highly correlated pair."""
    data = check_array_2d(matrix, "matrix")
    correlation = np.abs(correlation_matrix(data))
    n_columns = data.shape[1]
    keep: List[int] = []
    for column in range(n_columns):
        if all(correlation[column, kept] < threshold for kept in keep):
            keep.append(column)
    return np.array(keep, dtype=int)


def summarize_features(matrix, names: Sequence[str]) -> List[Tuple[str, float, float, float]]:
    """Per-feature (name, mean, std, entropy) tuples for reporting."""
    data = check_array_2d(matrix, "matrix")
    if len(names) != data.shape[1]:
        raise DataValidationError(
            f"got {len(names)} names for {data.shape[1]} columns"
        )
    entropies = feature_entropy(data)
    means = data.mean(axis=0)
    stds = data.std(axis=0)
    return [
        (str(name), float(means[column]), float(stds[column]), float(entropies[column]))
        for column, name in enumerate(names)
    ]
