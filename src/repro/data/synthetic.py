"""Synthetic KDD-style dataset generation.

The original paper evaluates on the public KDD Cup 99 / NSL-KDD intrusion
detection datasets.  Those files cannot be downloaded in this environment, so
this module provides a *generative model of the same schema*: each traffic
class (normal plus ~20 named attacks covering the DoS / Probe / R2L / U2R
categories) is described by a :class:`ClassProfile` — a set of per-feature
distributions whose parameters follow the well-documented statistical
signatures of the corresponding KDD classes (e.g. ``neptune`` records have
``flag = S0`` and ``serror_rate`` close to 1, ``smurf`` records are ICMP
``ecr_i`` bursts with ~1000 source bytes, R2L records look almost like normal
traffic except for content features such as ``num_failed_logins``).

What matters for reproducing the paper's *shape* of results is preserved:

* normal traffic forms a few dense clusters (per service),
* DoS and Probe records are voluminous and well separated from normal traffic
  on count / error-rate features, so they are easy to detect,
* R2L and U2R records are rare and overlap heavily with normal traffic, so
  they are hard to detect — exactly the per-category ordering reported by the
  GHSOM intrusion-detection literature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.data.records import Dataset
from repro.data.schema import ATTACK_TO_CATEGORY, KddSchema
from repro.exceptions import ConfigurationError, DataValidationError
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_probability_vector

#: Features that are rates and must stay within [0, 1].
_RATE_FEATURES = frozenset(
    {
        "serror_rate",
        "srv_serror_rate",
        "rerror_rate",
        "srv_rerror_rate",
        "same_srv_rate",
        "diff_srv_rate",
        "srv_diff_host_rate",
        "dst_host_same_srv_rate",
        "dst_host_diff_srv_rate",
        "dst_host_same_src_port_rate",
        "dst_host_srv_diff_host_rate",
        "dst_host_serror_rate",
        "dst_host_srv_serror_rate",
        "dst_host_rerror_rate",
        "dst_host_srv_rerror_rate",
    }
)

#: Count-like features that are bounded by the window sizes used in KDD.
_COUNT_LIMITS = {
    "count": 511.0,
    "srv_count": 511.0,
    "dst_host_count": 255.0,
    "dst_host_srv_count": 255.0,
}


@dataclass(frozen=True)
class NumericSpec:
    """Distribution specification for one numeric feature.

    Supported kinds and their parameters:

    ``constant``   -> value
    ``uniform``    -> low, high
    ``normal``     -> mean, std
    ``lognormal``  -> mean, sigma   (parameters of the underlying normal)
    ``poisson``    -> lam
    ``bernoulli``  -> p
    ``beta``       -> a, b          (useful for rate features)
    """

    kind: str
    params: Tuple[float, ...]

    _SUPPORTED = ("constant", "uniform", "normal", "lognormal", "poisson", "bernoulli", "beta")

    def __post_init__(self) -> None:
        if self.kind not in self._SUPPORTED:
            raise ConfigurationError(
                f"unsupported numeric distribution {self.kind!r}; expected one of {self._SUPPORTED}"
            )
        expected_arity = {
            "constant": 1,
            "uniform": 2,
            "normal": 2,
            "lognormal": 2,
            "poisson": 1,
            "bernoulli": 1,
            "beta": 2,
        }[self.kind]
        if len(self.params) != expected_arity:
            raise ConfigurationError(
                f"distribution {self.kind!r} expects {expected_arity} parameter(s), "
                f"got {len(self.params)}"
            )

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` samples from the specified distribution."""
        if self.kind == "constant":
            return np.full(size, float(self.params[0]))
        if self.kind == "uniform":
            low, high = self.params
            return rng.uniform(low, high, size=size)
        if self.kind == "normal":
            mean, std = self.params
            return rng.normal(mean, std, size=size)
        if self.kind == "lognormal":
            mean, sigma = self.params
            return rng.lognormal(mean, sigma, size=size)
        if self.kind == "poisson":
            (lam,) = self.params
            return rng.poisson(lam, size=size).astype(float)
        if self.kind == "bernoulli":
            (p,) = self.params
            return (rng.random(size) < p).astype(float)
        if self.kind == "beta":
            a, b = self.params
            return rng.beta(a, b, size=size)
        raise ConfigurationError(f"unsupported numeric distribution {self.kind!r}")


def constant(value: float) -> NumericSpec:
    """Shorthand for a constant feature value."""
    return NumericSpec("constant", (float(value),))


def uniform(low: float, high: float) -> NumericSpec:
    """Shorthand for a uniform feature distribution."""
    return NumericSpec("uniform", (float(low), float(high)))


def lognormal(mean: float, sigma: float) -> NumericSpec:
    """Shorthand for a lognormal feature distribution."""
    return NumericSpec("lognormal", (float(mean), float(sigma)))


def normal(mean: float, std: float) -> NumericSpec:
    """Shorthand for a normal feature distribution."""
    return NumericSpec("normal", (float(mean), float(std)))


def poisson(lam: float) -> NumericSpec:
    """Shorthand for a Poisson feature distribution."""
    return NumericSpec("poisson", (float(lam),))


def bernoulli(p: float) -> NumericSpec:
    """Shorthand for a Bernoulli (0/1) feature distribution."""
    return NumericSpec("bernoulli", (float(p),))


def beta(a: float, b: float) -> NumericSpec:
    """Shorthand for a Beta feature distribution (rates in [0, 1])."""
    return NumericSpec("beta", (float(a), float(b)))


@dataclass
class ClassProfile:
    """Generative description of one traffic class.

    Parameters
    ----------
    label:
        The class label (a named attack or ``"normal"``).
    numeric:
        Mapping from numeric feature name to its :class:`NumericSpec`.
        Features not listed fall back to the profile's ``numeric_default``.
    categorical:
        Mapping from categorical feature name to a ``{value: weight}`` dict.
    numeric_default:
        Spec used for numeric features that are not explicitly listed;
        defaults to a constant zero (matching the very sparse content
        features of KDD records).
    """

    label: str
    numeric: Dict[str, NumericSpec] = field(default_factory=dict)
    categorical: Dict[str, Dict[str, float]] = field(default_factory=dict)
    numeric_default: NumericSpec = field(default_factory=lambda: constant(0.0))

    def __post_init__(self) -> None:
        schema = KddSchema()
        for name in self.numeric:
            if name not in schema.feature_names or schema.is_categorical(name):
                raise ConfigurationError(f"{name!r} is not a numeric schema feature")
        for name, weights in self.categorical.items():
            if not schema.is_categorical(name):
                raise ConfigurationError(f"{name!r} is not a categorical schema feature")
            admissible = set(schema.values_for(name))
            unknown = set(weights) - admissible
            if unknown:
                raise ConfigurationError(
                    f"categorical feature {name!r} has inadmissible values {sorted(unknown)}"
                )

    def sample(self, rng: np.random.Generator, size: int, schema: KddSchema) -> np.ndarray:
        """Generate ``size`` raw records (object array) for this class."""
        columns: list[np.ndarray] = []
        for name in schema.feature_names:
            if schema.is_categorical(name):
                values = schema.values_for(name)
                weights_map = self.categorical.get(name)
                if weights_map is None:
                    weights = np.ones(len(values))
                else:
                    weights = np.array([weights_map.get(value, 0.0) for value in values])
                probabilities = check_probability_vector(weights, name=f"{self.label}.{name}")
                sampled = rng.choice(np.array(values, dtype=object), size=size, p=probabilities)
                columns.append(sampled.astype(object))
            else:
                spec = self.numeric.get(name, self.numeric_default)
                sampled = spec.sample(rng, size)
                sampled = _clip_feature(name, sampled)
                columns.append(sampled.astype(object))
        return np.stack(columns, axis=1)


def _clip_feature(name: str, values: np.ndarray) -> np.ndarray:
    """Clip sampled values to the physically admissible range of ``name``."""
    values = np.maximum(values, 0.0)
    if name in _RATE_FEATURES:
        values = np.clip(values, 0.0, 1.0)
    limit = _COUNT_LIMITS.get(name)
    if limit is not None:
        values = np.clip(values, 0.0, limit)
    if name in ("land", "logged_in", "root_shell", "su_attempted", "is_host_login", "is_guest_login"):
        values = np.round(np.clip(values, 0.0, 1.0))
    return values


# --------------------------------------------------------------------------- #
# Default class profiles
# --------------------------------------------------------------------------- #
def _normal_profile() -> ClassProfile:
    return ClassProfile(
        label="normal",
        numeric={
            "duration": lognormal(1.0, 1.5),
            "src_bytes": lognormal(5.5, 1.2),
            "dst_bytes": lognormal(6.5, 1.5),
            "logged_in": bernoulli(0.7),
            "hot": poisson(0.05),
            "count": poisson(8.0),
            "srv_count": poisson(8.0),
            "serror_rate": beta(1.0, 60.0),
            "srv_serror_rate": beta(1.0, 60.0),
            "rerror_rate": beta(1.0, 40.0),
            "srv_rerror_rate": beta(1.0, 40.0),
            "same_srv_rate": beta(20.0, 2.0),
            "diff_srv_rate": beta(1.5, 20.0),
            "srv_diff_host_rate": beta(1.5, 15.0),
            "dst_host_count": uniform(20.0, 255.0),
            "dst_host_srv_count": uniform(20.0, 255.0),
            "dst_host_same_srv_rate": beta(15.0, 2.0),
            "dst_host_diff_srv_rate": beta(1.5, 25.0),
            "dst_host_same_src_port_rate": beta(2.0, 15.0),
            "dst_host_srv_diff_host_rate": beta(1.5, 25.0),
            "dst_host_serror_rate": beta(1.0, 60.0),
            "dst_host_srv_serror_rate": beta(1.0, 60.0),
            "dst_host_rerror_rate": beta(1.0, 40.0),
            "dst_host_srv_rerror_rate": beta(1.0, 40.0),
        },
        categorical={
            "protocol_type": {"tcp": 0.80, "udp": 0.17, "icmp": 0.03},
            "service": {
                "http": 0.55,
                "smtp": 0.12,
                "dns": 0.12,
                "ftp": 0.04,
                "ftp_data": 0.05,
                "pop_3": 0.03,
                "ssh": 0.03,
                "telnet": 0.02,
                "finger": 0.01,
                "other": 0.03,
            },
            "flag": {"SF": 0.93, "REJ": 0.03, "RSTO": 0.02, "S0": 0.01, "OTH": 0.01},
        },
    )


def _neptune_profile() -> ClassProfile:
    # SYN-flood: half-open connections, no payload, very high SYN-error rates.
    return ClassProfile(
        label="neptune",
        numeric={
            "duration": constant(0.0),
            "src_bytes": constant(0.0),
            "dst_bytes": constant(0.0),
            "count": uniform(100.0, 511.0),
            "srv_count": uniform(1.0, 20.0),
            "serror_rate": beta(60.0, 1.0),
            "srv_serror_rate": beta(60.0, 1.0),
            "same_srv_rate": beta(1.5, 20.0),
            "diff_srv_rate": beta(10.0, 8.0),
            "dst_host_count": constant(255.0),
            "dst_host_srv_count": uniform(1.0, 30.0),
            "dst_host_same_srv_rate": beta(1.5, 20.0),
            "dst_host_diff_srv_rate": beta(8.0, 8.0),
            "dst_host_serror_rate": beta(60.0, 1.0),
            "dst_host_srv_serror_rate": beta(60.0, 1.0),
        },
        categorical={
            "protocol_type": {"tcp": 1.0},
            "service": {"private": 0.55, "http": 0.15, "telnet": 0.1, "smtp": 0.1, "other": 0.1},
            "flag": {"S0": 0.95, "REJ": 0.03, "SH": 0.02},
        },
    )


def _smurf_profile() -> ClassProfile:
    # ICMP echo-reply flood: fixed-size packets, massive same-service counts.
    return ClassProfile(
        label="smurf",
        numeric={
            "duration": constant(0.0),
            "src_bytes": normal(1032.0, 20.0),
            "dst_bytes": constant(0.0),
            "count": uniform(400.0, 511.0),
            "srv_count": uniform(400.0, 511.0),
            "same_srv_rate": constant(1.0),
            "diff_srv_rate": constant(0.0),
            "dst_host_count": constant(255.0),
            "dst_host_srv_count": constant(255.0),
            "dst_host_same_srv_rate": constant(1.0),
            "dst_host_same_src_port_rate": beta(30.0, 2.0),
        },
        categorical={
            "protocol_type": {"icmp": 1.0},
            "service": {"ecr_i": 1.0},
            "flag": {"SF": 1.0},
        },
    )


def _back_profile() -> ClassProfile:
    # HTTP DoS with very large request URLs.
    return ClassProfile(
        label="back",
        numeric={
            "duration": uniform(0.0, 10.0),
            "src_bytes": normal(54000.0, 3000.0),
            "dst_bytes": normal(8000.0, 2000.0),
            "logged_in": constant(1.0),
            "hot": normal(2.0, 0.5),
            "count": poisson(6.0),
            "srv_count": poisson(6.0),
            "same_srv_rate": constant(1.0),
            "dst_host_count": uniform(200.0, 255.0),
            "dst_host_srv_count": uniform(200.0, 255.0),
            "dst_host_same_srv_rate": constant(1.0),
        },
        categorical={
            "protocol_type": {"tcp": 1.0},
            "service": {"http": 1.0},
            "flag": {"SF": 0.9, "RSTR": 0.1},
        },
    )


def _teardrop_profile() -> ClassProfile:
    # Fragmentation attack: malformed UDP fragments.
    return ClassProfile(
        label="teardrop",
        numeric={
            "duration": constant(0.0),
            "src_bytes": normal(28.0, 2.0),
            "dst_bytes": constant(0.0),
            "wrong_fragment": constant(3.0),
            "count": uniform(50.0, 200.0),
            "srv_count": uniform(50.0, 200.0),
            "same_srv_rate": constant(1.0),
            "dst_host_count": uniform(10.0, 100.0),
            "dst_host_srv_count": uniform(10.0, 100.0),
            "dst_host_same_srv_rate": constant(1.0),
            "dst_host_same_src_port_rate": beta(20.0, 2.0),
        },
        categorical={
            "protocol_type": {"udp": 1.0},
            "service": {"private": 1.0},
            "flag": {"SF": 1.0},
        },
    )


def _pod_profile() -> ClassProfile:
    # Ping of death: oversized ICMP fragments.
    return ClassProfile(
        label="pod",
        numeric={
            "duration": constant(0.0),
            "src_bytes": normal(1480.0, 30.0),
            "dst_bytes": constant(0.0),
            "wrong_fragment": constant(1.0),
            "count": poisson(5.0),
            "srv_count": poisson(5.0),
            "same_srv_rate": constant(1.0),
            "dst_host_count": uniform(1.0, 30.0),
            "dst_host_srv_count": uniform(1.0, 30.0),
            "dst_host_same_srv_rate": constant(1.0),
        },
        categorical={
            "protocol_type": {"icmp": 1.0},
            "service": {"ecr_i": 1.0},
            "flag": {"SF": 1.0},
        },
    )


def _portsweep_profile() -> ClassProfile:
    # Sequential probe of many ports on one host: many rejected connections.
    return ClassProfile(
        label="portsweep",
        numeric={
            "duration": lognormal(0.5, 1.5),
            "src_bytes": uniform(0.0, 10.0),
            "dst_bytes": uniform(0.0, 10.0),
            "count": poisson(3.0),
            "srv_count": poisson(2.0),
            "rerror_rate": beta(30.0, 2.0),
            "srv_rerror_rate": beta(30.0, 2.0),
            "serror_rate": beta(4.0, 8.0),
            "same_srv_rate": beta(1.5, 15.0),
            "diff_srv_rate": beta(20.0, 2.0),
            "dst_host_count": constant(255.0),
            "dst_host_srv_count": uniform(1.0, 20.0),
            "dst_host_same_srv_rate": beta(1.5, 30.0),
            "dst_host_diff_srv_rate": beta(25.0, 2.0),
            "dst_host_rerror_rate": beta(25.0, 2.0),
            "dst_host_srv_rerror_rate": beta(25.0, 2.0),
        },
        categorical={
            "protocol_type": {"tcp": 1.0},
            "service": {"private": 0.8, "other": 0.2},
            "flag": {"REJ": 0.5, "RSTR": 0.3, "SH": 0.1, "S0": 0.1},
        },
    )


def _ipsweep_profile() -> ClassProfile:
    # Probe of many hosts on a single port (usually ICMP echo).
    return ClassProfile(
        label="ipsweep",
        numeric={
            "duration": constant(0.0),
            "src_bytes": normal(8.0, 2.0),
            "dst_bytes": constant(0.0),
            "count": poisson(2.0),
            "srv_count": poisson(2.0),
            "same_srv_rate": constant(1.0),
            "srv_diff_host_rate": beta(20.0, 2.0),
            "dst_host_count": uniform(1.0, 20.0),
            "dst_host_srv_count": uniform(1.0, 60.0),
            "dst_host_same_srv_rate": constant(1.0),
            "dst_host_srv_diff_host_rate": beta(20.0, 2.0),
            "dst_host_same_src_port_rate": beta(20.0, 2.0),
        },
        categorical={
            "protocol_type": {"icmp": 0.85, "tcp": 0.15},
            "service": {"ecr_i": 0.8, "http": 0.1, "other": 0.1},
            "flag": {"SF": 0.9, "REJ": 0.1},
        },
    )


def _satan_profile() -> ClassProfile:
    # Vulnerability scanner touching many services.
    return ClassProfile(
        label="satan",
        numeric={
            "duration": uniform(0.0, 5.0),
            "src_bytes": uniform(0.0, 30.0),
            "dst_bytes": uniform(0.0, 120.0),
            "count": poisson(8.0),
            "srv_count": poisson(3.0),
            "rerror_rate": beta(8.0, 6.0),
            "srv_rerror_rate": beta(8.0, 6.0),
            "serror_rate": beta(8.0, 6.0),
            "diff_srv_rate": beta(25.0, 2.0),
            "same_srv_rate": beta(2.0, 12.0),
            "srv_diff_host_rate": beta(8.0, 4.0),
            "dst_host_count": constant(255.0),
            "dst_host_srv_count": uniform(1.0, 40.0),
            "dst_host_diff_srv_rate": beta(20.0, 3.0),
            "dst_host_same_srv_rate": beta(2.0, 15.0),
            "dst_host_serror_rate": beta(6.0, 6.0),
            "dst_host_rerror_rate": beta(6.0, 6.0),
        },
        categorical={
            "protocol_type": {"tcp": 0.8, "udp": 0.2},
            "service": {"private": 0.45, "other": 0.25, "telnet": 0.1, "http": 0.1, "finger": 0.1},
            "flag": {"REJ": 0.35, "S0": 0.25, "SF": 0.25, "RSTR": 0.15},
        },
    )


def _nmap_profile() -> ClassProfile:
    return ClassProfile(
        label="nmap",
        numeric={
            "duration": constant(0.0),
            "src_bytes": uniform(0.0, 40.0),
            "dst_bytes": constant(0.0),
            "count": poisson(2.0),
            "srv_count": poisson(2.0),
            "serror_rate": beta(4.0, 6.0),
            "rerror_rate": beta(4.0, 6.0),
            "diff_srv_rate": beta(12.0, 3.0),
            "same_srv_rate": beta(3.0, 8.0),
            "dst_host_count": uniform(50.0, 255.0),
            "dst_host_srv_count": uniform(1.0, 30.0),
            "dst_host_same_src_port_rate": beta(25.0, 2.0),
            "dst_host_diff_srv_rate": beta(12.0, 4.0),
        },
        categorical={
            "protocol_type": {"tcp": 0.6, "udp": 0.25, "icmp": 0.15},
            "service": {"private": 0.7, "other": 0.2, "ecr_i": 0.1},
            "flag": {"SF": 0.4, "REJ": 0.2, "SH": 0.2, "S0": 0.2},
        },
    )


def _guess_passwd_profile() -> ClassProfile:
    # Password brute forcing: repeated failed logins over telnet/pop3/ftp.
    return ClassProfile(
        label="guess_passwd",
        numeric={
            "duration": uniform(0.0, 6.0),
            "src_bytes": normal(125.0, 20.0),
            "dst_bytes": normal(220.0, 40.0),
            "hot": constant(1.0),
            "num_failed_logins": uniform(1.0, 5.0),
            "logged_in": constant(0.0),
            "count": poisson(2.0),
            "srv_count": poisson(2.0),
            "same_srv_rate": beta(10.0, 2.0),
            "dst_host_count": uniform(1.0, 80.0),
            "dst_host_srv_count": uniform(1.0, 30.0),
            "dst_host_same_srv_rate": beta(8.0, 3.0),
            "dst_host_same_src_port_rate": beta(3.0, 8.0),
        },
        categorical={
            "protocol_type": {"tcp": 1.0},
            "service": {"telnet": 0.45, "pop_3": 0.25, "ftp": 0.2, "imap4": 0.1},
            "flag": {"SF": 0.8, "RSTO": 0.2},
        },
    )


def _warezclient_profile() -> ClassProfile:
    # Downloading illegal software copies over anonymous FTP.
    return ClassProfile(
        label="warezclient",
        numeric={
            "duration": lognormal(3.5, 1.0),
            "src_bytes": lognormal(7.5, 1.5),
            "dst_bytes": lognormal(4.0, 1.5),
            "hot": uniform(1.0, 30.0),
            "logged_in": constant(1.0),
            "is_guest_login": constant(1.0),
            "count": poisson(3.0),
            "srv_count": poisson(3.0),
            "same_srv_rate": beta(10.0, 2.0),
            "dst_host_count": uniform(1.0, 120.0),
            "dst_host_srv_count": uniform(1.0, 60.0),
            "dst_host_same_srv_rate": beta(8.0, 3.0),
        },
        categorical={
            "protocol_type": {"tcp": 1.0},
            "service": {"ftp": 0.45, "ftp_data": 0.55},
            "flag": {"SF": 1.0},
        },
    )


def _ftp_write_profile() -> ClassProfile:
    return ClassProfile(
        label="ftp_write",
        numeric={
            "duration": lognormal(2.0, 1.0),
            "src_bytes": normal(220.0, 40.0),
            "dst_bytes": normal(380.0, 60.0),
            "hot": uniform(1.0, 4.0),
            "logged_in": constant(1.0),
            "is_guest_login": bernoulli(0.6),
            "num_file_creations": uniform(1.0, 3.0),
            "num_access_files": uniform(1.0, 2.0),
            "count": poisson(2.0),
            "srv_count": poisson(2.0),
            "same_srv_rate": beta(10.0, 2.0),
            "dst_host_count": uniform(1.0, 60.0),
            "dst_host_srv_count": uniform(1.0, 30.0),
        },
        categorical={
            "protocol_type": {"tcp": 1.0},
            "service": {"ftp": 0.6, "ftp_data": 0.4},
            "flag": {"SF": 1.0},
        },
    )


def _imap_profile() -> ClassProfile:
    return ClassProfile(
        label="imap",
        numeric={
            "duration": uniform(0.0, 10.0),
            "src_bytes": normal(1200.0, 300.0),
            "dst_bytes": normal(350.0, 80.0),
            "logged_in": constant(0.0),
            "count": poisson(2.0),
            "srv_count": poisson(2.0),
            "same_srv_rate": beta(8.0, 3.0),
            "dst_host_count": uniform(1.0, 60.0),
            "dst_host_srv_count": uniform(1.0, 20.0),
        },
        categorical={
            "protocol_type": {"tcp": 1.0},
            "service": {"imap4": 1.0},
            "flag": {"SF": 0.6, "RSTO": 0.3, "S0": 0.1},
        },
    )


def _buffer_overflow_profile() -> ClassProfile:
    # User-to-root exploit: long interactive session ending in a root shell.
    return ClassProfile(
        label="buffer_overflow",
        numeric={
            "duration": lognormal(4.0, 1.0),
            "src_bytes": lognormal(6.0, 1.0),
            "dst_bytes": lognormal(7.5, 1.0),
            "hot": uniform(1.0, 6.0),
            "logged_in": constant(1.0),
            "root_shell": constant(1.0),
            "num_compromised": uniform(1.0, 3.0),
            "num_root": uniform(1.0, 6.0),
            "num_file_creations": uniform(1.0, 4.0),
            "num_shells": bernoulli(0.6),
            "count": poisson(1.5),
            "srv_count": poisson(1.5),
            "same_srv_rate": beta(10.0, 2.0),
            "dst_host_count": uniform(1.0, 30.0),
            "dst_host_srv_count": uniform(1.0, 15.0),
        },
        categorical={
            "protocol_type": {"tcp": 1.0},
            "service": {"telnet": 0.7, "ftp": 0.15, "ssh": 0.15},
            "flag": {"SF": 1.0},
        },
    )


def _rootkit_profile() -> ClassProfile:
    return ClassProfile(
        label="rootkit",
        numeric={
            "duration": lognormal(3.5, 1.2),
            "src_bytes": lognormal(5.5, 1.2),
            "dst_bytes": lognormal(6.0, 1.2),
            "hot": uniform(0.0, 3.0),
            "logged_in": constant(1.0),
            "root_shell": bernoulli(0.7),
            "num_root": uniform(1.0, 10.0),
            "num_file_creations": uniform(0.0, 4.0),
            "num_access_files": uniform(0.0, 2.0),
            "count": poisson(1.5),
            "srv_count": poisson(1.5),
            "same_srv_rate": beta(10.0, 2.0),
            "dst_host_count": uniform(1.0, 30.0),
            "dst_host_srv_count": uniform(1.0, 15.0),
        },
        categorical={
            "protocol_type": {"tcp": 0.8, "udp": 0.2},
            "service": {"telnet": 0.6, "ftp_data": 0.2, "other": 0.2},
            "flag": {"SF": 1.0},
        },
    )


def _loadmodule_profile() -> ClassProfile:
    return ClassProfile(
        label="loadmodule",
        numeric={
            "duration": lognormal(3.8, 1.0),
            "src_bytes": lognormal(5.8, 1.0),
            "dst_bytes": lognormal(6.5, 1.0),
            "hot": uniform(1.0, 3.0),
            "logged_in": constant(1.0),
            "root_shell": bernoulli(0.8),
            "su_attempted": bernoulli(0.4),
            "num_root": uniform(0.0, 4.0),
            "num_file_creations": uniform(1.0, 3.0),
            "count": poisson(1.5),
            "srv_count": poisson(1.5),
            "same_srv_rate": beta(10.0, 2.0),
            "dst_host_count": uniform(1.0, 30.0),
            "dst_host_srv_count": uniform(1.0, 15.0),
        },
        categorical={
            "protocol_type": {"tcp": 1.0},
            "service": {"telnet": 0.8, "http": 0.1, "other": 0.1},
            "flag": {"SF": 1.0},
        },
    )


def default_profiles() -> Dict[str, ClassProfile]:
    """The built-in class profiles, keyed by label."""
    profiles = [
        _normal_profile(),
        _neptune_profile(),
        _smurf_profile(),
        _back_profile(),
        _teardrop_profile(),
        _pod_profile(),
        _portsweep_profile(),
        _ipsweep_profile(),
        _satan_profile(),
        _nmap_profile(),
        _guess_passwd_profile(),
        _warezclient_profile(),
        _ftp_write_profile(),
        _imap_profile(),
        _buffer_overflow_profile(),
        _rootkit_profile(),
        _loadmodule_profile(),
    ]
    return {profile.label: profile for profile in profiles}


#: Default class mix approximating the (heavily skewed) KDD-99 10% subset,
#: moderated so that the rare classes still occur often enough to be measurable.
DEFAULT_CLASS_MIX: Dict[str, float] = {
    "normal": 0.55,
    "neptune": 0.12,
    "smurf": 0.12,
    "back": 0.02,
    "teardrop": 0.01,
    "pod": 0.01,
    "portsweep": 0.035,
    "ipsweep": 0.035,
    "satan": 0.025,
    "nmap": 0.015,
    "guess_passwd": 0.015,
    "warezclient": 0.015,
    "ftp_write": 0.005,
    "imap": 0.005,
    "buffer_overflow": 0.01,
    "rootkit": 0.005,
    "loadmodule": 0.005,
}


class KddSyntheticGenerator:
    """Generates labelled KDD-style datasets from class profiles.

    Parameters
    ----------
    profiles:
        Mapping from label to :class:`ClassProfile`.  Defaults to
        :func:`default_profiles`.
    class_mix:
        Mapping from label to sampling weight.  Defaults to
        :data:`DEFAULT_CLASS_MIX` restricted to the available profiles.
    random_state:
        Seed or generator for reproducibility.

    Example
    -------
    >>> generator = KddSyntheticGenerator(random_state=0)
    >>> dataset = generator.generate(100)
    >>> len(dataset)
    100
    """

    def __init__(
        self,
        profiles: Optional[Mapping[str, ClassProfile]] = None,
        class_mix: Optional[Mapping[str, float]] = None,
        random_state: RandomState = None,
    ) -> None:
        self.profiles = dict(profiles) if profiles is not None else default_profiles()
        if not self.profiles:
            raise ConfigurationError("at least one class profile is required")
        if class_mix is None:
            class_mix = {
                label: weight
                for label, weight in DEFAULT_CLASS_MIX.items()
                if label in self.profiles
            }
            if not class_mix:
                class_mix = {label: 1.0 for label in self.profiles}
        unknown = set(class_mix) - set(self.profiles)
        if unknown:
            raise ConfigurationError(f"class_mix references unknown profiles: {sorted(unknown)}")
        self.class_mix = dict(class_mix)
        self._rng = ensure_rng(random_state)
        self.schema = KddSchema()

    # ------------------------------------------------------------------ #
    def generate(self, n_records: int, class_mix: Optional[Mapping[str, float]] = None) -> Dataset:
        """Generate ``n_records`` records drawn according to ``class_mix``."""
        if n_records <= 0:
            raise DataValidationError(f"n_records must be positive, got {n_records}")
        mix = dict(class_mix) if class_mix is not None else self.class_mix
        unknown = set(mix) - set(self.profiles)
        if unknown:
            raise ConfigurationError(f"class_mix references unknown profiles: {sorted(unknown)}")
        labels = list(mix)
        weights = check_probability_vector([mix[label] for label in labels], name="class_mix")
        counts = self._rng.multinomial(n_records, weights)
        blocks: list[np.ndarray] = []
        block_labels: list[np.ndarray] = []
        for label, count in zip(labels, counts, strict=True):
            if count == 0:
                continue
            profile = self.profiles[label]
            blocks.append(profile.sample(self._rng, int(count), self.schema))
            block_labels.append(np.full(int(count), label, dtype=object))
        raw = np.concatenate(blocks, axis=0)
        label_column = np.concatenate(block_labels, axis=0)
        order = self._rng.permutation(raw.shape[0])
        return Dataset(raw[order], label_column[order], schema=self.schema)

    def generate_class(self, label: str, n_records: int) -> Dataset:
        """Generate ``n_records`` records of a single class."""
        if label not in self.profiles:
            raise ConfigurationError(f"no profile registered for class {label!r}")
        return self.generate(n_records, class_mix={label: 1.0})

    def generate_normal(self, n_records: int) -> Dataset:
        """Generate normal-only traffic (used for training the one-class detectors)."""
        return self.generate_class("normal", n_records)

    def generate_train_test(
        self,
        n_train: int,
        n_test: int,
        *,
        train_mix: Optional[Mapping[str, float]] = None,
        test_mix: Optional[Mapping[str, float]] = None,
    ) -> Tuple[Dataset, Dataset]:
        """Generate a train/test pair, optionally with different class mixes.

        Using a different mix for testing mimics the KDD evaluation protocol in
        which the test set contains attack types at different frequencies than
        the training set.
        """
        train = self.generate(n_train, class_mix=train_mix)
        test = self.generate(n_test, class_mix=test_mix)
        return train, test

    def available_labels(self) -> Tuple[str, ...]:
        """Labels for which profiles are registered."""
        return tuple(sorted(self.profiles))

    def categories_present(self) -> Dict[str, Tuple[str, ...]]:
        """Map from category to the labels of that category that can be generated."""
        by_category: Dict[str, list] = {}
        for label in self.profiles:
            category = ATTACK_TO_CATEGORY.get(label, "normal" if label == "normal" else None)
            if category is None:
                continue
            by_category.setdefault(category, []).append(label)
        return {category: tuple(sorted(labels)) for category, labels in by_category.items()}
