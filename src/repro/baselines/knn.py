"""k-nearest-neighbour distance baseline detector.

The simplest non-parametric novelty detector: the anomaly score of a record is
its (average) distance to its k nearest neighbours among the training
records.  It is accurate but expensive (O(n) per query against the reference
set), which is precisely the scalability argument that motivates
prototype-based models such as SOM/GHSOM — the scalability benchmark
(Figure 5) makes that trade-off visible.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.detector import BaseAnomalyDetector
from repro.core.distances import squared_euclidean
from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_array_2d


class KnnDetector(BaseAnomalyDetector):
    """Anomaly detector scoring records by mean distance to their k nearest training records.

    Parameters
    ----------
    n_neighbors:
        Number of nearest neighbours averaged into the score.
    max_reference_size:
        The training set is subsampled to at most this many records to bound
        query cost (the reference set is what every query is compared
        against).
    percentile:
        Percentile of training scores used as the alarm threshold.
    fit_on_normal_only:
        Use only normal training records as the reference set when labels are
        available.
    chunk_size:
        Queries are processed in chunks of this many records to bound the
        memory of the pairwise-distance matrix.
    random_state:
        Seed for reference-set subsampling.
    """

    name = "knn"

    def __init__(
        self,
        n_neighbors: int = 5,
        *,
        max_reference_size: int = 5000,
        percentile: float = 99.0,
        fit_on_normal_only: bool = True,
        chunk_size: int = 1024,
        random_state: RandomState = None,
    ) -> None:
        if n_neighbors < 1:
            raise ConfigurationError(f"n_neighbors must be >= 1, got {n_neighbors}")
        if max_reference_size < 1:
            raise ConfigurationError(
                f"max_reference_size must be >= 1, got {max_reference_size}"
            )
        if not 0.0 < percentile <= 100.0:
            raise ConfigurationError(f"percentile must be in (0, 100], got {percentile}")
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        self.n_neighbors = int(n_neighbors)
        self.max_reference_size = int(max_reference_size)
        self.percentile = float(percentile)
        self.fit_on_normal_only = fit_on_normal_only
        self.chunk_size = int(chunk_size)
        self._rng = ensure_rng(random_state)
        self._reference: Optional[np.ndarray] = None
        self._threshold: Optional[float] = None

    @property
    def is_fitted(self) -> bool:
        return self._reference is not None and self._threshold is not None

    # ------------------------------------------------------------------ #
    def fit(self, X, y: Optional[Sequence[str]] = None) -> "KnnDetector":
        """Store (a subsample of) the training set and calibrate the threshold."""
        matrix = check_array_2d(X, "X", min_rows=2)
        reference = matrix
        if y is not None and self.fit_on_normal_only:
            labels = np.array([str(label) for label in y])
            if labels.shape[0] != matrix.shape[0]:
                raise ConfigurationError(
                    f"got {matrix.shape[0]} samples but {labels.shape[0]} labels"
                )
            normal_mask = labels == "normal"
            if normal_mask.sum() >= self.n_neighbors + 1:
                reference = matrix[normal_mask]
        if reference.shape[0] > self.max_reference_size:
            indices = self._rng.choice(reference.shape[0], self.max_reference_size, replace=False)
            reference = reference[indices]
        self._reference = reference
        # Calibrate on the reference set itself, excluding each point's
        # zero-distance match with itself.
        training_scores = self._mean_knn_distance(reference, exclude_self=True)
        self._threshold = max(float(np.percentile(training_scores, self.percentile)), 1e-12)
        return self

    # ------------------------------------------------------------------ #
    def _mean_knn_distance(self, matrix: np.ndarray, *, exclude_self: bool = False) -> np.ndarray:
        reference = self._reference
        k = min(self.n_neighbors, reference.shape[0] - (1 if exclude_self else 0))
        k = max(k, 1)
        scores = np.empty(matrix.shape[0])
        for start in range(0, matrix.shape[0], self.chunk_size):
            chunk = matrix[start : start + self.chunk_size]
            distances = np.sqrt(squared_euclidean(chunk, reference))
            if exclude_self:
                # The smallest distance of a reference point to the reference
                # set is its self-distance (0); drop it by taking k+1.
                nearest = np.partition(distances, k, axis=1)[:, 1 : k + 1]
            else:
                nearest = np.partition(distances, k - 1, axis=1)[:, :k]
            scores[start : start + self.chunk_size] = nearest.mean(axis=1)
        return scores

    def score_samples(self, X) -> np.ndarray:
        """Threshold-normalised anomaly scores (mean k-NN distance / threshold)."""
        self._require_fitted(self.is_fitted)
        matrix = check_array_2d(X, "X")
        if matrix.shape[1] != self._reference.shape[1]:
            raise ConfigurationError(
                f"X has {matrix.shape[1]} features, the detector expects "
                f"{self._reference.shape[1]}"
            )
        return self._mean_knn_distance(matrix) / self._threshold

