"""Local Outlier Factor (LOF) baseline detector.

LOF scores a record by how much sparser its neighbourhood is than the
neighbourhoods of its nearest training records: a ratio around 1 means the
record sits in a region as dense as its neighbours' regions, a ratio well
above 1 means it is a local outlier.  LOF is the standard density-based
comparison point for one-class network anomaly detection; like k-NN it is
instance-based, so it is accurate but expensive at detection time.

The implementation follows Breunig et al.'s definition with a fixed reference
set (the training data), i.e. the novelty-detection variant.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.detector import BaseAnomalyDetector
from repro.core.distances import squared_euclidean
from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_array_2d


class LofDetector(BaseAnomalyDetector):
    """Local-Outlier-Factor anomaly detector (novelty-detection variant).

    Parameters
    ----------
    n_neighbors:
        Neighbourhood size ``k`` used for reachability densities.
    max_reference_size:
        The training set is subsampled to at most this many records.
    percentile:
        Percentile of the training LOF distribution used as the alarm
        threshold (scores are normalised by it, so 1.0 = at threshold).
    fit_on_normal_only:
        When labels are passed to :meth:`fit`, keep only normal records in
        the reference set.
    chunk_size:
        Query records are processed in chunks to bound memory.
    random_state:
        Seed for reference subsampling.
    """

    name = "lof"

    def __init__(
        self,
        n_neighbors: int = 20,
        *,
        max_reference_size: int = 3000,
        percentile: float = 99.0,
        fit_on_normal_only: bool = True,
        chunk_size: int = 1024,
        random_state: RandomState = None,
    ) -> None:
        if n_neighbors < 1:
            raise ConfigurationError(f"n_neighbors must be >= 1, got {n_neighbors}")
        if max_reference_size < 2:
            raise ConfigurationError(
                f"max_reference_size must be >= 2, got {max_reference_size}"
            )
        if not 0.0 < percentile <= 100.0:
            raise ConfigurationError(f"percentile must be in (0, 100], got {percentile}")
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        self.n_neighbors = int(n_neighbors)
        self.max_reference_size = int(max_reference_size)
        self.percentile = float(percentile)
        self.fit_on_normal_only = fit_on_normal_only
        self.chunk_size = int(chunk_size)
        self._rng = ensure_rng(random_state)
        self._reference: Optional[np.ndarray] = None
        self._k_distances: Optional[np.ndarray] = None
        self._lrd: Optional[np.ndarray] = None
        self._threshold: Optional[float] = None

    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        return self._reference is not None and self._threshold is not None

    def fit(self, X, y: Optional[Sequence[str]] = None) -> "LofDetector":
        """Build the reference set, its local reachability densities, and the threshold."""
        matrix = check_array_2d(X, "X", min_rows=3)
        reference = matrix
        if y is not None and self.fit_on_normal_only:
            labels = np.array([str(label) for label in y])
            if labels.shape[0] != matrix.shape[0]:
                raise ConfigurationError(
                    f"got {matrix.shape[0]} samples but {labels.shape[0]} labels"
                )
            normal_mask = labels == "normal"
            if normal_mask.sum() > self.n_neighbors + 1:
                reference = matrix[normal_mask]
        if reference.shape[0] > self.max_reference_size:
            indices = self._rng.choice(
                reference.shape[0], self.max_reference_size, replace=False
            )
            reference = reference[indices]
        self._reference = reference
        k = min(self.n_neighbors, reference.shape[0] - 1)
        self._effective_k = max(k, 1)
        # Pairwise distances within the reference set (excluding self-distance).
        distances = np.sqrt(squared_euclidean(reference, reference))
        np.fill_diagonal(distances, np.inf)
        neighbor_indices = np.argpartition(distances, self._effective_k - 1, axis=1)[
            :, : self._effective_k
        ]
        neighbor_distances = np.take_along_axis(distances, neighbor_indices, axis=1)
        # k-distance of each reference point = distance to its k-th neighbour.
        self._k_distances = neighbor_distances.max(axis=1)
        # Local reachability density of each reference point.
        reachability = np.maximum(
            neighbor_distances, self._k_distances[neighbor_indices]
        )
        mean_reachability = reachability.mean(axis=1)
        self._lrd = 1.0 / np.maximum(mean_reachability, 1e-12)
        # LOF of the reference points themselves calibrates the threshold.
        reference_lof = self._lof_from_neighbors(neighbor_indices, neighbor_distances, self._lrd)
        self._threshold = max(float(np.percentile(reference_lof, self.percentile)), 1e-12)
        return self

    # ------------------------------------------------------------------ #
    def _lof_from_neighbors(
        self,
        neighbor_indices: np.ndarray,
        neighbor_distances: np.ndarray,
        query_lrd: np.ndarray,
    ) -> np.ndarray:
        """LOF given each query's neighbour indices/distances and the query LRDs."""
        neighbor_lrd = self._lrd[neighbor_indices]
        return neighbor_lrd.mean(axis=1) / np.maximum(query_lrd, 1e-12)

    def _query_lof(self, matrix: np.ndarray) -> np.ndarray:
        scores = np.empty(matrix.shape[0])
        k = self._effective_k
        for start in range(0, matrix.shape[0], self.chunk_size):
            chunk = matrix[start : start + self.chunk_size]
            distances = np.sqrt(squared_euclidean(chunk, self._reference))
            neighbor_indices = np.argpartition(distances, k - 1, axis=1)[:, :k]
            neighbor_distances = np.take_along_axis(distances, neighbor_indices, axis=1)
            reachability = np.maximum(
                neighbor_distances, self._k_distances[neighbor_indices]
            )
            query_lrd = 1.0 / np.maximum(reachability.mean(axis=1), 1e-12)
            scores[start : start + self.chunk_size] = self._lof_from_neighbors(
                neighbor_indices, neighbor_distances, query_lrd
            )
        return scores

    def score_samples(self, X) -> np.ndarray:
        """Threshold-normalised LOF scores (1.0 = at the calibrated threshold)."""
        self._require_fitted(self.is_fitted)
        matrix = check_array_2d(X, "X")
        if matrix.shape[1] != self._reference.shape[1]:
            raise ConfigurationError(
                f"X has {matrix.shape[1]} features, the detector expects "
                f"{self._reference.shape[1]}"
            )
        return self._query_lof(matrix) / self._threshold

