"""PCA subspace (residual / Q-statistic) baseline detector.

The PCA-based approach is the other major non-signature anomaly detection
family of the era: project traffic onto the principal components that capture
most of the normal variance, and alarm when the squared prediction error
(SPE) — the energy left in the residual subspace — exceeds a threshold.  The
threshold can be set either from the Q-statistic (Jackson–Mudholkar) formula
or empirically from a percentile of the training SPE distribution.

This detector scores records individually (record-level PCA), which is the
fair per-connection comparison to the SOM-family detectors.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.detector import BaseAnomalyDetector
from repro.exceptions import ConfigurationError, NotFittedError
from repro.utils.validation import check_array_2d, check_fraction


def q_statistic_threshold(residual_eigenvalues: np.ndarray, alpha: float = 0.01) -> float:
    """Jackson–Mudholkar Q-statistic threshold for the squared prediction error.

    Parameters
    ----------
    residual_eigenvalues:
        Eigenvalues of the covariance matrix belonging to the residual
        (discarded) subspace.
    alpha:
        Target false-alarm probability.

    Returns
    -------
    float
        The SPE value above which a sample is declared anomalous at the
        ``1 - alpha`` confidence level.
    """
    check_fraction(alpha, "alpha", inclusive=False)
    eigenvalues = np.asarray(residual_eigenvalues, dtype=float)
    eigenvalues = eigenvalues[eigenvalues > 0]
    if eigenvalues.size == 0:
        return 0.0
    phi1 = float(np.sum(eigenvalues))
    phi2 = float(np.sum(eigenvalues**2))
    phi3 = float(np.sum(eigenvalues**3))
    h0 = 1.0 - (2.0 * phi1 * phi3) / (3.0 * phi2**2)
    if h0 <= 0:
        h0 = 1e-6
    c_alpha = _normal_quantile(1.0 - alpha)
    term = (
        c_alpha * np.sqrt(2.0 * phi2 * h0**2) / phi1
        + phi2 * h0 * (h0 - 1.0) / phi1**2
        + 1.0
    )
    if term <= 0:
        return float(phi1)
    return float(phi1 * term ** (1.0 / h0))


def _normal_quantile(p: float) -> float:
    """Inverse CDF of the standard normal (Acklam's rational approximation)."""
    if not 0.0 < p < 1.0:
        raise ConfigurationError(f"quantile probability must be in (0, 1), got {p}")
    # Coefficients for the central and tail regions.
    a = [-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00]
    p_low = 0.02425
    if p < p_low:
        q = np.sqrt(-2.0 * np.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p <= 1.0 - p_low:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
        )
    q = np.sqrt(-2.0 * np.log(1.0 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
    )


class PcaSubspaceDetector(BaseAnomalyDetector):
    """Residual-subspace (SPE / Q-statistic) anomaly detector.

    Parameters
    ----------
    variance_fraction:
        Fraction of total variance the retained (normal) subspace must
        explain; the remaining components form the residual subspace.
    n_components:
        Explicit number of retained components (overrides
        ``variance_fraction`` when given).
    alpha:
        Q-statistic false-alarm probability.
    threshold_mode:
        ``"q_statistic"`` (default) uses the analytic threshold;
        ``"percentile"`` uses the empirical ``1 - alpha`` percentile of the
        training SPE distribution, which is more robust when the Gaussian
        assumptions behind the Q-statistic are badly violated.
    fit_on_normal_only:
        When labels are passed to :meth:`fit`, estimate the subspace from
        normal records only (recommended — attack records otherwise leak into
        the "normal" subspace).
    """

    name = "pca"

    def __init__(
        self,
        variance_fraction: float = 0.95,
        *,
        n_components: Optional[int] = None,
        alpha: float = 0.01,
        threshold_mode: str = "q_statistic",
        fit_on_normal_only: bool = True,
    ) -> None:
        check_fraction(variance_fraction, "variance_fraction", inclusive=False)
        check_fraction(alpha, "alpha", inclusive=False)
        if threshold_mode not in ("q_statistic", "percentile"):
            raise ConfigurationError(
                f"threshold_mode must be 'q_statistic' or 'percentile', got {threshold_mode!r}"
            )
        if n_components is not None and n_components < 1:
            raise ConfigurationError(f"n_components must be >= 1, got {n_components}")
        self.variance_fraction = float(variance_fraction)
        self.n_components = n_components
        self.alpha = float(alpha)
        self.threshold_mode = threshold_mode
        self.fit_on_normal_only = fit_on_normal_only
        self._mean: Optional[np.ndarray] = None
        self._components: Optional[np.ndarray] = None  # (d, k) retained eigenvectors
        self._eigenvalues: Optional[np.ndarray] = None
        self._n_retained: Optional[int] = None
        self._spe_threshold: Optional[float] = None

    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        return self._components is not None and self._spe_threshold is not None

    @property
    def n_retained_components(self) -> int:
        """Number of principal components kept in the normal subspace."""
        if self._n_retained is None:
            raise NotFittedError("PcaSubspaceDetector is not fitted")
        return self._n_retained

    @property
    def spe_threshold(self) -> float:
        """The calibrated squared-prediction-error threshold."""
        if self._spe_threshold is None:
            raise NotFittedError("PcaSubspaceDetector is not fitted")
        return self._spe_threshold

    # ------------------------------------------------------------------ #
    def fit(self, X, y: Optional[Sequence[str]] = None) -> "PcaSubspaceDetector":
        """Estimate the normal subspace and calibrate the SPE threshold."""
        matrix = check_array_2d(X, "X", min_rows=2)
        fit_matrix = matrix
        if y is not None and self.fit_on_normal_only:
            labels = np.array([str(label) for label in y])
            if labels.shape[0] != matrix.shape[0]:
                raise ConfigurationError(
                    f"got {matrix.shape[0]} samples but {labels.shape[0]} labels"
                )
            normal_mask = labels == "normal"
            if normal_mask.sum() >= 2:
                fit_matrix = matrix[normal_mask]
        self._mean = fit_matrix.mean(axis=0)
        centered = fit_matrix - self._mean
        covariance = centered.T @ centered / max(fit_matrix.shape[0] - 1, 1)
        eigenvalues, eigenvectors = np.linalg.eigh(covariance)
        order = np.argsort(eigenvalues)[::-1]
        eigenvalues = np.maximum(eigenvalues[order], 0.0)
        eigenvectors = eigenvectors[:, order]
        self._eigenvalues = eigenvalues
        if self.n_components is not None:
            n_retained = min(self.n_components, eigenvalues.size)
        else:
            total = eigenvalues.sum()
            if total <= 0:
                n_retained = 1
            else:
                cumulative = np.cumsum(eigenvalues) / total
                n_retained = int(np.searchsorted(cumulative, self.variance_fraction) + 1)
                n_retained = min(max(n_retained, 1), eigenvalues.size)
        self._n_retained = n_retained
        self._components = eigenvectors[:, :n_retained]
        residual_eigenvalues = eigenvalues[n_retained:]
        if self.threshold_mode == "q_statistic":
            threshold = q_statistic_threshold(residual_eigenvalues, alpha=self.alpha)
        else:
            spe = self._squared_prediction_error(fit_matrix)
            threshold = float(np.percentile(spe, 100.0 * (1.0 - self.alpha)))
        self._spe_threshold = max(threshold, 1e-12)
        return self

    # ------------------------------------------------------------------ #
    def _squared_prediction_error(self, matrix: np.ndarray) -> np.ndarray:
        centered = matrix - self._mean
        projected = centered @ self._components  # (n, k)
        reconstructed = projected @ self._components.T
        residual = centered - reconstructed
        return np.einsum("ij,ij->i", residual, residual)

    def score_samples(self, X) -> np.ndarray:
        """Threshold-normalised anomaly scores (SPE / SPE threshold)."""
        self._require_fitted(self.is_fitted)
        matrix = check_array_2d(X, "X")
        if matrix.shape[1] != self._mean.shape[0]:
            raise ConfigurationError(
                f"X has {matrix.shape[1]} features, the detector expects {self._mean.shape[0]}"
            )
        return self._squared_prediction_error(matrix) / self._spe_threshold

    def explained_variance_ratio(self) -> np.ndarray:
        """Per-component fraction of total variance (descending)."""
        self._require_fitted(self.is_fitted)
        total = self._eigenvalues.sum()
        if total <= 0:
            return np.zeros_like(self._eigenvalues)
        return self._eigenvalues / total

