"""Flat (fixed-size) SOM baseline detector.

This is the classic Kohonen-map intrusion detector that GHSOM improves upon:
one rectangular map of a fixed, user-chosen size, with the same unit
labelling and threshold machinery as the GHSOM detector.  Comparing the two
isolates the contribution of growth and hierarchy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import SomTrainingConfig
from repro.core.detector import (
    BaseAnomalyDetector,
    alarm_decisions,
    combine_label_and_distance_scores,
)
from repro.core.labeling import UNLABELED, UnitLabeler
from repro.core.som import Som
from repro.core.thresholds import make_threshold_strategy
from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState
from repro.utils.validation import check_array_2d, check_same_length


class SomDetector(BaseAnomalyDetector):
    """Anomaly detector built on a single fixed-size SOM.

    Parameters
    ----------
    rows, cols:
        Map shape (the model capacity is fixed, unlike GHSOM).
    training:
        SOM training hyper-parameters.
    threshold_strategy, threshold_kwargs:
        Same options as :class:`~repro.core.detector.GhsomDetector`.
    labeling_strategy:
        Unit labelling rule when labels are provided.
    calibrate_on_normal_only:
        Calibrate thresholds only on normal training records when labels are
        available.
    random_state:
        Seed for initialisation.
    """

    name = "som"

    def __init__(
        self,
        rows: int = 10,
        cols: int = 10,
        *,
        training: Optional[SomTrainingConfig] = None,
        threshold_strategy: str = "per_unit",
        threshold_kwargs: Optional[Dict[str, object]] = None,
        labeling_strategy: str = "majority",
        calibrate_on_normal_only: bool = True,
        random_state: RandomState = None,
    ) -> None:
        if rows < 2 or cols < 2:
            raise ConfigurationError(f"map must be at least 2x2, got {rows}x{cols}")
        self.rows = int(rows)
        self.cols = int(cols)
        self.training = training or SomTrainingConfig(epochs=20)
        self.threshold_strategy_name = threshold_strategy
        self.threshold_kwargs = dict(threshold_kwargs or {})
        self.labeling_strategy = labeling_strategy
        self.calibrate_on_normal_only = calibrate_on_normal_only
        self.random_state = random_state
        self.model: Optional[Som] = None
        self.labeler: Optional[UnitLabeler] = None
        self.threshold_: Optional[object] = None

    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        return self.model is not None and self.threshold_ is not None

    def _leaf_keys(self, units: np.ndarray) -> List:
        # The flat SOM is a one-layer hierarchy; reuse the (node_id, unit) key
        # convention so the threshold and labelling code is shared with GHSOM.
        return [("som", int(unit)) for unit in units]

    # ------------------------------------------------------------------ #
    def fit(self, X, y: Optional[Sequence[str]] = None) -> "SomDetector":
        """Train the map, label its units (if ``y`` given) and calibrate thresholds."""
        matrix = check_array_2d(X, "X", min_rows=2)
        labels = None
        if y is not None:
            labels = [str(label) for label in y]
            check_same_length(matrix, labels, "X", "y")
        self.model = Som(
            self.rows,
            self.cols,
            n_features=matrix.shape[1],
            config=self.training,
            random_state=self.random_state,
        )
        self.model.fit(matrix)
        units = self.model.transform(matrix)
        distances = self.model.quantization_distances(matrix)
        leaf_keys = self._leaf_keys(units)

        if labels is not None:
            self.labeler = UnitLabeler(strategy=self.labeling_strategy)
            self.labeler.fit(leaf_keys, labels)
        else:
            self.labeler = None

        calibration_mask = np.ones(len(distances), dtype=bool)
        if labels is not None and self.calibrate_on_normal_only:
            normal_mask = np.array([label == "normal" for label in labels])
            if normal_mask.any():
                calibration_mask = normal_mask
        strategy = make_threshold_strategy(self.threshold_strategy_name, **self.threshold_kwargs)
        strategy.fit(
            distances[calibration_mask],
            [key for key, keep in zip(leaf_keys, calibration_mask, strict=True) if keep],
        )
        self.threshold_ = strategy
        return self

    # ------------------------------------------------------------------ #
    def score_samples(self, X) -> np.ndarray:
        """Threshold-normalised anomaly scores (label-aware in labelled mode)."""
        self._require_fitted(self.is_fitted)
        matrix = check_array_2d(X, "X")
        units = self.model.transform(matrix)
        distances = self.model.quantization_distances(matrix)
        leaf_keys = self._leaf_keys(units)
        ratios = self.threshold_.normalize(distances, leaf_keys)
        return combine_label_and_distance_scores(ratios, leaf_keys, self.labeler)

    def predict(self, X) -> np.ndarray:
        """Binary decisions (attack-labelled unit or distance above threshold)."""
        return alarm_decisions(self.score_samples(X))

    def predict_category(self, X) -> List[str]:
        """Per-record class labels (requires labelled training data)."""
        self._require_fitted(self.is_fitted)
        if self.labeler is None:
            return super().predict_category(X)
        matrix = check_array_2d(X, "X")
        units = self.model.transform(matrix)
        distances = self.model.quantization_distances(matrix)
        leaf_keys = self._leaf_keys(units)
        ratios = self.threshold_.normalize(distances, leaf_keys)
        categories: List[str] = []
        for key, ratio in zip(leaf_keys, ratios, strict=True):
            label = self.labeler.label_of(key)
            if label == UNLABELED:
                categories.append("unknown" if ratio > 1.0 else "normal")
            elif label == "normal" and ratio > 1.0:
                categories.append("unknown")
            else:
                categories.append(label)
        return categories
