"""Baseline anomaly detectors the paper's evaluation compares GHSOM against."""

from repro.baselines.som_detector import SomDetector
from repro.baselines.kmeans import KMeansDetector
from repro.baselines.pca_subspace import PcaSubspaceDetector
from repro.baselines.knn import KnnDetector
from repro.baselines.lof import LofDetector

__all__ = ["SomDetector", "KMeansDetector", "PcaSubspaceDetector", "KnnDetector", "LofDetector"]
