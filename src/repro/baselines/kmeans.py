"""k-means clustering baseline detector.

A classic centroid-based intrusion detector: cluster the training traffic with
k-means, label each cluster by majority vote (when labels are available), and
flag test records that either land in an attack-labelled cluster or lie
unusually far from their nearest centroid.  k-means is the partitional
counterpart to the SOM family and a standard baseline in the GHSOM
intrusion-detection literature.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.detector import (
    BaseAnomalyDetector,
    alarm_decisions,
    combine_label_and_distance_scores,
)
from repro.core.distances import squared_euclidean
from repro.core.labeling import UNLABELED, UnitLabeler
from repro.core.thresholds import make_threshold_strategy
from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_array_2d, check_same_length


class KMeans:
    """Minimal Lloyd's-algorithm k-means with k-means++ initialisation."""

    def __init__(
        self,
        n_clusters: int = 8,
        *,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        random_state: RandomState = None,
    ) -> None:
        if n_clusters < 1:
            raise ConfigurationError(f"n_clusters must be >= 1, got {n_clusters}")
        if max_iterations < 1:
            raise ConfigurationError(f"max_iterations must be >= 1, got {max_iterations}")
        self.n_clusters = int(n_clusters)
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)
        self._rng = ensure_rng(random_state)
        self.centroids: Optional[np.ndarray] = None
        self.inertia_: Optional[float] = None
        self.n_iterations_: int = 0

    def _init_centroids(self, matrix: np.ndarray) -> np.ndarray:
        """k-means++ seeding: spread the initial centroids across the data."""
        n_samples = matrix.shape[0]
        centroids = np.empty((self.n_clusters, matrix.shape[1]))
        first = self._rng.integers(0, n_samples)
        centroids[0] = matrix[first]
        closest_sq = squared_euclidean(matrix, centroids[:1])[:, 0]
        for index in range(1, self.n_clusters):
            total = closest_sq.sum()
            if total <= 0:
                chosen = self._rng.integers(0, n_samples)
            else:
                probabilities = closest_sq / total
                chosen = self._rng.choice(n_samples, p=probabilities)
            centroids[index] = matrix[chosen]
            new_sq = squared_euclidean(matrix, centroids[index : index + 1])[:, 0]
            closest_sq = np.minimum(closest_sq, new_sq)
        return centroids

    def fit(self, data) -> "KMeans":
        """Run Lloyd's algorithm until convergence or ``max_iterations``."""
        matrix = check_array_2d(data, "data", min_rows=1)
        if matrix.shape[0] < self.n_clusters:
            raise ConfigurationError(
                f"cannot fit {self.n_clusters} clusters on {matrix.shape[0]} samples"
            )
        centroids = self._init_centroids(matrix)
        for iteration in range(self.max_iterations):
            distances = squared_euclidean(matrix, centroids)
            assignments = np.argmin(distances, axis=1)
            updated = centroids.copy()
            for cluster in range(self.n_clusters):
                members = matrix[assignments == cluster]
                if members.shape[0] > 0:
                    updated[cluster] = members.mean(axis=0)
            shift = float(np.linalg.norm(updated - centroids))
            centroids = updated
            self.n_iterations_ = iteration + 1
            if shift < self.tolerance:
                break
        self.centroids = centroids
        final_distances = squared_euclidean(matrix, centroids)
        self.inertia_ = float(final_distances.min(axis=1).sum())
        return self

    def predict(self, data) -> np.ndarray:
        """Nearest-centroid index for each sample."""
        if self.centroids is None:
            raise ConfigurationError("KMeans is not fitted")
        matrix = check_array_2d(data, "data")
        return np.argmin(squared_euclidean(matrix, self.centroids), axis=1)

    def transform(self, data) -> np.ndarray:
        """Euclidean distance of each sample to its nearest centroid."""
        if self.centroids is None:
            raise ConfigurationError("KMeans is not fitted")
        matrix = check_array_2d(data, "data")
        return np.sqrt(squared_euclidean(matrix, self.centroids).min(axis=1))


class KMeansDetector(BaseAnomalyDetector):
    """Anomaly detector built on k-means clustering.

    Parameters
    ----------
    n_clusters:
        Number of centroids.
    threshold_strategy, threshold_kwargs:
        Same threshold options as the SOM-family detectors (clusters play the
        role of leaf units).
    calibrate_on_normal_only:
        Calibrate thresholds on normal training records only when labels are
        available.
    random_state:
        Seed for centroid initialisation.
    """

    name = "kmeans"

    def __init__(
        self,
        n_clusters: int = 40,
        *,
        max_iterations: int = 100,
        threshold_strategy: str = "per_unit",
        threshold_kwargs: Optional[Dict[str, object]] = None,
        labeling_strategy: str = "majority",
        calibrate_on_normal_only: bool = True,
        random_state: RandomState = None,
    ) -> None:
        self.n_clusters = int(n_clusters)
        self.max_iterations = int(max_iterations)
        self.threshold_strategy_name = threshold_strategy
        self.threshold_kwargs = dict(threshold_kwargs or {})
        self.labeling_strategy = labeling_strategy
        self.calibrate_on_normal_only = calibrate_on_normal_only
        self.random_state = random_state
        self.model: Optional[KMeans] = None
        self.labeler: Optional[UnitLabeler] = None
        self.threshold_: Optional[object] = None

    @property
    def is_fitted(self) -> bool:
        return self.model is not None and self.threshold_ is not None

    def _leaf_keys(self, clusters: np.ndarray) -> List:
        return [("kmeans", int(cluster)) for cluster in clusters]

    # ------------------------------------------------------------------ #
    def fit(self, X, y: Optional[Sequence[str]] = None) -> "KMeansDetector":
        """Cluster the training data, label clusters and calibrate thresholds."""
        matrix = check_array_2d(X, "X", min_rows=2)
        labels = None
        if y is not None:
            labels = [str(label) for label in y]
            check_same_length(matrix, labels, "X", "y")
        n_clusters = min(self.n_clusters, matrix.shape[0])
        self.model = KMeans(
            n_clusters=n_clusters,
            max_iterations=self.max_iterations,
            random_state=self.random_state,
        )
        self.model.fit(matrix)
        clusters = self.model.predict(matrix)
        distances = self.model.transform(matrix)
        leaf_keys = self._leaf_keys(clusters)

        if labels is not None:
            self.labeler = UnitLabeler(strategy=self.labeling_strategy)
            self.labeler.fit(leaf_keys, labels)
        else:
            self.labeler = None

        calibration_mask = np.ones(len(distances), dtype=bool)
        if labels is not None and self.calibrate_on_normal_only:
            normal_mask = np.array([label == "normal" for label in labels])
            if normal_mask.any():
                calibration_mask = normal_mask
        strategy = make_threshold_strategy(self.threshold_strategy_name, **self.threshold_kwargs)
        strategy.fit(
            distances[calibration_mask],
            [key for key, keep in zip(leaf_keys, calibration_mask, strict=True) if keep],
        )
        self.threshold_ = strategy
        return self

    # ------------------------------------------------------------------ #
    def score_samples(self, X) -> np.ndarray:
        """Threshold-normalised anomaly scores (label-aware in labelled mode)."""
        self._require_fitted(self.is_fitted)
        matrix = check_array_2d(X, "X")
        clusters = self.model.predict(matrix)
        distances = self.model.transform(matrix)
        leaf_keys = self._leaf_keys(clusters)
        ratios = self.threshold_.normalize(distances, leaf_keys)
        return combine_label_and_distance_scores(ratios, leaf_keys, self.labeler)

    def predict(self, X) -> np.ndarray:
        """Binary decisions (attack-labelled cluster or distance above threshold)."""
        return alarm_decisions(self.score_samples(X))

    def predict_category(self, X) -> List[str]:
        """Per-record class labels from cluster majority votes."""
        self._require_fitted(self.is_fitted)
        if self.labeler is None:
            return super().predict_category(X)
        matrix = check_array_2d(X, "X")
        clusters = self.model.predict(matrix)
        distances = self.model.transform(matrix)
        leaf_keys = self._leaf_keys(clusters)
        ratios = self.threshold_.normalize(distances, leaf_keys)
        categories: List[str] = []
        for key, ratio in zip(leaf_keys, ratios, strict=True):
            label = self.labeler.label_of(key)
            if label == UNLABELED:
                categories.append("unknown" if ratio > 1.0 else "normal")
            elif label == "normal" and ratio > 1.0:
                categories.append("unknown")
            else:
                categories.append(label)
        return categories
