"""Shared typing aliases for the strict-typed modules.

``mypy --strict`` (see ``mypy.ini``) forbids bare generics, so ``np.ndarray``
annotations need explicit parameters.  The serving stack intentionally types
arrays loosely — dtypes are a *runtime* contract (float32/float64 chosen per
:class:`~repro.serving.config.ServingConfig`), so pinning them in the type
system would either lie or force casts at every call site.
"""

from __future__ import annotations

from typing import Any

import numpy.typing as npt

#: Any numpy array; the dtype contract is enforced at runtime by
#: ``check_array_2d`` and the serialization schema, not by the type checker.
AnyArray = npt.NDArray[Any]
