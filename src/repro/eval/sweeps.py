"""Parameter sweeps used by the sensitivity experiments (Table 5, Figures 2 and 4).

Each sweep returns a list of plain dictionaries (one per configuration) so the
benchmark scripts can render them directly with
:func:`repro.eval.tables.format_table` and the tests can assert on the
monotonic trends the paper reports (smaller tau -> larger maps, etc.).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import GhsomConfig
from repro.core.detector import GhsomDetector
from repro.eval.metrics import binary_metrics
from repro.exceptions import ConfigurationError
from repro.utils.timer import Stopwatch
from repro.utils.validation import check_array_2d, check_same_length


def threshold_sweep(
    scores: Sequence[float],
    y_true: Sequence,
    thresholds: Optional[Sequence[float]] = None,
    *,
    n_points: int = 25,
) -> List[Dict[str, float]]:
    """Detection rate and FPR as a function of the decision threshold (Figure 2).

    Parameters
    ----------
    scores:
        Continuous anomaly scores (larger = more anomalous).
    y_true:
        Binary ground truth (1 = attack).
    thresholds:
        Explicit thresholds to evaluate; by default ``n_points`` thresholds
        spanning the observed score range.
    """
    score_array = np.asarray(scores, dtype=float)
    truth = np.asarray(y_true, dtype=int)
    check_same_length(score_array, truth, "scores", "y_true")
    if thresholds is None:
        low, high = float(score_array.min()), float(score_array.max())
        if high <= low:
            high = low + 1.0
        thresholds = np.linspace(low, high, int(n_points))
    rows: List[Dict[str, float]] = []
    for threshold in thresholds:
        predictions = (score_array > threshold).astype(int)
        metrics = binary_metrics(truth, predictions)
        rows.append(
            {
                "threshold": float(threshold),
                "detection_rate": metrics.detection_rate,
                "false_positive_rate": metrics.false_positive_rate,
                "f1": metrics.f1,
                "accuracy": metrics.accuracy,
            }
        )
    return rows


def tau_sensitivity_sweep(
    X_train,
    y_train: Optional[Sequence[str]],
    X_test,
    y_test_binary: Sequence,
    *,
    tau1_values: Sequence[float] = (0.6, 0.4, 0.3, 0.2),
    tau2_values: Sequence[float] = (0.2, 0.1, 0.05),
    base_config: Optional[GhsomConfig] = None,
    random_state: int = 0,
) -> List[Dict[str, object]]:
    """Accuracy and model size across a grid of (tau1, tau2) values (Figure 4 / Table 5).

    Returns one row per combination with topology statistics, detection
    metrics and training time.
    """
    train_matrix = check_array_2d(X_train, "X_train")
    test_matrix = check_array_2d(X_test, "X_test")
    truth = np.asarray(y_test_binary, dtype=int)
    check_same_length(test_matrix, truth, "X_test", "y_test_binary")
    if not tau1_values or not tau2_values:
        raise ConfigurationError("tau1_values and tau2_values must not be empty")
    base = base_config or GhsomConfig()
    rows: List[Dict[str, object]] = []
    for tau1 in tau1_values:
        for tau2 in tau2_values:
            config = base.with_updates(tau1=float(tau1), tau2=float(tau2))
            detector = GhsomDetector(config, random_state=random_state)
            watch = Stopwatch()
            with watch.measure("fit"):
                detector.fit(train_matrix, y_train)
            predictions = detector.predict(test_matrix)
            metrics = binary_metrics(truth, predictions)
            topology = detector.topology_summary()
            rows.append(
                {
                    "tau1": float(tau1),
                    "tau2": float(tau2),
                    "n_maps": topology["n_maps"],
                    "n_units": topology["n_units"],
                    "depth": topology["depth"],
                    "detection_rate": metrics.detection_rate,
                    "false_positive_rate": metrics.false_positive_rate,
                    "f1": metrics.f1,
                    "fit_seconds": watch.total("fit"),
                }
            )
    return rows


def dataset_size_sweep(
    detector_factory,
    sizes: Sequence[int],
    generator_factory,
    *,
    n_test: int = 1000,
    random_state: int = 0,
) -> List[Dict[str, object]]:
    """Training/scoring time and accuracy as the training-set size grows (Figure 5).

    Parameters
    ----------
    detector_factory:
        Zero-argument callable returning a fresh detector.
    sizes:
        Training-set sizes to evaluate.
    generator_factory:
        Zero-argument callable returning a fresh
        :class:`~repro.data.synthetic.KddSyntheticGenerator`-like object with
        ``generate`` and a schema-compatible output.
    """
    from repro.data.preprocess import PreprocessingPipeline  # local import to avoid a cycle

    rows: List[Dict[str, object]] = []
    for size in sizes:
        if size < 10:
            raise ConfigurationError(f"training size must be >= 10, got {size}")
        generator = generator_factory()
        train = generator.generate(int(size))
        test = generator.generate(int(n_test))
        pipeline = PreprocessingPipeline()
        X_train = pipeline.fit_transform(train)
        X_test = pipeline.transform(test)
        truth = test.is_attack.astype(int)
        detector = detector_factory()
        watch = Stopwatch()
        with watch.measure("fit"):
            detector.fit(X_train, [str(category) for category in train.categories])
        with watch.measure("score"):
            predictions = detector.predict(X_test)
        metrics = binary_metrics(truth, predictions)
        rows.append(
            {
                "n_train": int(size),
                "fit_seconds": watch.total("fit"),
                "score_seconds": watch.total("score"),
                "records_per_second": int(size / max(watch.total("fit"), 1e-9)),
                "detection_rate": metrics.detection_rate,
                "false_positive_rate": metrics.false_positive_rate,
            }
        )
    return rows
