"""Cross-validated evaluation of detectors.

Single train/test splits are noisy, especially for the rare R2L/U2R
categories.  :func:`cross_validate_detector` runs a stratified k-fold
evaluation and reports the mean and standard deviation of every metric, which
is what the robustness discussion in the evaluation relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.detector import BaseAnomalyDetector
from repro.data.preprocess import PreprocessingPipeline
from repro.data.records import Dataset
from repro.eval.metrics import BinaryMetrics, binary_metrics, per_category_detection_rates, roc_auc
from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState, ensure_rng


@dataclass
class FoldResult:
    """Metrics of one cross-validation fold."""

    fold: int
    metrics: BinaryMetrics
    roc_auc: float
    per_category: Dict[str, float]


@dataclass
class CrossValidationResult:
    """Aggregate of all folds for one detector."""

    detector_name: str
    folds: List[FoldResult] = field(default_factory=list)

    def _collect(self, getter: Callable[[FoldResult], float]) -> np.ndarray:
        return np.array([getter(fold) for fold in self.folds], dtype=float)

    def mean_std(self, metric: str) -> tuple:
        """(mean, std) of one metric (``detection_rate``, ``false_positive_rate``,
        ``precision``, ``f1``, ``accuracy`` or ``roc_auc``) across folds."""
        if metric == "roc_auc":
            values = self._collect(lambda fold: fold.roc_auc)
        else:
            values = self._collect(lambda fold: fold.metrics.as_dict()[metric])
        return float(values.mean()), float(values.std())

    def summary(self) -> Dict[str, object]:
        """Means and standard deviations of the headline metrics."""
        summary: Dict[str, object] = {"detector": self.detector_name, "n_folds": len(self.folds)}
        for metric in ("detection_rate", "false_positive_rate", "precision", "f1", "accuracy", "roc_auc"):
            mean, std = self.mean_std(metric)
            summary[f"{metric}_mean"] = mean
            summary[f"{metric}_std"] = std
        return summary

    def per_category_means(self) -> Dict[str, float]:
        """Mean per-category alarm fraction across folds."""
        totals: Dict[str, List[float]] = {}
        for fold in self.folds:
            for category, value in fold.per_category.items():
                totals.setdefault(category, []).append(value)
        return {category: float(np.mean(values)) for category, values in sorted(totals.items())}


def k_fold_indices(
    n_records: int, n_folds: int, random_state: RandomState = None
) -> List[np.ndarray]:
    """Shuffled partition of ``range(n_records)`` into ``n_folds`` near-equal folds."""
    if n_folds < 2:
        raise ConfigurationError(f"n_folds must be >= 2, got {n_folds}")
    if n_records < n_folds:
        raise ConfigurationError(
            f"cannot split {n_records} records into {n_folds} folds"
        )
    rng = ensure_rng(random_state)
    order = rng.permutation(n_records)
    return [fold for fold in np.array_split(order, n_folds)]


def cross_validate_detector(
    detector_factory: Callable[[], BaseAnomalyDetector],
    dataset: Dataset,
    *,
    n_folds: int = 5,
    supervised: bool = True,
    pipeline_factory: Optional[Callable[[], PreprocessingPipeline]] = None,
    random_state: RandomState = 0,
) -> CrossValidationResult:
    """Stratified k-fold evaluation of one detector on a labelled dataset.

    For each fold the remaining folds form the training set; the preprocessing
    pipeline is re-fitted on each training portion (no information leaks from
    the held-out fold).

    Parameters
    ----------
    detector_factory:
        Zero-argument callable producing a fresh, unfitted detector.
    dataset:
        The full labelled dataset to split.
    n_folds:
        Number of folds.
    supervised:
        Pass training category labels to ``fit``.
    pipeline_factory:
        Callable producing a fresh preprocessing pipeline (default:
        ``PreprocessingPipeline()``).
    random_state:
        Seed for the fold assignment.
    """
    if len(dataset) < n_folds * 2:
        raise ConfigurationError(
            f"dataset of {len(dataset)} records is too small for {n_folds}-fold evaluation"
        )
    pipeline_factory = pipeline_factory or PreprocessingPipeline
    rng = ensure_rng(random_state)
    result = CrossValidationResult(detector_name=getattr(detector_factory(), "name", "detector"))
    # Stratify by building each fold with a stratified split of the remainder:
    # simpler and adequate here — split the dataset into n_folds chunks with
    # approximately preserved class balance by shuffling within categories.
    categories = dataset.categories
    fold_of_record = np.zeros(len(dataset), dtype=int)
    for category in np.unique(categories.astype(str)):
        indices = np.flatnonzero(categories.astype(str) == category)
        rng.shuffle(indices)
        for position, record_index in enumerate(indices):
            fold_of_record[record_index] = position % n_folds
    for fold in range(n_folds):
        test_indices = np.flatnonzero(fold_of_record == fold)
        train_indices = np.flatnonzero(fold_of_record != fold)
        train_split = dataset.subset(train_indices)
        test_split = dataset.subset(test_indices)
        pipeline = pipeline_factory()
        X_train = pipeline.fit_transform(train_split)
        X_test = pipeline.transform(test_split)
        detector = detector_factory()
        y_train = (
            [str(category) for category in train_split.categories] if supervised else None
        )
        detector.fit(X_train, y_train)
        predictions = detector.predict(X_test)
        scores = detector.score_samples(X_test)
        truth = test_split.is_attack.astype(int)
        result.folds.append(
            FoldResult(
                fold=fold,
                metrics=binary_metrics(truth, predictions),
                roc_auc=roc_auc(truth, scores),
                per_category=per_category_detection_rates(
                    [str(category) for category in test_split.categories], predictions
                ),
            )
        )
    return result
