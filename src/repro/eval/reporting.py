"""Persisting evaluation results as JSON and Markdown reports.

Experiment results are most useful when they can be diffed across runs; this
module flattens :class:`~repro.eval.experiments.DetectorResult` objects into
plain JSON documents and renders a human-readable Markdown report next to
them.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

import numpy as np

from repro.eval.experiments import DetectorResult
from repro.eval.tables import format_table
from repro.exceptions import DataValidationError
from repro.utils.mmapio import atomic_write

PathLike = Union[str, Path]


def result_to_dict(result: DetectorResult) -> Dict[str, object]:
    """Flatten one :class:`DetectorResult` into a JSON-compatible dict."""
    payload: Dict[str, object] = {
        "name": result.name,
        "metrics": result.metrics.as_dict(),
        "counts": {
            "true_positives": result.metrics.true_positives,
            "false_positives": result.metrics.false_positives,
            "true_negatives": result.metrics.true_negatives,
            "false_negatives": result.metrics.false_negatives,
        },
        "per_category": dict(result.per_category),
        "roc_auc": result.roc_auc,
        "fit_seconds": result.fit_seconds,
        "score_seconds": result.score_seconds,
    }
    if result.confusion is not None:
        matrix, labels = result.confusion
        payload["confusion"] = {
            "labels": list(labels),
            "matrix": np.asarray(matrix).tolist(),
        }
    return payload


def save_results_json(
    results: Mapping[str, DetectorResult],
    path: PathLike,
    *,
    metadata: Optional[Dict[str, object]] = None,
) -> None:
    """Write a comparison run (several detectors) to a JSON file."""
    if not results:
        raise DataValidationError("cannot save an empty results mapping")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "metadata": dict(metadata or {}),
        "results": {name: result_to_dict(result) for name, result in results.items()},
    }
    # Atomic replace: a crash mid-write must not leave a truncated results
    # file that a later load_results_json() half-parses (repro-lint RPL001).
    text = json.dumps(payload, indent=2)
    atomic_write(path, lambda stream: stream.write(text))


def load_results_json(path: PathLike) -> Dict[str, object]:
    """Read a results document previously written by :func:`save_results_json`."""
    path = Path(path)
    if not path.exists():
        raise DataValidationError(f"results file does not exist: {path}")
    return json.loads(path.read_text())


def render_markdown_report(
    results: Mapping[str, DetectorResult],
    *,
    title: str = "Detection results",
    metadata: Optional[Dict[str, object]] = None,
) -> str:
    """Render a comparison run as a Markdown report (tables in fenced blocks)."""
    if not results:
        raise DataValidationError("cannot render an empty results mapping")
    lines = [f"# {title}", ""]
    if metadata:
        lines.append("## Run metadata")
        lines.append("")
        for key, value in metadata.items():
            lines.append(f"- **{key}**: {value}")
        lines.append("")
    lines.append("## Overall comparison")
    lines.append("")
    rows = [result.summary_row() for result in results.values()]
    lines.append("```")
    lines.append(format_table(rows, DetectorResult.summary_headers()))
    lines.append("```")
    lines.append("")
    lines.append("## Per-category alarm fraction")
    lines.append("")
    categories = sorted({cat for result in results.values() for cat in result.per_category})
    per_category_rows = [
        [name] + [result.per_category.get(category) for category in categories]
        for name, result in results.items()
    ]
    lines.append("```")
    lines.append(format_table(per_category_rows, ["detector"] + categories))
    lines.append("```")
    for name, result in results.items():
        if result.confusion is None:
            continue
        matrix, labels = result.confusion
        lines.append("")
        lines.append(f"## Confusion matrix: {name}")
        lines.append("")
        confusion_rows = [[labels[row]] + list(np.asarray(matrix)[row]) for row in range(len(labels))]
        lines.append("```")
        lines.append(format_table(confusion_rows, ["true \\ predicted"] + list(labels)))
        lines.append("```")
    lines.append("")
    return "\n".join(lines)


def save_markdown_report(
    results: Mapping[str, DetectorResult],
    path: PathLike,
    *,
    title: str = "Detection results",
    metadata: Optional[Dict[str, object]] = None,
) -> None:
    """Render and write the Markdown report to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_markdown_report(results, title=title, metadata=metadata))
