"""The experiment runner used by the benchmark harness and the examples.

:class:`ExperimentRunner` wires together the pieces every experiment needs —
dataset generation, preprocessing, detector training, scoring — and returns
structured :class:`DetectorResult` objects that the per-table benchmarks
render.  Keeping the orchestration here means each benchmark file only states
*what* to compare, not *how*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.detector import BaseAnomalyDetector
from repro.data.preprocess import PreprocessingPipeline
from repro.data.records import Dataset
from repro.data.synthetic import KddSyntheticGenerator
from repro.eval.metrics import (
    BinaryMetrics,
    binary_metrics,
    confusion_matrix,
    per_category_detection_rates,
    roc_auc,
)
from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState
from repro.utils.timer import Stopwatch


@dataclass
class DetectorResult:
    """Everything measured for one detector on one train/test split."""

    name: str
    metrics: BinaryMetrics
    per_category: Dict[str, float]
    roc_auc: float
    fit_seconds: float
    score_seconds: float
    confusion: Optional[Tuple[np.ndarray, List[str]]] = None
    extra: Dict[str, object] = field(default_factory=dict)

    def summary_row(self) -> List[object]:
        """Row used by the overall-comparison table (Table 2)."""
        return [
            self.name,
            self.metrics.detection_rate,
            self.metrics.false_positive_rate,
            self.metrics.precision,
            self.metrics.f1,
            self.metrics.accuracy,
            self.roc_auc,
            self.fit_seconds,
        ]

    @staticmethod
    def summary_headers() -> List[str]:
        """Headers matching :meth:`summary_row`."""
        return ["detector", "DR", "FPR", "precision", "F1", "accuracy", "AUC", "fit_s"]


def evaluate_detector(
    detector: BaseAnomalyDetector,
    X_train: np.ndarray,
    y_train: Optional[Sequence[str]],
    X_test: np.ndarray,
    test_categories: Sequence[str],
    *,
    with_confusion: bool = False,
) -> DetectorResult:
    """Fit ``detector`` and measure it on the test split.

    Parameters
    ----------
    detector:
        Any object following the :class:`BaseAnomalyDetector` contract.
    X_train, y_train:
        Training matrix and optional string labels.
    X_test:
        Test matrix.
    test_categories:
        True category per test record (``normal`` / attack categories); the
        binary ground truth is derived from it.
    with_confusion:
        Also compute the multi-class confusion matrix via
        ``predict_category`` (only meaningful for labelled detectors).
    """
    categories = [str(value) for value in test_categories]
    y_true = np.array([0 if category == "normal" else 1 for category in categories])
    watch = Stopwatch()
    with watch.measure("fit"):
        detector.fit(X_train, y_train)
    with watch.measure("score"):
        # Single-pass serving API: scores, decisions and (when needed)
        # categories from one detection pass instead of one per call.
        detection = detector.detect(X_test)
    scores = detection.scores
    predictions = detection.predictions
    result_metrics = binary_metrics(y_true, predictions)
    per_category = per_category_detection_rates(categories, predictions)
    area = roc_auc(y_true, scores)
    confusion = None
    if with_confusion:
        confusion = confusion_matrix(categories, detection.categories)
    return DetectorResult(
        name=getattr(detector, "name", type(detector).__name__),
        metrics=result_metrics,
        per_category=per_category,
        roc_auc=area,
        fit_seconds=watch.total("fit"),
        score_seconds=watch.total("score"),
        confusion=confusion,
    )


class ExperimentRunner:
    """Generates data once and evaluates a set of detectors on it.

    Parameters
    ----------
    n_train, n_test:
        Sizes of the generated train and test splits.
    train_mix, test_mix:
        Optional class mixes passed to the synthetic generator.
    train_on_normal_only:
        Train detectors one-class style on the normal records only (labels
        are then withheld from ``fit``); the test split is unchanged.
    supervised:
        Pass training labels to the detectors (ignored when
        ``train_on_normal_only`` is set).
    random_state:
        Seed controlling generation and preprocessing determinism.
    """

    def __init__(
        self,
        n_train: int = 4000,
        n_test: int = 2000,
        *,
        train_mix: Optional[Mapping[str, float]] = None,
        test_mix: Optional[Mapping[str, float]] = None,
        train_on_normal_only: bool = False,
        supervised: bool = True,
        random_state: RandomState = 0,
    ) -> None:
        if n_train < 10 or n_test < 10:
            raise ConfigurationError("n_train and n_test must both be at least 10")
        self.n_train = int(n_train)
        self.n_test = int(n_test)
        self.train_mix = dict(train_mix) if train_mix is not None else None
        self.test_mix = dict(test_mix) if test_mix is not None else None
        self.train_on_normal_only = train_on_normal_only
        self.supervised = supervised
        self.random_state = random_state
        self._prepared: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------ #
    def prepare(self) -> Dict[str, object]:
        """Generate and preprocess the data (cached across detector runs)."""
        if self._prepared is not None:
            return self._prepared
        generator = KddSyntheticGenerator(random_state=self.random_state)
        if self.train_on_normal_only:
            train = generator.generate_normal(self.n_train)
        else:
            train = generator.generate(self.n_train, class_mix=self.train_mix)
        test = generator.generate(self.n_test, class_mix=self.test_mix)
        pipeline = PreprocessingPipeline()
        X_train = pipeline.fit_transform(train)
        X_test = pipeline.transform(test)
        y_train: Optional[List[str]]
        if self.train_on_normal_only or not self.supervised:
            y_train = None
        else:
            y_train = [str(category) for category in train.categories]
        self._prepared = {
            "train": train,
            "test": test,
            "pipeline": pipeline,
            "X_train": X_train,
            "X_test": X_test,
            "y_train": y_train,
            "test_categories": [str(category) for category in test.categories],
        }
        return self._prepared

    @property
    def train_dataset(self) -> Dataset:
        """The generated training dataset."""
        return self.prepare()["train"]  # type: ignore[return-value]

    @property
    def test_dataset(self) -> Dataset:
        """The generated test dataset."""
        return self.prepare()["test"]  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    def run(
        self,
        detectors: Mapping[str, BaseAnomalyDetector],
        *,
        with_confusion: bool = False,
    ) -> Dict[str, DetectorResult]:
        """Evaluate every detector on the shared train/test split."""
        prepared = self.prepare()
        results: Dict[str, DetectorResult] = {}
        for name, detector in detectors.items():
            result = evaluate_detector(
                detector,
                prepared["X_train"],
                prepared["y_train"],
                prepared["X_test"],
                prepared["test_categories"],
                with_confusion=with_confusion,
            )
            result.name = name
            results[name] = result
        return results

    def run_single(self, detector: BaseAnomalyDetector, *, with_confusion: bool = False) -> DetectorResult:
        """Evaluate one detector (convenience wrapper around :meth:`run`)."""
        name = getattr(detector, "name", type(detector).__name__)
        return self.run({name: detector}, with_confusion=with_confusion)[name]
