"""Plain-text table rendering for benchmark output and examples.

The benchmark harness prints every reproduced table/figure as an ASCII table;
keeping the formatting in one place makes the benchmark scripts short and the
output uniform.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def _format_cell(value: Cell, float_format: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    rows: Sequence[Sequence[Cell]],
    headers: Sequence[str],
    *,
    title: Optional[str] = None,
    float_format: str = ".4f",
) -> str:
    """Render ``rows`` as a fixed-width ASCII table.

    Parameters
    ----------
    rows:
        Sequence of rows, each a sequence of cells (str / int / float / None).
    headers:
        Column headers; every row must have the same length.
    title:
        Optional title line printed above the table.
    float_format:
        ``format()`` spec applied to float cells.
    """
    formatted_rows: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers: {row!r}"
            )
        formatted_rows.append([_format_cell(cell, float_format) for cell in row])
    header_cells = [str(header) for header in headers]
    widths = [len(header) for header in header_cells]
    for row in formatted_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[column]) for column, cell in enumerate(cells))

    separator = "-+-".join("-" * width for width in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(separator))
    lines.append(render_row(header_cells))
    lines.append(separator)
    lines.extend(render_row(row) for row in formatted_rows)
    return "\n".join(lines)


def format_mapping(mapping: Dict[str, Cell], *, title: Optional[str] = None) -> str:
    """Render a key/value mapping as a two-column table."""
    rows = [[key, value] for key, value in mapping.items()]
    return format_table(rows, headers=["key", "value"], title=title)


def format_series(
    x_values: Sequence[Cell],
    y_series: Dict[str, Sequence[Cell]],
    *,
    x_label: str = "x",
    title: Optional[str] = None,
    float_format: str = ".4f",
) -> str:
    """Render one or more y-series against shared x values (figure data as a table)."""
    headers = [x_label] + list(y_series)
    rows = []
    for index, x_value in enumerate(x_values):
        row: List[Cell] = [x_value]
        for name in y_series:
            series = y_series[name]
            row.append(series[index] if index < len(series) else None)
        rows.append(row)
    return format_table(rows, headers=headers, title=title, float_format=float_format)
