"""Evaluation harness: metrics, experiment runner, sweeps and table rendering."""

from repro.eval.metrics import (
    BinaryMetrics,
    auc,
    binary_metrics,
    confusion_matrix,
    per_category_detection_rates,
    roc_curve,
)
from repro.eval.crossval import CrossValidationResult, cross_validate_detector, k_fold_indices
from repro.eval.experiments import DetectorResult, ExperimentRunner, evaluate_detector
from repro.eval.reporting import (
    load_results_json,
    render_markdown_report,
    save_markdown_report,
    save_results_json,
)
from repro.eval.sweeps import tau_sensitivity_sweep, threshold_sweep
from repro.eval.tables import format_table

__all__ = [
    "BinaryMetrics",
    "auc",
    "binary_metrics",
    "confusion_matrix",
    "per_category_detection_rates",
    "roc_curve",
    "CrossValidationResult",
    "cross_validate_detector",
    "k_fold_indices",
    "load_results_json",
    "render_markdown_report",
    "save_markdown_report",
    "save_results_json",
    "DetectorResult",
    "ExperimentRunner",
    "evaluate_detector",
    "tau_sensitivity_sweep",
    "threshold_sweep",
    "format_table",
]
