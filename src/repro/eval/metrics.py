"""Detection metrics: confusion matrices, rates, ROC curves and AUC.

Conventions used throughout the evaluation:

* binary labels are 1 = attack/anomaly, 0 = normal;
* the **detection rate** (DR, also called recall or true-positive rate) is
  the fraction of attacks that alarm;
* the **false-positive rate** (FPR) is the fraction of normal records that
  alarm;
* multi-class confusion matrices are keyed by category name (``normal``,
  ``dos``, ``probe``, ``r2l``, ``u2r``, plus ``unknown`` for records a
  labelled detector could not attribute to a training class).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DataValidationError
from repro.utils.validation import check_same_length


def _resolve_trapezoid(module=np):
    """The trapezoid-rule integrator of ``module``.

    NumPy 2.0 renamed ``np.trapz`` to ``np.trapezoid`` (and NumPy 2.x removed
    the old name); picking whichever exists keeps :func:`auc` working on both
    major versions.  The ``module`` parameter exists purely so the fallback
    selection is unit-testable without installing a second NumPy.
    """
    function = getattr(module, "trapezoid", None)
    if function is not None:
        return function
    return module.trapz


_trapezoid = _resolve_trapezoid()


def _as_binary(values: Sequence) -> np.ndarray:
    array = np.asarray(values)
    if array.dtype == bool:
        return array.astype(int)
    return np.asarray(array, dtype=int)


@dataclass(frozen=True)
class BinaryMetrics:
    """Summary of a binary detection outcome."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def n_attacks(self) -> int:
        """Number of attack records in the ground truth."""
        return self.true_positives + self.false_negatives

    @property
    def n_normal(self) -> int:
        """Number of normal records in the ground truth."""
        return self.true_negatives + self.false_positives

    @property
    def detection_rate(self) -> float:
        """Recall on the attack class (TP / (TP + FN)); 0 when there are no attacks."""
        return self.true_positives / self.n_attacks if self.n_attacks else 0.0

    @property
    def false_positive_rate(self) -> float:
        """FP / (FP + TN); 0 when there are no normal records."""
        return self.false_positives / self.n_normal if self.n_normal else 0.0

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 0 when nothing alarms."""
        alarms = self.true_positives + self.false_positives
        return self.true_positives / alarms if alarms else 0.0

    @property
    def recall(self) -> float:
        """Alias of :attr:`detection_rate`."""
        return self.detection_rate

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        precision, recall = self.precision, self.recall
        if precision + recall == 0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)

    @property
    def accuracy(self) -> float:
        """Fraction of records classified correctly."""
        total = self.n_attacks + self.n_normal
        return (self.true_positives + self.true_negatives) / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """All derived rates in one dictionary (used by table rendering)."""
        return {
            "detection_rate": self.detection_rate,
            "false_positive_rate": self.false_positive_rate,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "accuracy": self.accuracy,
        }


def binary_metrics(y_true: Sequence, y_pred: Sequence) -> BinaryMetrics:
    """Compute a :class:`BinaryMetrics` from ground truth and predictions (1 = attack)."""
    check_same_length(y_true, y_pred, "y_true", "y_pred")
    truth = _as_binary(y_true)
    predictions = _as_binary(y_pred)
    true_positives = int(np.sum((truth == 1) & (predictions == 1)))
    false_positives = int(np.sum((truth == 0) & (predictions == 1)))
    true_negatives = int(np.sum((truth == 0) & (predictions == 0)))
    false_negatives = int(np.sum((truth == 1) & (predictions == 0)))
    return BinaryMetrics(true_positives, false_positives, true_negatives, false_negatives)


def confusion_matrix(
    y_true: Sequence[str],
    y_pred: Sequence[str],
    labels: Optional[Sequence[str]] = None,
) -> Tuple[np.ndarray, List[str]]:
    """Multi-class confusion matrix.

    Returns
    -------
    matrix:
        ``(n_labels, n_labels)`` counts, rows = true class, columns = predicted.
    labels:
        Row/column ordering.  When not given, the union of observed labels in
        sorted order (with ``normal`` first when present).
    """
    check_same_length(y_true, y_pred, "y_true", "y_pred")
    truth = [str(value) for value in y_true]
    predicted = [str(value) for value in y_pred]
    if labels is None:
        observed = sorted(set(truth) | set(predicted))
        if "normal" in observed:
            observed.remove("normal")
            observed.insert(0, "normal")
        labels = observed
    else:
        labels = [str(label) for label in labels]
    index = {label: position for position, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for true_label, predicted_label in zip(truth, predicted, strict=True):
        row = index.get(true_label)
        column = index.get(predicted_label)
        if row is None or column is None:
            raise DataValidationError(
                f"label pair ({true_label!r}, {predicted_label!r}) not covered by {labels}"
            )
        matrix[row, column] += 1
    return matrix, list(labels)


def per_category_detection_rates(
    categories: Sequence[str],
    y_pred_binary: Sequence,
) -> Dict[str, float]:
    """Detection rate per attack category (plus FPR reported under ``"normal"``).

    Parameters
    ----------
    categories:
        True category per record (``normal``, ``dos``, ...).
    y_pred_binary:
        Binary alarm decision per record.
    """
    check_same_length(categories, y_pred_binary, "categories", "y_pred_binary")
    category_array = np.array([str(value) for value in categories], dtype=object)
    predictions = _as_binary(y_pred_binary)
    rates: Dict[str, float] = {}
    for category in sorted(set(category_array.tolist())):
        mask = category_array == category
        if not mask.any():
            continue
        alarm_fraction = float(predictions[mask].mean())
        rates[category] = alarm_fraction
    return rates


def roc_curve(y_true: Sequence, scores: Sequence[float]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC curve points from continuous anomaly scores.

    Returns
    -------
    fpr, tpr, thresholds:
        Arrays of identical length; ``thresholds`` is descending, starting at
        ``+inf`` (nothing alarms) and ending below the smallest score
        (everything alarms).
    """
    check_same_length(y_true, scores, "y_true", "scores")
    truth = _as_binary(y_true)
    score_array = np.asarray(scores, dtype=float)
    if score_array.size == 0:
        raise DataValidationError("cannot compute a ROC curve from zero scores")
    n_positive = int(truth.sum())
    n_negative = int(truth.size - n_positive)
    order = np.argsort(score_array)[::-1]
    sorted_truth = truth[order]
    sorted_scores = score_array[order]
    # Cumulative counts when thresholding just below each distinct score.
    tps = np.cumsum(sorted_truth)
    fps = np.cumsum(1 - sorted_truth)
    distinct = np.flatnonzero(np.diff(sorted_scores)) if sorted_scores.size > 1 else np.array([], int)
    cut_points = np.concatenate([distinct, [sorted_scores.size - 1]])
    tpr = tps[cut_points] / n_positive if n_positive else np.zeros(cut_points.size)
    fpr = fps[cut_points] / n_negative if n_negative else np.zeros(cut_points.size)
    thresholds = sorted_scores[cut_points]
    # Prepend the (0, 0) operating point (threshold above every score).
    fpr = np.concatenate([[0.0], fpr])
    tpr = np.concatenate([[0.0], tpr])
    thresholds = np.concatenate([[np.inf], thresholds])
    return fpr, tpr, thresholds


def auc(fpr: Sequence[float], tpr: Sequence[float]) -> float:
    """Area under a curve given by (x=fpr, y=tpr) points, by the trapezoid rule."""
    check_same_length(fpr, tpr, "fpr", "tpr")
    x = np.asarray(fpr, dtype=float)
    y = np.asarray(tpr, dtype=float)
    if x.size < 2:
        return 0.0
    order = np.argsort(x)
    return float(_trapezoid(y[order], x[order]))


def roc_auc(y_true: Sequence, scores: Sequence[float]) -> float:
    """Convenience wrapper: AUC of the ROC curve of ``scores``."""
    fpr, tpr, _ = roc_curve(y_true, scores)
    return auc(fpr, tpr)


def detection_rate_at_fpr(
    y_true: Sequence,
    scores: Sequence[float],
    target_fpr: float = 0.01,
) -> float:
    """Detection rate achievable at (or below) a target false-positive rate."""
    fpr, tpr, _ = roc_curve(y_true, scores)
    feasible = fpr <= target_fpr + 1e-12
    if not np.any(feasible):
        return 0.0
    return float(tpr[feasible].max())
