"""The paper's core contribution: the GHSOM model and detector."""

from repro.core.compiled import CompiledGhsom, compile_ghsom
from repro.core.config import GhsomConfig, SomTrainingConfig
from repro.core.detector import (
    ALARM_THRESHOLD,
    BaseAnomalyDetector,
    DetectionResult,
    GhsomDetector,
    alarm_decisions,
)
from repro.core.ensemble import EnsembleDetector
from repro.core.ghsom import Ghsom, GhsomNode, LeafAssignment
from repro.core.grid import MapGrid
from repro.core.growing_som import GrowingSom, GrowthEvent
from repro.core.kernels import (
    ENGINES,
    FUSED_DISTANCE_RTOL,
    available_fused_providers,
    fused_supported,
    get_default_engine,
    set_default_engine,
    set_fused_provider,
)
from repro.core.inspection import (
    component_plane,
    describe_tree,
    hit_map,
    render_grid,
    u_matrix,
    unit_summaries,
)
from repro.core.labeling import UNLABELED, LeafLabel, UnitLabeler
from repro.core.quantization import (
    average_sample_error,
    dataset_quantization_error,
    mean_quantization_error,
    topographic_error,
    unit_quantization_errors,
)
from repro.core.serialization import (
    load_detector,
    load_ghsom,
    save_detector,
    save_ghsom,
)
from repro.core.som import Som
from repro.core.thresholds import GlobalThreshold, PerUnitThreshold, make_threshold_strategy

__all__ = [
    "CompiledGhsom",
    "compile_ghsom",
    "GhsomConfig",
    "SomTrainingConfig",
    "ALARM_THRESHOLD",
    "alarm_decisions",
    "BaseAnomalyDetector",
    "DetectionResult",
    "GhsomDetector",
    "EnsembleDetector",
    "Ghsom",
    "GhsomNode",
    "LeafAssignment",
    "MapGrid",
    "GrowingSom",
    "GrowthEvent",
    "ENGINES",
    "FUSED_DISTANCE_RTOL",
    "available_fused_providers",
    "fused_supported",
    "get_default_engine",
    "set_default_engine",
    "set_fused_provider",
    "component_plane",
    "describe_tree",
    "hit_map",
    "render_grid",
    "u_matrix",
    "unit_summaries",
    "UNLABELED",
    "LeafLabel",
    "UnitLabeler",
    "average_sample_error",
    "dataset_quantization_error",
    "mean_quantization_error",
    "topographic_error",
    "unit_quantization_errors",
    "load_detector",
    "load_ghsom",
    "save_detector",
    "save_ghsom",
    "Som",
    "GlobalThreshold",
    "PerUnitThreshold",
    "make_threshold_strategy",
]
