"""Anomaly detectors: the common interface and the GHSOM detector.

Every detector in this library (the GHSOM detector here and the baselines in
:mod:`repro.baselines`) follows the same small contract:

``fit(X, y=None)``
    Train on a numeric feature matrix.  ``y`` is an optional vector of string
    class labels (categories or named attacks).  When labels are given the
    detector may additionally learn to classify; when they are absent it
    operates purely as a one-class / novelty detector.
``score_samples(X)``
    Continuous anomaly scores, larger = more anomalous.  Scores are
    *threshold-normalised*: a score of 1.0 sits exactly at the calibrated
    alarm threshold, so ``score > 1`` and ``predict(X) == 1`` agree for
    unlabeled data.
``predict(X)``
    Binary decisions: 1 for anomaly, 0 for normal.
``predict_category(X)``
    Best-effort class labels (only meaningful when ``fit`` saw labels).
``detect(X)``
    All of the above in one :class:`DetectionResult`, computed from a single
    scoring pass — the serving entry point (the CLI, the streaming wrapper and
    the evaluation harness all go through it).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core import kernels
from repro.core.compiled import CompiledGhsom
from repro.core.config import GhsomConfig
from repro.core.ghsom import Ghsom
from repro.core.labeling import UNLABELED, UnitLabeler
from repro.core.thresholds import make_threshold_strategy
from repro.exceptions import ConfigurationError, NotFittedError
from repro.utils.rng import RandomState
from repro.utils.validation import check_array_2d, check_same_length


#: Nominal alarm threshold on the normalised score scale: a score of exactly
#: 1.0 sits *at* the calibrated threshold and does **not** alarm.
ALARM_THRESHOLD = 1.0


def alarm_decisions(scores, threshold: float = ALARM_THRESHOLD) -> np.ndarray:
    """Binary alarm decisions from threshold-normalised scores.

    The single source of truth for the decision rule: a record alarms only
    when its score is *strictly above* the threshold.  Every decision path in
    the library — batch ``predict``, the single-pass ``detect``, and the
    streaming wrapper's adaptive rule (where ``threshold`` is the effective
    scale) — goes through this function, so a score landing exactly on the
    boundary receives the same verdict everywhere.
    """
    return (np.asarray(scores, dtype=float) > float(threshold)).astype(int)


@dataclass(frozen=True)
class DetectionResult:
    """Everything a serving consumer needs about one scored batch.

    Produced by :meth:`BaseAnomalyDetector.detect` so that callers needing
    scores *and* decisions *and* class labels (the CLI ``detect`` command, the
    evaluation harness, the streaming wrapper) pay for one scoring pass
    instead of one per method call.

    Attributes
    ----------
    scores:
        Threshold-normalised anomaly scores (1.0 = at the alarm threshold).
    predictions:
        Binary decisions, 1 for anomaly — always ``(scores > 1.0)``.
    categories:
        Best-effort class label per record.
    leaf_index:
        Compiled leaf-table row per record for detectors with a leaf topology
        (:class:`GhsomDetector`); ``None`` for detectors without one.
    """

    scores: np.ndarray
    predictions: np.ndarray
    categories: List[str]
    leaf_index: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return int(self.scores.shape[0])


def combine_label_and_distance_scores(
    ratios: np.ndarray,
    leaf_keys: Sequence,
    labeler: Optional[UnitLabeler],
) -> np.ndarray:
    """Fold unit labels into distance-based scores for labelled detectors.

    Records landing on attack-labelled units receive a score above 1.0 (they
    alarm regardless of how close they sit to the unit's weight vector),
    graded by the unit's label purity so purer attack units rank higher;
    records on normal or unlabeled units keep their threshold-normalised
    distance ratio.  This keeps ``predict(X) == 1`` equivalent to
    ``score_samples(X) > 1`` in both operating modes and makes ROC curves of
    labelled detectors meaningful.
    """
    ratios = np.asarray(ratios, dtype=float)
    if labeler is None or ratios.size == 0:
        return ratios
    # Resolve label info once per *distinct* leaf, then broadcast to samples
    # with integer indexing — batches revisit the same handful of leaves, so
    # this replaces n ``info_of`` calls with one per unique key.
    key_rows: Dict[object, int] = {}
    sample_rows = np.empty(len(leaf_keys), dtype=np.intp)
    for index, key in enumerate(leaf_keys):
        row = key_rows.setdefault(key, len(key_rows))
        sample_rows[index] = row
    is_attack = np.zeros(len(key_rows), dtype=bool)
    purity = np.zeros(len(key_rows), dtype=float)
    for key, row in key_rows.items():
        info = labeler.info_of(key)
        if _is_attack_label(info.label):
            is_attack[row] = True
            purity[row] = info.purity
    return _fold_attack_labels(ratios, is_attack[sample_rows], purity[sample_rows])


def _is_attack_label(label: str) -> bool:
    """Whether a unit label triggers the above-threshold score folding.

    Single source of truth for the predicate, shared by the leaf-key path
    above (used by the baselines) and the detector's compiled leaf tables —
    keeping the two scoring paths from silently diverging.
    """
    return label not in ("normal", UNLABELED)


def _fold_attack_labels(
    ratios: np.ndarray, attack_mask: np.ndarray, purity: np.ndarray
) -> np.ndarray:
    """Core of :func:`combine_label_and_distance_scores` on pre-resolved arrays."""
    scores = ratios.copy()
    if attack_mask.any():
        scores[attack_mask] = (
            1.0 + purity[attack_mask] + 0.01 * np.minimum(ratios[attack_mask], 10.0)
        )
    return scores


@dataclass(frozen=True)
class _LeafTables:
    """Per-leaf lookup arrays aligned with a compiled GHSOM's leaf table.

    Built once per fitted detector; every scoring call then reduces to
    ``assign_arrays`` plus integer fancy-indexing into these arrays.
    """

    compiled: CompiledGhsom
    threshold_source: object  # the strategy instance the table was built from
    threshold_version: int  # its fit_version at build time (in-place refit check)
    labeler_source: Optional[object]  # the labeler instance the table was built from
    labeler_version: int  # its fit_version at build time
    thresholds: np.ndarray  # (L,) calibrated distance threshold per leaf
    labels: Optional[np.ndarray]  # (L,) object array of unit labels
    is_attack: Optional[np.ndarray]  # (L,) label not in {normal, unlabeled}
    purity: Optional[np.ndarray]  # (L,) label purity (attack leaves only)


def build_leaf_tables(
    compiled: CompiledGhsom,
    threshold_strategy,
    labeler: Optional[UnitLabeler],
) -> _LeafTables:
    """Materialise the per-leaf scoring tables for a compiled model.

    Called by the detector whenever its cached tables are stale; the
    serialization layer stores the resulting arrays in v2 artifacts so a
    loaded detector skips even this (cheap) per-leaf evaluation.
    """
    thresholds = compiled.leaf_lookup(threshold_strategy.threshold_for, dtype=float)
    labels = is_attack = purity = None
    if labeler is not None:
        infos = [labeler.info_of(key) for key in compiled.leaf_keys]
        labels = np.array([info.label for info in infos], dtype=object)
        is_attack = np.array([_is_attack_label(info.label) for info in infos], dtype=bool)
        purity = np.array(
            [info.purity if flag else 0.0 for info, flag in zip(infos, is_attack)],
            dtype=float,
        )
    return _LeafTables(
        compiled=compiled,
        threshold_source=threshold_strategy,
        threshold_version=threshold_strategy.fit_version,
        labeler_source=labeler,
        labeler_version=0 if labeler is None else labeler.fit_version,
        thresholds=thresholds,
        labels=labels,
        is_attack=is_attack,
        purity=purity,
    )


def restore_leaf_tables(
    compiled: CompiledGhsom,
    threshold_strategy,
    labeler: Optional[UnitLabeler],
    *,
    thresholds: np.ndarray,
    labels: Optional[np.ndarray] = None,
    is_attack: Optional[np.ndarray] = None,
    purity: Optional[np.ndarray] = None,
) -> _LeafTables:
    """Rebuild leaf tables from arrays stored in a v2 model artifact.

    The tables are pinned to the freshly deserialized strategy / labeler
    objects at their current ``fit_version``, so any later in-place refit
    invalidates them exactly as it would invalidate live-built tables.
    """
    return _LeafTables(
        compiled=compiled,
        threshold_source=threshold_strategy,
        threshold_version=threshold_strategy.fit_version,
        labeler_source=labeler,
        labeler_version=0 if labeler is None else labeler.fit_version,
        thresholds=np.asarray(thresholds, dtype=float),
        labels=None if labels is None else np.asarray(labels, dtype=object),
        is_attack=None if is_attack is None else np.asarray(is_attack, dtype=bool),
        purity=None if purity is None else np.asarray(purity, dtype=float),
    )


class BaseAnomalyDetector(abc.ABC):
    """Abstract base class for all anomaly detectors in this library."""

    #: Human-readable detector name used in evaluation tables.
    name: str = "detector"

    @abc.abstractmethod
    def fit(self, X, y: Optional[Sequence[str]] = None) -> "BaseAnomalyDetector":
        """Train on feature matrix ``X`` with optional string labels ``y``."""

    @abc.abstractmethod
    def score_samples(self, X) -> np.ndarray:
        """Continuous anomaly scores (larger = more anomalous, 1.0 = at threshold)."""

    def predict(self, X) -> np.ndarray:
        """Binary anomaly decisions derived from the normalised scores."""
        return alarm_decisions(self.score_samples(X))

    def predict_category(self, X) -> List[str]:
        """Class labels per sample; defaults to anomaly/normal if no labels were seen."""
        return ["anomaly" if flag else "normal" for flag in self.predict(X)]

    def detect(self, X) -> DetectionResult:
        """Scores, decisions and categories from one scoring pass.

        The base implementation scores once and derives the decisions from the
        scores; detectors whose ``predict_category`` carries real class
        information (an overridden method) are routed through it so the result
        never disagrees with the individual calls.  :class:`GhsomDetector`
        overrides this wholesale with a true single-pass implementation.
        """
        scores = np.asarray(self.score_samples(X), dtype=float)
        predictions = alarm_decisions(scores)
        overridden = type(self).predict_category is not BaseAnomalyDetector.predict_category
        # Labeler-carrying detectors (the SOM/k-means baselines) fall back to
        # the default anomaly/normal labels when fitted without labels; derive
        # those directly from the scores we already have instead of paying
        # their predict_category override a second scoring pass for them.
        unlabeled = hasattr(self, "labeler") and getattr(self, "labeler") is None
        if overridden and not unlabeled:
            categories = self.predict_category(X)
        else:
            categories = ["anomaly" if flag else "normal" for flag in predictions]
        return DetectionResult(scores=scores, predictions=predictions, categories=categories)

    def _require_fitted(self, condition: bool) -> None:
        if not condition:
            raise NotFittedError(f"{type(self).__name__} must be fitted before use")


class GhsomDetector(BaseAnomalyDetector):
    """Network-traffic anomaly detector built on a :class:`~repro.core.ghsom.Ghsom`.

    The detector supports the two operating modes used in the paper's
    evaluation:

    * **one-class mode** (``fit`` without labels, typically on normal-only
      traffic): a record is anomalous when its distance to the best matching
      leaf unit exceeds the calibrated threshold;
    * **labelled mode** (``fit`` with labels on mixed traffic): leaf units are
      labelled by majority vote; a record is anomalous when it lands on an
      attack-labelled unit *or* when it exceeds the distance threshold of a
      normal-labelled unit (which catches novel attacks that resemble no
      training class).

    Parameters
    ----------
    config:
        GHSOM growth/training configuration.
    threshold_strategy:
        ``"per_unit"`` (default) or ``"global"``.
    threshold_kwargs:
        Extra arguments for the threshold strategy (``k``, ``percentile``...).
    labeling_strategy:
        Unit labelling rule, ``"majority"`` (default) or ``"purity"``.
    calibrate_on_normal_only:
        When labels are available, calibrate distance thresholds using only
        the normal training records (recommended: attack records otherwise
        inflate the thresholds of mixed units).
    random_state:
        Seed overriding ``config.random_state``.
    engine:
        Compute engine for the descent: ``"numpy"`` (byte-exact reference),
        ``"fused"``, ``"auto"``, or ``None`` for the library default — see
        :mod:`repro.core.kernels` and :meth:`set_engine`.
    """

    name = "ghsom"

    def __init__(
        self,
        config: Optional[GhsomConfig] = None,
        *,
        threshold_strategy: str = "per_unit",
        threshold_kwargs: Optional[Dict[str, object]] = None,
        labeling_strategy: str = "majority",
        calibrate_on_normal_only: bool = True,
        random_state: RandomState = None,
        engine: Optional[str] = None,
    ) -> None:
        self.config = config or GhsomConfig()
        self.threshold_strategy_name = threshold_strategy
        self.threshold_kwargs = dict(threshold_kwargs or {})
        self.labeling_strategy = labeling_strategy
        self.calibrate_on_normal_only = calibrate_on_normal_only
        self.random_state = random_state
        #: Compute-engine choice for every descent this detector runs;
        #: ``None`` defers to the library default (see :meth:`set_engine`).
        self._engine: Optional[str] = None if engine is None else kernels.check_engine(engine)
        self.labeler: Optional[UnitLabeler] = None
        self.threshold_: Optional[object] = None
        self._model: Optional[Ghsom] = None
        #: Deferred tree hydration hook: a v2 model artifact restores the
        #: compiled arrays eagerly and parks the (expensive) ``GhsomNode`` tree
        #: rebuild here; it runs only if ``model`` is actually accessed.
        self._model_loader: Optional[Callable[[], Ghsom]] = None
        #: Compiled snapshot serving in place of ``model.compile()`` — set when
        #: the detector was hydrated from flat arrays or switched to a non-default
        #: serving dtype; ``None`` means "compile from the fitted tree".
        self._compiled: Optional[CompiledGhsom] = None
        self._tables: Optional[_LeafTables] = None
        #: Sharded-serving configuration: ``(n_shards, backend, workers)`` when
        #: :meth:`set_sharding` enabled it, ``None`` for the unsharded engine.
        #: The spec survives refits — the engine itself is rebuilt lazily
        #: against the new compiled snapshot on the next scoring call.
        self._shard_spec: Optional[tuple] = None
        self._sharded = None  # the live ShardedGhsom engine, built lazily
        #: Subtree layout restored from a v2 artifact's shard manifest; lets
        #: :meth:`set_sharding` skip re-deriving the plan from the arrays.
        self._shard_manifest: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------ #
    @property
    def model(self) -> Optional[Ghsom]:
        """The fitted GHSOM tree, hydrating it from a loaded artifact on first use.

        Scoring never touches this: a detector loaded from a v2 artifact
        serves straight from its compiled arrays, and the Python node tree is
        rebuilt lazily only for consumers that genuinely need it (structure
        inspection, refitting workflows).
        """
        if self._model is None and self._model_loader is not None:
            loader, self._model_loader = self._model_loader, None
            self._model = loader()
        return self._model

    @model.setter
    def model(self, value: Optional[Ghsom]) -> None:
        self._model = value
        self._model_loader = None

    @property
    def tree_is_materialized(self) -> bool:
        """Whether the Python ``GhsomNode`` tree currently exists in memory.

        ``False`` for a freshly loaded v2 artifact (even after scoring): the
        serving path runs entirely on the compiled arrays.
        """
        return self._model is not None

    @property
    def is_fitted(self) -> bool:
        has_model = (
            self._model is not None
            or self._model_loader is not None
            or self._compiled is not None
        )
        return has_model and self.threshold_ is not None

    @property
    def is_labeled(self) -> bool:
        """Whether the detector was trained with class labels."""
        return self.labeler is not None

    @property
    def serving_dtype(self) -> np.dtype:
        """Arithmetic dtype of the serving path (``float64`` unless opted out)."""
        self._require_fitted(self.is_fitted)
        return self._compiled_model().dtype

    def set_serving_dtype(self, dtype) -> "GhsomDetector":
        """Switch the serving path to ``dtype`` (e.g. ``"float32"``) in place.

        Float32 serving halves codebook memory traffic at the cost of
        bit-exactness — see :meth:`CompiledGhsom.astype` for the tolerance
        contract.  ``float64`` restores the default, bit-exact path (for a
        detector whose only source is an already-narrowed snapshot, the tree
        is rehydrated to recover full precision).
        """
        self._require_fitted(self.is_fitted)
        requested = np.dtype(dtype)
        current = self._compiled_model()
        if requested == current.dtype:
            return self
        if current.dtype == np.dtype("float64"):
            # Narrowing from the exact source keeps the documented tolerance.
            self._compiled = current.astype(requested)
        elif requested == np.dtype("float64") and self.model is not None:
            # Upcasting a narrowed codebook cannot recover the lost bits;
            # recompile from the tree (the property access above hydrated a
            # lazily loaded one) instead.
            self._compiled = None
        else:
            self._compiled = current.astype(requested)
        self._tables = None
        self._close_sharded()  # rebuilt lazily against the re-cast snapshot
        return self

    # ------------------------------------------------------------------ #
    # compute engine
    # ------------------------------------------------------------------ #
    @property
    def engine(self) -> Optional[str]:
        """The configured compute engine, or ``None`` for the library default."""
        return self._engine

    def set_engine(self, engine: Optional[str]) -> "GhsomDetector":
        """Choose the descent engine: ``"numpy"``, ``"fused"``, ``"auto"`` or ``None``.

        ``"numpy"`` is the byte-exact reference (and the library default);
        ``"fused"`` runs the single-pass distance+argmin kernel from
        :mod:`repro.core.kernels` — same leaf assignments, distances within
        the documented kernel tolerance; ``"auto"`` uses the fused kernel
        when a provider is available and silently falls back otherwise;
        ``None`` defers to :func:`repro.core.kernels.get_default_engine`.

        Requesting ``"fused"`` on a fitted detector is *strict*: it raises
        :class:`~repro.exceptions.ConfigurationError` immediately when no
        kernel provider supports the model's metric/dtype, instead of
        silently serving slower.  The choice applies to the unsharded and
        sharded engines alike (a live sharded engine is rebuilt with the new
        setting on the next scoring call).
        """
        if engine is not None:
            kernels.check_engine(engine)
            if engine == "fused" and self.is_fitted:
                compiled = self._compiled_model()
                kernels.resolve_engine(
                    engine, metric=compiled.metric, dtype=compiled.dtype, strict=True
                )
        self._engine = engine
        self._close_sharded()  # shard engine fields are set at build time
        return self

    # ------------------------------------------------------------------ #
    # sharded serving
    # ------------------------------------------------------------------ #
    @property
    def sharding(self) -> Optional[Dict[str, object]]:
        """The active sharded-serving configuration, or ``None`` if unsharded."""
        if self._shard_spec is None:
            return None
        n_shards, backend, _ = self._shard_spec
        return {"n_shards": n_shards, "backend": backend.name, "workers": backend.workers}

    def set_sharding(
        self,
        n_shards: Optional[int],
        *,
        backend: object = "serial",
        workers: Optional[int] = None,
    ) -> "GhsomDetector":
        """Serve ``detect`` through K root-subtree shards (``None``/0 disables).

        The compiled model is partitioned by root-level BMU into ``n_shards``
        self-contained subtree shards executed on ``backend`` (``"serial"``,
        ``"thread"``, ``"process"``, or a :class:`~repro.serving.ShardBackend`
        instance); scores stay byte-identical to the unsharded float64 engine
        — see :mod:`repro.serving`.  The configuration survives refits: the
        engine is rebuilt against the new compiled snapshot on the next
        scoring call, which is what keeps a sharded
        :class:`~repro.streaming.OnlineDetector` sharded across drift-
        triggered refits.
        """
        from repro.serving.backends import make_backend

        self._close_sharded()
        if not n_shards:
            self._shard_spec = None
            return self
        if n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
        # Resolve the backend eagerly so a bad name fails here, not mid-batch.
        resolved = make_backend(backend, workers)
        self._shard_spec = (int(n_shards), resolved, None)
        return self

    def _close_sharded(self) -> None:
        if self._sharded is not None:
            self._sharded.close()
            self._sharded = None

    def _serving_engine(self):
        """The engine ``_score_arrays`` descends with: sharded or compiled.

        The sharded engine is rebuilt whenever the compiled snapshot it was
        sliced from is replaced (refit, dtype switch, artifact reload).
        """
        compiled = self._compiled_model()
        if self._shard_spec is None:
            return compiled
        if self._sharded is None or self._sharded.source is not compiled:
            from repro.serving.planner import plan_shards, subtrees_from_manifest
            from repro.serving.router import ShardedGhsom

            n_shards, backend, _ = self._shard_spec
            plan = None
            manifest = self._shard_manifest
            if manifest is not None and int(manifest.get("n_leaves", -1)) == compiled.n_leaves:
                plan = plan_shards(
                    compiled, n_shards, subtrees=subtrees_from_manifest(manifest)
                )
            tables = self._leaf_tables()
            self._close_sharded()
            self._sharded = ShardedGhsom.from_compiled(
                compiled,
                n_shards,
                backend=backend,
                plan=plan,
                thresholds=tables.thresholds,
                labels=tables.labels,
                is_attack=tables.is_attack,
                purity=tables.purity,
                engine=self._engine,
            )
        return self._sharded

    # ------------------------------------------------------------------ #
    def fit(self, X, y: Optional[Sequence[str]] = None) -> "GhsomDetector":
        """Train the GHSOM, label its leaves (if ``y`` given) and calibrate thresholds."""
        matrix = check_array_2d(X, "X", min_rows=2)
        labels = None
        if y is not None:
            labels = [str(label) for label in y]
            check_same_length(matrix, labels, "X", "y")
        self._tables = None
        self._compiled = None
        self._close_sharded()  # the spec survives; the engine rebuilds lazily
        self._shard_manifest = None  # layout of the previous tree, now stale
        self.model = Ghsom(self.config, random_state=self.random_state)
        self.model.fit(matrix)
        compiled = self.model.compile()
        leaf_index, distances = compiled.assign_arrays(matrix)
        leaf_keys = compiled.keys_of(leaf_index)

        if labels is not None:
            self.labeler = UnitLabeler(strategy=self.labeling_strategy)
            self.labeler.fit(leaf_keys, labels)
        else:
            self.labeler = None

        calibration_mask = np.ones(len(distances), dtype=bool)
        if labels is not None and self.calibrate_on_normal_only:
            normal_mask = np.array([label == "normal" for label in labels])
            if normal_mask.any():
                calibration_mask = normal_mask
        strategy = make_threshold_strategy(self.threshold_strategy_name, **self.threshold_kwargs)
        strategy.fit(
            distances[calibration_mask],
            [key for key, keep in zip(leaf_keys, calibration_mask) if keep],
        )
        self.threshold_ = strategy
        return self

    # ------------------------------------------------------------------ #
    def _compiled_model(self) -> CompiledGhsom:
        """The compiled snapshot the serving path runs on.

        A detector hydrated from a v2 artifact (or switched to a non-default
        serving dtype) serves from its stored arrays; a tree-backed detector
        compiles its fitted tree (cached per fit by ``Ghsom.compile``).
        """
        if self._compiled is not None:
            return self._compiled
        return self.model.compile()

    def _leaf_tables(self) -> _LeafTables:
        """Compiled leaf lookup tables (built lazily, e.g. after deserialization).

        Rebuilt whenever the compiled model changes, the threshold strategy /
        labeler instance is swapped, or either is refitted *in place* (their
        ``fit_version`` counters move), so sklearn-style recalibration takes
        effect on the next scoring call just as it did on the pre-compiled
        path.
        """
        compiled = self._compiled_model()
        if (
            self._tables is not None
            and self._tables.compiled is compiled
            and self._tables.threshold_source is self.threshold_
            and self._tables.threshold_version == self.threshold_.fit_version
            and self._tables.labeler_source is self.labeler
            and self._tables.labeler_version
            == (0 if self.labeler is None else self.labeler.fit_version)
        ):
            return self._tables
        self._tables = build_leaf_tables(compiled, self.threshold_, self.labeler)
        return self._tables

    def _score_arrays(self, X):
        """Shared vectorized front half of every scoring method.

        Returns ``(tables, leaf_index, ratios)`` where ``ratios`` are the
        threshold-normalised distances.  This is the *single*
        ``assign_arrays`` pass everything in :meth:`detect` derives from.
        """
        self._require_fitted(self.is_fitted)
        tables = self._leaf_tables()
        # The sharded engine (when configured) returns global leaf rows and
        # distances byte-identical to the compiled engine, so everything
        # downstream of this call is oblivious to the partitioning.  The
        # compute-engine choice rides along per call on the compiled engine;
        # the sharded engine carries it in its shard fields (set at build).
        serving = self._serving_engine()
        if isinstance(serving, CompiledGhsom):
            leaf_index, distances = serving.assign_arrays(X, engine=self._engine)
        else:
            leaf_index, distances = serving.assign_arrays(X)
        ratios = distances / tables.thresholds[leaf_index]
        return tables, leaf_index, ratios

    def detect(self, X) -> DetectionResult:
        """Scores, decisions, categories and leaf rows from **one** descent.

        A single :meth:`CompiledGhsom.assign_arrays` pass feeds every output:
        the serving path (CLI ``detect``, :class:`OnlineDetector`, the
        evaluation harness) costs one tree descent per batch instead of the
        three that separate ``predict`` / ``score_samples`` /
        ``predict_category`` calls would pay.  Each individual method is the
        corresponding field of this result.
        """
        tables, leaf_index, ratios = self._score_arrays(X)
        if tables.is_attack is None:
            scores = ratios
        else:
            scores = _fold_attack_labels(
                ratios, tables.is_attack[leaf_index], tables.purity[leaf_index]
            )
        predictions = alarm_decisions(scores)
        if tables.labels is None:
            categories = ["anomaly" if flag else "normal" for flag in predictions]
        else:
            # Fancy indexing allocates a fresh array, safe for in-place masking
            # once all label masks are computed up front.
            labels = tables.labels[leaf_index]
            over = ratios > 1.0
            unlabeled = labels == UNLABELED
            was_normal = labels == "normal"
            labels[unlabeled & over] = "unknown"
            labels[unlabeled & ~over] = "normal"
            labels[was_normal & over] = "unknown"
            categories = labels.tolist()
        return DetectionResult(
            scores=scores,
            predictions=predictions,
            categories=categories,
            leaf_index=leaf_index,
        )

    def score_samples(self, X) -> np.ndarray:
        """Threshold-normalised anomaly scores.

        In one-class mode the score is ``distance / leaf threshold``; in
        labelled mode records on attack-labelled leaves additionally receive a
        score above 1.0 graded by the leaf's purity (see
        :func:`combine_label_and_distance_scores`).  In both modes
        ``score > 1.0`` is exactly the alarm condition used by :meth:`predict`.
        """
        tables, leaf_index, ratios = self._score_arrays(X)
        if tables.is_attack is None:
            return ratios
        return _fold_attack_labels(
            ratios, tables.is_attack[leaf_index], tables.purity[leaf_index]
        )

    def predict(self, X) -> np.ndarray:
        """Binary anomaly decisions.

        In labelled mode a record alarms when it lands on an attack-labelled
        leaf or exceeds its leaf's distance threshold; in one-class mode only
        the distance criterion applies.  Both are captured by the combined
        score exceeding 1.0.
        """
        return alarm_decisions(self.score_samples(X))

    def predict_category(self, X) -> List[str]:
        """Per-record class labels (requires labelled training data).

        Records that land on unlabeled leaves, or that exceed the distance
        threshold of a normal-labelled leaf, are reported as ``"unknown"`` —
        they are anomalous but resemble no training class.  Equal to
        ``detect(X).categories``.
        """
        return self.detect(X).categories

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def topology_summary(self) -> Dict[str, object]:
        """Structural statistics of the underlying GHSOM (Table 5)."""
        self._require_fitted(self.is_fitted)
        return self.model.topology_summary()

    def leaf_label_distribution(self) -> Dict[str, int]:
        """Number of leaves per assigned class (labelled mode only)."""
        self._require_fitted(self.is_fitted)
        if self.labeler is None:
            raise ConfigurationError("the detector was trained without labels")
        return self.labeler.class_distribution()
