"""Anomaly detectors: the common interface and the GHSOM detector.

Every detector in this library (the GHSOM detector here and the baselines in
:mod:`repro.baselines`) follows the same small contract:

``fit(X, y=None)``
    Train on a numeric feature matrix.  ``y`` is an optional vector of string
    class labels (categories or named attacks).  When labels are given the
    detector may additionally learn to classify; when they are absent it
    operates purely as a one-class / novelty detector.
``score_samples(X)``
    Continuous anomaly scores, larger = more anomalous.  Scores are
    *threshold-normalised*: a score of 1.0 sits exactly at the calibrated
    alarm threshold, so ``score > 1`` and ``predict(X) == 1`` agree for
    unlabeled data.
``predict(X)``
    Binary decisions: 1 for anomaly, 0 for normal.
``predict_category(X)``
    Best-effort class labels (only meaningful when ``fit`` saw labels).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.compiled import CompiledGhsom
from repro.core.config import GhsomConfig
from repro.core.ghsom import Ghsom
from repro.core.labeling import UNLABELED, UnitLabeler
from repro.core.thresholds import make_threshold_strategy
from repro.exceptions import ConfigurationError, NotFittedError
from repro.utils.rng import RandomState
from repro.utils.validation import check_array_2d, check_same_length


def combine_label_and_distance_scores(
    ratios: np.ndarray,
    leaf_keys: Sequence,
    labeler: Optional[UnitLabeler],
) -> np.ndarray:
    """Fold unit labels into distance-based scores for labelled detectors.

    Records landing on attack-labelled units receive a score above 1.0 (they
    alarm regardless of how close they sit to the unit's weight vector),
    graded by the unit's label purity so purer attack units rank higher;
    records on normal or unlabeled units keep their threshold-normalised
    distance ratio.  This keeps ``predict(X) == 1`` equivalent to
    ``score_samples(X) > 1`` in both operating modes and makes ROC curves of
    labelled detectors meaningful.
    """
    ratios = np.asarray(ratios, dtype=float)
    if labeler is None or ratios.size == 0:
        return ratios
    # Resolve label info once per *distinct* leaf, then broadcast to samples
    # with integer indexing — batches revisit the same handful of leaves, so
    # this replaces n ``info_of`` calls with one per unique key.
    key_rows: Dict[object, int] = {}
    sample_rows = np.empty(len(leaf_keys), dtype=np.intp)
    for index, key in enumerate(leaf_keys):
        row = key_rows.setdefault(key, len(key_rows))
        sample_rows[index] = row
    is_attack = np.zeros(len(key_rows), dtype=bool)
    purity = np.zeros(len(key_rows), dtype=float)
    for key, row in key_rows.items():
        info = labeler.info_of(key)
        if _is_attack_label(info.label):
            is_attack[row] = True
            purity[row] = info.purity
    return _fold_attack_labels(ratios, is_attack[sample_rows], purity[sample_rows])


def _is_attack_label(label: str) -> bool:
    """Whether a unit label triggers the above-threshold score folding.

    Single source of truth for the predicate, shared by the leaf-key path
    above (used by the baselines) and the detector's compiled leaf tables —
    keeping the two scoring paths from silently diverging.
    """
    return label not in ("normal", UNLABELED)


def _fold_attack_labels(
    ratios: np.ndarray, attack_mask: np.ndarray, purity: np.ndarray
) -> np.ndarray:
    """Core of :func:`combine_label_and_distance_scores` on pre-resolved arrays."""
    scores = ratios.copy()
    if attack_mask.any():
        scores[attack_mask] = (
            1.0 + purity[attack_mask] + 0.01 * np.minimum(ratios[attack_mask], 10.0)
        )
    return scores


@dataclass(frozen=True)
class _LeafTables:
    """Per-leaf lookup arrays aligned with a compiled GHSOM's leaf table.

    Built once per fitted detector; every scoring call then reduces to
    ``assign_arrays`` plus integer fancy-indexing into these arrays.
    """

    compiled: CompiledGhsom
    threshold_source: object  # the strategy instance the table was built from
    threshold_version: int  # its fit_version at build time (in-place refit check)
    labeler_source: Optional[object]  # the labeler instance the table was built from
    labeler_version: int  # its fit_version at build time
    thresholds: np.ndarray  # (L,) calibrated distance threshold per leaf
    labels: Optional[np.ndarray]  # (L,) object array of unit labels
    is_attack: Optional[np.ndarray]  # (L,) label not in {normal, unlabeled}
    purity: Optional[np.ndarray]  # (L,) label purity (attack leaves only)


class BaseAnomalyDetector(abc.ABC):
    """Abstract base class for all anomaly detectors in this library."""

    #: Human-readable detector name used in evaluation tables.
    name: str = "detector"

    @abc.abstractmethod
    def fit(self, X, y: Optional[Sequence[str]] = None) -> "BaseAnomalyDetector":
        """Train on feature matrix ``X`` with optional string labels ``y``."""

    @abc.abstractmethod
    def score_samples(self, X) -> np.ndarray:
        """Continuous anomaly scores (larger = more anomalous, 1.0 = at threshold)."""

    def predict(self, X) -> np.ndarray:
        """Binary anomaly decisions derived from the normalised scores."""
        return (self.score_samples(X) > 1.0).astype(int)

    def predict_category(self, X) -> List[str]:
        """Class labels per sample; defaults to anomaly/normal if no labels were seen."""
        return ["anomaly" if flag else "normal" for flag in self.predict(X)]

    def _require_fitted(self, condition: bool) -> None:
        if not condition:
            raise NotFittedError(f"{type(self).__name__} must be fitted before use")


class GhsomDetector(BaseAnomalyDetector):
    """Network-traffic anomaly detector built on a :class:`~repro.core.ghsom.Ghsom`.

    The detector supports the two operating modes used in the paper's
    evaluation:

    * **one-class mode** (``fit`` without labels, typically on normal-only
      traffic): a record is anomalous when its distance to the best matching
      leaf unit exceeds the calibrated threshold;
    * **labelled mode** (``fit`` with labels on mixed traffic): leaf units are
      labelled by majority vote; a record is anomalous when it lands on an
      attack-labelled unit *or* when it exceeds the distance threshold of a
      normal-labelled unit (which catches novel attacks that resemble no
      training class).

    Parameters
    ----------
    config:
        GHSOM growth/training configuration.
    threshold_strategy:
        ``"per_unit"`` (default) or ``"global"``.
    threshold_kwargs:
        Extra arguments for the threshold strategy (``k``, ``percentile``...).
    labeling_strategy:
        Unit labelling rule, ``"majority"`` (default) or ``"purity"``.
    calibrate_on_normal_only:
        When labels are available, calibrate distance thresholds using only
        the normal training records (recommended: attack records otherwise
        inflate the thresholds of mixed units).
    random_state:
        Seed overriding ``config.random_state``.
    """

    name = "ghsom"

    def __init__(
        self,
        config: Optional[GhsomConfig] = None,
        *,
        threshold_strategy: str = "per_unit",
        threshold_kwargs: Optional[Dict[str, object]] = None,
        labeling_strategy: str = "majority",
        calibrate_on_normal_only: bool = True,
        random_state: RandomState = None,
    ) -> None:
        self.config = config or GhsomConfig()
        self.threshold_strategy_name = threshold_strategy
        self.threshold_kwargs = dict(threshold_kwargs or {})
        self.labeling_strategy = labeling_strategy
        self.calibrate_on_normal_only = calibrate_on_normal_only
        self.random_state = random_state
        self.model: Optional[Ghsom] = None
        self.labeler: Optional[UnitLabeler] = None
        self.threshold_: Optional[object] = None
        self._tables: Optional[_LeafTables] = None

    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        return self.model is not None and self.threshold_ is not None

    @property
    def is_labeled(self) -> bool:
        """Whether the detector was trained with class labels."""
        return self.labeler is not None

    # ------------------------------------------------------------------ #
    def fit(self, X, y: Optional[Sequence[str]] = None) -> "GhsomDetector":
        """Train the GHSOM, label its leaves (if ``y`` given) and calibrate thresholds."""
        matrix = check_array_2d(X, "X", min_rows=2)
        labels = None
        if y is not None:
            labels = [str(label) for label in y]
            check_same_length(matrix, labels, "X", "y")
        self._tables = None
        self.model = Ghsom(self.config, random_state=self.random_state)
        self.model.fit(matrix)
        compiled = self.model.compile()
        leaf_index, distances = compiled.assign_arrays(matrix)
        leaf_keys = compiled.keys_of(leaf_index)

        if labels is not None:
            self.labeler = UnitLabeler(strategy=self.labeling_strategy)
            self.labeler.fit(leaf_keys, labels)
        else:
            self.labeler = None

        calibration_mask = np.ones(len(distances), dtype=bool)
        if labels is not None and self.calibrate_on_normal_only:
            normal_mask = np.array([label == "normal" for label in labels])
            if normal_mask.any():
                calibration_mask = normal_mask
        strategy = make_threshold_strategy(self.threshold_strategy_name, **self.threshold_kwargs)
        strategy.fit(
            distances[calibration_mask],
            [key for key, keep in zip(leaf_keys, calibration_mask) if keep],
        )
        self.threshold_ = strategy
        return self

    # ------------------------------------------------------------------ #
    def _leaf_tables(self) -> _LeafTables:
        """Compiled leaf lookup tables (built lazily, e.g. after deserialization).

        Rebuilt whenever the compiled model changes, the threshold strategy /
        labeler instance is swapped, or either is refitted *in place* (their
        ``fit_version`` counters move), so sklearn-style recalibration takes
        effect on the next scoring call just as it did on the pre-compiled
        path.
        """
        compiled = self.model.compile()
        if (
            self._tables is not None
            and self._tables.compiled is compiled
            and self._tables.threshold_source is self.threshold_
            and self._tables.threshold_version == getattr(self.threshold_, "fit_version", 0)
            and self._tables.labeler_source is self.labeler
            and self._tables.labeler_version == getattr(self.labeler, "fit_version", 0)
        ):
            return self._tables
        thresholds = compiled.leaf_lookup(self.threshold_.threshold_for, dtype=float)
        labels = is_attack = purity = None
        if self.labeler is not None:
            infos = [self.labeler.info_of(key) for key in compiled.leaf_keys]
            labels = np.array([info.label for info in infos], dtype=object)
            is_attack = np.array([_is_attack_label(info.label) for info in infos], dtype=bool)
            purity = np.array(
                [info.purity if flag else 0.0 for info, flag in zip(infos, is_attack)],
                dtype=float,
            )
        self._tables = _LeafTables(
            compiled=compiled,
            threshold_source=self.threshold_,
            threshold_version=getattr(self.threshold_, "fit_version", 0),
            labeler_source=self.labeler,
            labeler_version=getattr(self.labeler, "fit_version", 0),
            thresholds=thresholds,
            labels=labels,
            is_attack=is_attack,
            purity=purity,
        )
        return self._tables

    def _score_arrays(self, X):
        """Shared vectorized front half of every scoring method.

        Returns ``(tables, leaf_index, ratios)`` where ``ratios`` are the
        threshold-normalised distances.
        """
        self._require_fitted(self.is_fitted)
        tables = self._leaf_tables()
        leaf_index, distances = self.model.assign_arrays(X)
        ratios = distances / tables.thresholds[leaf_index]
        return tables, leaf_index, ratios

    def score_samples(self, X) -> np.ndarray:
        """Threshold-normalised anomaly scores.

        In one-class mode the score is ``distance / leaf threshold``; in
        labelled mode records on attack-labelled leaves additionally receive a
        score above 1.0 graded by the leaf's purity (see
        :func:`combine_label_and_distance_scores`).  In both modes
        ``score > 1.0`` is exactly the alarm condition used by :meth:`predict`.
        """
        tables, leaf_index, ratios = self._score_arrays(X)
        if tables.is_attack is None:
            return ratios
        return _fold_attack_labels(
            ratios, tables.is_attack[leaf_index], tables.purity[leaf_index]
        )

    def predict(self, X) -> np.ndarray:
        """Binary anomaly decisions.

        In labelled mode a record alarms when it lands on an attack-labelled
        leaf or exceeds its leaf's distance threshold; in one-class mode only
        the distance criterion applies.  Both are captured by the combined
        score exceeding 1.0.
        """
        return (self.score_samples(X) > 1.0).astype(int)

    def predict_category(self, X) -> List[str]:
        """Per-record class labels (requires labelled training data).

        Records that land on unlabeled leaves, or that exceed the distance
        threshold of a normal-labelled leaf, are reported as ``"unknown"`` —
        they are anomalous but resemble no training class.
        """
        if self.labeler is None:
            flags = self.predict(X)
            return ["anomaly" if flag else "normal" for flag in flags]
        tables, leaf_index, ratios = self._score_arrays(X)
        # Fancy indexing allocates a fresh array, safe for in-place masking
        # once all label masks are computed up front.
        categories = tables.labels[leaf_index]
        over = ratios > 1.0
        unlabeled = categories == UNLABELED
        was_normal = categories == "normal"
        categories[unlabeled & over] = "unknown"
        categories[unlabeled & ~over] = "normal"
        categories[was_normal & over] = "unknown"
        return categories.tolist()

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def topology_summary(self) -> Dict[str, object]:
        """Structural statistics of the underlying GHSOM (Table 5)."""
        self._require_fitted(self.is_fitted)
        return self.model.topology_summary()

    def leaf_label_distribution(self) -> Dict[str, int]:
        """Number of leaves per assigned class (labelled mode only)."""
        self._require_fitted(self.is_fitted)
        if self.labeler is None:
            raise ConfigurationError("the detector was trained without labels")
        return self.labeler.class_distribution()
