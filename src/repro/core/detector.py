"""Anomaly detectors: the common interface and the GHSOM detector.

Every detector in this library (the GHSOM detector here and the baselines in
:mod:`repro.baselines`) follows the same small contract:

``fit(X, y=None)``
    Train on a numeric feature matrix.  ``y`` is an optional vector of string
    class labels (categories or named attacks).  When labels are given the
    detector may additionally learn to classify; when they are absent it
    operates purely as a one-class / novelty detector.
``score_samples(X)``
    Continuous anomaly scores, larger = more anomalous.  Scores are
    *threshold-normalised*: a score of 1.0 sits exactly at the calibrated
    alarm threshold, so ``score > 1`` and ``predict(X) == 1`` agree for
    unlabeled data.
``predict(X)``
    Binary decisions: 1 for anomaly, 0 for normal.
``predict_category(X)``
    Best-effort class labels (only meaningful when ``fit`` saw labels).
``detect(X)``
    All of the above in one :class:`DetectionResult`, computed from a single
    scoring pass — the serving entry point (the CLI, the streaming wrapper and
    the evaluation harness all go through it).
"""

from __future__ import annotations

import abc
import warnings
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core import kernels
from repro.core.compiled import CompiledGhsom
from repro.core.config import GhsomConfig
from repro.core.ghsom import Ghsom
from repro.core.labeling import UNLABELED, UnitLabeler
from repro.core.thresholds import make_threshold_strategy
from repro.exceptions import ConfigurationError, NotFittedError
from repro.utils.rng import RandomState
from repro.utils.validation import check_array_2d, check_same_length

if TYPE_CHECKING:  # import cycle: repro.serving imports repro.core at runtime
    from repro.serving.config import ServingConfig, ServingPlan

#: Sentinel for "the compiled snapshot does not change" in the atomic
#: configure path (``None`` there means "recompile from the tree").
_UNCHANGED = object()


#: Nominal alarm threshold on the normalised score scale: a score of exactly
#: 1.0 sits *at* the calibrated threshold and does **not** alarm.
ALARM_THRESHOLD = 1.0


def alarm_decisions(scores, threshold: float = ALARM_THRESHOLD) -> np.ndarray:
    """Binary alarm decisions from threshold-normalised scores.

    The single source of truth for the decision rule: a record alarms only
    when its score is *strictly above* the threshold.  Every decision path in
    the library — batch ``predict``, the single-pass ``detect``, and the
    streaming wrapper's adaptive rule (where ``threshold`` is the effective
    scale) — goes through this function, so a score landing exactly on the
    boundary receives the same verdict everywhere.
    """
    return (np.asarray(scores, dtype=float) > float(threshold)).astype(int)


@dataclass(frozen=True)
class DetectionResult:
    """Everything a serving consumer needs about one scored batch.

    Produced by :meth:`BaseAnomalyDetector.detect` so that callers needing
    scores *and* decisions *and* class labels (the CLI ``detect`` command, the
    evaluation harness, the streaming wrapper) pay for one scoring pass
    instead of one per method call.

    Attributes
    ----------
    scores:
        Threshold-normalised anomaly scores (1.0 = at the alarm threshold).
    predictions:
        Binary decisions, 1 for anomaly — always ``(scores > 1.0)``.
    categories:
        Best-effort class label per record.
    leaf_index:
        Compiled leaf-table row per record for detectors with a leaf topology
        (:class:`GhsomDetector`); ``None`` for detectors without one.
    stats:
        Per-batch serving observability
        (:class:`~repro.serving.config.ServingStats`: stage timings plus the
        resolved-plan provenance) for detectors that instrument their serving
        path; ``None`` for the baselines.
    """

    scores: np.ndarray
    predictions: np.ndarray
    categories: List[str]
    leaf_index: Optional[np.ndarray] = None
    stats: Optional[object] = None

    def __len__(self) -> int:
        return int(self.scores.shape[0])


def combine_label_and_distance_scores(
    ratios: np.ndarray,
    leaf_keys: Sequence,
    labeler: Optional[UnitLabeler],
) -> np.ndarray:
    """Fold unit labels into distance-based scores for labelled detectors.

    Records landing on attack-labelled units receive a score above 1.0 (they
    alarm regardless of how close they sit to the unit's weight vector),
    graded by the unit's label purity so purer attack units rank higher;
    records on normal or unlabeled units keep their threshold-normalised
    distance ratio.  This keeps ``predict(X) == 1`` equivalent to
    ``score_samples(X) > 1`` in both operating modes and makes ROC curves of
    labelled detectors meaningful.
    """
    ratios = np.asarray(ratios, dtype=float)
    if labeler is None or ratios.size == 0:
        return ratios
    # Resolve label info once per *distinct* leaf, then broadcast to samples
    # with integer indexing — batches revisit the same handful of leaves, so
    # this replaces n ``info_of`` calls with one per unique key.
    key_rows: Dict[object, int] = {}
    sample_rows = np.empty(len(leaf_keys), dtype=np.intp)
    for index, key in enumerate(leaf_keys):
        row = key_rows.setdefault(key, len(key_rows))
        sample_rows[index] = row
    is_attack = np.zeros(len(key_rows), dtype=bool)
    purity = np.zeros(len(key_rows), dtype=float)
    for key, row in key_rows.items():
        info = labeler.info_of(key)
        if _is_attack_label(info.label):
            is_attack[row] = True
            purity[row] = info.purity
    return _fold_attack_labels(ratios, is_attack[sample_rows], purity[sample_rows])


def _is_attack_label(label: str) -> bool:
    """Whether a unit label triggers the above-threshold score folding.

    Single source of truth for the predicate, shared by the leaf-key path
    above (used by the baselines) and the detector's compiled leaf tables —
    keeping the two scoring paths from silently diverging.
    """
    return label not in ("normal", UNLABELED)


def _fold_attack_labels(
    ratios: np.ndarray, attack_mask: np.ndarray, purity: np.ndarray
) -> np.ndarray:
    """Core of :func:`combine_label_and_distance_scores` on pre-resolved arrays."""
    scores = ratios.copy()
    if attack_mask.any():
        scores[attack_mask] = (
            1.0 + purity[attack_mask] + 0.01 * np.minimum(ratios[attack_mask], 10.0)
        )
    return scores


@dataclass(frozen=True)
class _LeafTables:
    """Per-leaf lookup arrays aligned with a compiled GHSOM's leaf table.

    Built once per fitted detector; every scoring call then reduces to
    ``assign_arrays`` plus integer fancy-indexing into these arrays.
    """

    compiled: CompiledGhsom
    threshold_source: object  # the strategy instance the table was built from
    threshold_version: int  # its fit_version at build time (in-place refit check)
    labeler_source: Optional[object]  # the labeler instance the table was built from
    labeler_version: int  # its fit_version at build time
    thresholds: np.ndarray  # (L,) calibrated distance threshold per leaf
    labels: Optional[np.ndarray]  # (L,) object array of unit labels
    is_attack: Optional[np.ndarray]  # (L,) label not in {normal, unlabeled}
    purity: Optional[np.ndarray]  # (L,) label purity (attack leaves only)


def build_leaf_tables(
    compiled: CompiledGhsom,
    threshold_strategy,
    labeler: Optional[UnitLabeler],
) -> _LeafTables:
    """Materialise the per-leaf scoring tables for a compiled model.

    Called by the detector whenever its cached tables are stale; the
    serialization layer stores the resulting arrays in v2 artifacts so a
    loaded detector skips even this (cheap) per-leaf evaluation.
    """
    thresholds = compiled.leaf_lookup(threshold_strategy.threshold_for, dtype=float)
    labels = is_attack = purity = None
    if labeler is not None:
        infos = [labeler.info_of(key) for key in compiled.leaf_keys]
        labels = np.array([info.label for info in infos], dtype=object)
        is_attack = np.array([_is_attack_label(info.label) for info in infos], dtype=bool)
        purity = np.array(
            [info.purity if flag else 0.0 for info, flag in zip(infos, is_attack, strict=True)],
            dtype=float,
        )
    return _LeafTables(
        compiled=compiled,
        threshold_source=threshold_strategy,
        threshold_version=threshold_strategy.fit_version,
        labeler_source=labeler,
        labeler_version=0 if labeler is None else labeler.fit_version,
        thresholds=thresholds,
        labels=labels,
        is_attack=is_attack,
        purity=purity,
    )


def restore_leaf_tables(
    compiled: CompiledGhsom,
    threshold_strategy,
    labeler: Optional[UnitLabeler],
    *,
    thresholds: np.ndarray,
    labels: Optional[np.ndarray] = None,
    is_attack: Optional[np.ndarray] = None,
    purity: Optional[np.ndarray] = None,
) -> _LeafTables:
    """Rebuild leaf tables from arrays stored in a v2 model artifact.

    The tables are pinned to the freshly deserialized strategy / labeler
    objects at their current ``fit_version``, so any later in-place refit
    invalidates them exactly as it would invalidate live-built tables.
    """
    return _LeafTables(
        compiled=compiled,
        threshold_source=threshold_strategy,
        threshold_version=threshold_strategy.fit_version,
        labeler_source=labeler,
        labeler_version=0 if labeler is None else labeler.fit_version,
        thresholds=np.asarray(thresholds, dtype=float),
        labels=None if labels is None else np.asarray(labels, dtype=object),
        is_attack=None if is_attack is None else np.asarray(is_attack, dtype=bool),
        purity=None if purity is None else np.asarray(purity, dtype=float),
    )


class BaseAnomalyDetector(abc.ABC):
    """Abstract base class for all anomaly detectors in this library."""

    #: Human-readable detector name used in evaluation tables.
    name: str = "detector"

    @abc.abstractmethod
    def fit(self, X, y: Optional[Sequence[str]] = None) -> "BaseAnomalyDetector":
        """Train on feature matrix ``X`` with optional string labels ``y``."""

    @abc.abstractmethod
    def score_samples(self, X) -> np.ndarray:
        """Continuous anomaly scores (larger = more anomalous, 1.0 = at threshold)."""

    def predict(self, X) -> np.ndarray:
        """Binary anomaly decisions derived from the normalised scores."""
        return alarm_decisions(self.score_samples(X))

    def predict_category(self, X) -> List[str]:
        """Class labels per sample; defaults to anomaly/normal if no labels were seen."""
        return ["anomaly" if flag else "normal" for flag in self.predict(X)]

    def detect(self, X) -> DetectionResult:
        """Scores, decisions and categories from one scoring pass.

        The base implementation scores once and derives the decisions from the
        scores; detectors whose ``predict_category`` carries real class
        information (an overridden method) are routed through it so the result
        never disagrees with the individual calls.  :class:`GhsomDetector`
        overrides this wholesale with a true single-pass implementation.
        """
        scores = np.asarray(self.score_samples(X), dtype=float)
        predictions = alarm_decisions(scores)
        overridden = type(self).predict_category is not BaseAnomalyDetector.predict_category
        # Labeler-carrying detectors (the SOM/k-means baselines) fall back to
        # the default anomaly/normal labels when fitted without labels; derive
        # those directly from the scores we already have instead of paying
        # their predict_category override a second scoring pass for them.
        unlabeled = hasattr(self, "labeler") and getattr(self, "labeler") is None
        if overridden and not unlabeled:
            categories = self.predict_category(X)
        else:
            categories = ["anomaly" if flag else "normal" for flag in predictions]
        return DetectionResult(scores=scores, predictions=predictions, categories=categories)

    def _require_fitted(self, condition: bool) -> None:
        if not condition:
            raise NotFittedError(f"{type(self).__name__} must be fitted before use")


class GhsomDetector(BaseAnomalyDetector):
    """Network-traffic anomaly detector built on a :class:`~repro.core.ghsom.Ghsom`.

    The detector supports the two operating modes used in the paper's
    evaluation:

    * **one-class mode** (``fit`` without labels, typically on normal-only
      traffic): a record is anomalous when its distance to the best matching
      leaf unit exceeds the calibrated threshold;
    * **labelled mode** (``fit`` with labels on mixed traffic): leaf units are
      labelled by majority vote; a record is anomalous when it lands on an
      attack-labelled unit *or* when it exceeds the distance threshold of a
      normal-labelled unit (which catches novel attacks that resemble no
      training class).

    Parameters
    ----------
    config:
        GHSOM growth/training configuration.
    threshold_strategy:
        ``"per_unit"`` (default) or ``"global"``.
    threshold_kwargs:
        Extra arguments for the threshold strategy (``k``, ``percentile``...).
    labeling_strategy:
        Unit labelling rule, ``"majority"`` (default) or ``"purity"``.
    calibrate_on_normal_only:
        When labels are available, calibrate distance thresholds using only
        the normal training records (recommended: attack records otherwise
        inflate the thresholds of mixed units).
    random_state:
        Seed overriding ``config.random_state``.
    serving:
        A full :class:`~repro.serving.config.ServingConfig` describing how
        the detector serves (dtype, engine, sharding, artifact options) —
        the declarative equivalent of calling :meth:`configure` right after
        construction.
    engine:
        Legacy shorthand for ``serving=ServingConfig(engine=...)``: the
        compute engine for the descent — ``"numpy"`` (byte-exact reference),
        ``"fused"``, ``"auto"``, or ``None`` for the library default — see
        :mod:`repro.core.kernels`.  Mutually exclusive with ``serving``.
    """

    name = "ghsom"

    def __init__(
        self,
        config: Optional[GhsomConfig] = None,
        *,
        threshold_strategy: str = "per_unit",
        threshold_kwargs: Optional[Dict[str, object]] = None,
        labeling_strategy: str = "majority",
        calibrate_on_normal_only: bool = True,
        random_state: RandomState = None,
        serving: Optional["ServingConfig"] = None,
        engine: Optional[str] = None,
    ) -> None:
        from repro.serving.config import ServingConfig

        if serving is not None and engine is not None:
            raise ConfigurationError(
                "pass the engine inside the ServingConfig (serving=) "
                "instead of combining it with the legacy engine= shorthand"
            )
        self.config = config or GhsomConfig()
        self.threshold_strategy_name = threshold_strategy
        self.threshold_kwargs = dict(threshold_kwargs or {})
        self.labeling_strategy = labeling_strategy
        self.calibrate_on_normal_only = calibrate_on_normal_only
        self.random_state = random_state
        #: Compute-engine choice for every descent this detector runs;
        #: ``None`` defers to the library default.  Mirrors
        #: ``self._serving.engine`` (kept as a plain attribute because the
        #: hot path reads it per batch).
        self._engine: Optional[str] = None
        #: The declarative serving configuration; :meth:`configure` is the
        #: single mutation path (the legacy setters are shims over it).
        self._serving: "ServingConfig" = ServingConfig()
        self._plan: Optional["ServingPlan"] = None  # cached resolved plan
        self.labeler: Optional[UnitLabeler] = None
        self.threshold_: Optional[object] = None
        self._model: Optional[Ghsom] = None
        #: Deferred tree hydration hook: a v2 model artifact restores the
        #: compiled arrays eagerly and parks the (expensive) ``GhsomNode`` tree
        #: rebuild here; it runs only if ``model`` is actually accessed.
        self._model_loader: Optional[Callable[[], Ghsom]] = None
        #: Compiled snapshot serving in place of ``model.compile()`` — set when
        #: the detector was hydrated from flat arrays or switched to a non-default
        #: serving dtype; ``None`` means "compile from the fitted tree".
        self._compiled: Optional[CompiledGhsom] = None
        self._tables: Optional[_LeafTables] = None
        #: Sharded-serving configuration: ``(n_shards, backend, workers)`` when
        #: :meth:`set_sharding` enabled it, ``None`` for the unsharded engine.
        #: The spec survives refits — the engine itself is rebuilt lazily
        #: against the new compiled snapshot on the next scoring call.
        self._shard_spec: Optional[tuple] = None
        self._sharded = None  # the live ShardedGhsom engine, built lazily
        #: Subtree layout restored from a v2 artifact's shard manifest; lets
        #: the sharded engine skip re-deriving the plan from the arrays.
        self._shard_manifest: Optional[Dict[str, object]] = None
        self._apply_serving(serving if serving is not None else ServingConfig(engine=engine))

    # ------------------------------------------------------------------ #
    @property
    def model(self) -> Optional[Ghsom]:
        """The fitted GHSOM tree, hydrating it from a loaded artifact on first use.

        Scoring never touches this: a detector loaded from a v2 artifact
        serves straight from its compiled arrays, and the Python node tree is
        rebuilt lazily only for consumers that genuinely need it (structure
        inspection, refitting workflows).
        """
        if self._model is None and self._model_loader is not None:
            loader, self._model_loader = self._model_loader, None
            self._model = loader()
        return self._model

    @model.setter
    def model(self, value: Optional[Ghsom]) -> None:
        self._model = value
        self._model_loader = None

    @property
    def tree_is_materialized(self) -> bool:
        """Whether the Python ``GhsomNode`` tree currently exists in memory.

        ``False`` for a freshly loaded v2 artifact (even after scoring): the
        serving path runs entirely on the compiled arrays.
        """
        return self._model is not None

    @property
    def is_fitted(self) -> bool:
        has_model = (
            self._model is not None
            or self._model_loader is not None
            or self._compiled is not None
        )
        return has_model and self.threshold_ is not None

    @property
    def is_labeled(self) -> bool:
        """Whether the detector was trained with class labels."""
        return self.labeler is not None

    @property
    def serving_dtype(self) -> np.dtype:
        """Arithmetic dtype of the serving path (``float64`` unless opted out)."""
        self._require_fitted(self.is_fitted)
        return self._compiled_model().dtype

    # ------------------------------------------------------------------ #
    # serving configuration (the single mutation path)
    # ------------------------------------------------------------------ #
    @property
    def serving_config(self) -> "ServingConfig":
        """The declarative :class:`~repro.serving.config.ServingConfig` in force."""
        return self._serving

    def configure(self, config: "ServingConfig") -> "GhsomDetector":
        """Apply a full serving configuration atomically.

        The single mutation path for every serving knob — dtype, compute
        engine, fused-provider override, sharding, artifact options.  The
        combined state is validated and resolved *before* anything mutates,
        so a rejected config leaves the detector exactly as it was, and the
        result never depends on the order knobs were set in (the bug the
        legacy per-knob setters had).  Resolution is strict on a fitted
        detector: a ``"fused"`` engine request with no provider for the
        model's metric/dtype raises instead of silently serving slower.
        """
        return self._apply_serving(config)

    def resolved_plan(self) -> "ServingPlan":
        """The :class:`~repro.serving.config.ServingPlan` scoring runs under.

        Resolved non-strictly (the per-batch hot-path policy: an
        unprovidable fused request degrades to numpy) against the fitted
        model's metric, and cached until the config or the model changes.
        """
        if self._plan is None:
            metric = self._compiled_model().metric if self.is_fitted else "euclidean"
            self._plan = self._serving.resolve(metric=metric, strict=False)
        return self._plan

    def _apply_serving(self, config: "ServingConfig", *, backend=None) -> "GhsomDetector":
        """Validate/resolve ``config`` against the current state, then commit.

        ``backend`` carries an already-constructed :class:`ShardBackend`
        instance from the legacy ``set_sharding`` shim (instances have no
        declarative form); when ``None`` and the plan is sharded, the live
        backend is reused if the sharding spec is unchanged, otherwise
        :meth:`ServingPlan.build_backend` constructs a fresh one.
        """
        from repro.serving.config import ServingConfig

        if not isinstance(config, ServingConfig):
            raise ConfigurationError(
                f"configure() needs a ServingConfig, got {type(config).__name__}"
            )
        fitted = self.is_fitted
        metric = self._compiled_model().metric if fitted else "euclidean"
        plan = config.resolve(metric=metric, strict=fitted)
        snapshot: object = _UNCHANGED
        if fitted:
            current = self._compiled_model()
            if np.dtype(config.dtype) != current.dtype:
                snapshot = self._snapshot_for_dtype(current, np.dtype(config.dtype))
        if backend is None and plan.sharded:
            if config.sharding == self._serving.sharding and self._shard_spec is not None:
                # Unchanged sharding intent keeps the live backend (its pools
                # and remote connections); only the spec changing rebuilds it.
                backend = self._shard_spec[1]
            else:
                backend = plan.build_backend()
        if backend is not None:
            backend.configure_serving(config)
        # ---- commit; nothing above mutated detector state ---- #
        self._close_sharded()
        self._serving = config
        self._plan = plan
        self._engine = config.engine
        if snapshot is not _UNCHANGED:
            self._compiled = snapshot
            self._tables = None
        self._shard_spec = (int(plan.n_shards), backend, None) if plan.sharded else None
        return self

    def _snapshot_for_dtype(self, current: CompiledGhsom, requested: np.dtype):
        """The compiled snapshot serving ``requested``, or ``None`` to recompile.

        Narrowing always casts from the current snapshot (from the exact
        float64 source this keeps the documented tolerance); upcasting to
        float64 recompiles from the tree when one is available, because a
        narrowed codebook cannot recover the lost bits.
        """
        if current.dtype == np.dtype("float64"):
            return current.astype(requested)
        if requested == np.dtype("float64") and self.model is not None:
            return None
        return current.astype(requested)

    def set_serving_dtype(self, dtype) -> "GhsomDetector":
        """Switch the serving path to ``dtype`` (e.g. ``"float32"``) in place.

        .. deprecated:: use ``configure(serving_config.evolve(dtype=...))``
           with a :class:`~repro.serving.config.ServingConfig` instead.

        Float32 serving halves codebook memory traffic at the cost of
        bit-exactness — see :meth:`CompiledGhsom.astype` for the tolerance
        contract.  ``float64`` restores the default, bit-exact path (for a
        detector whose only source is an already-narrowed snapshot, the tree
        is rehydrated to recover full precision).
        """
        warnings.warn(
            "GhsomDetector.set_serving_dtype() is deprecated; build a "
            "repro.serving.ServingConfig (dtype=...) and pass it to "
            "configure()",
            DeprecationWarning,
            stacklevel=2,
        )
        self._require_fitted(self.is_fitted)
        return self._apply_serving(self._serving.evolve(dtype=np.dtype(dtype).name))

    # ------------------------------------------------------------------ #
    # compute engine
    # ------------------------------------------------------------------ #
    @property
    def engine(self) -> Optional[str]:
        """The configured compute engine, or ``None`` for the library default."""
        return self._engine

    def set_engine(self, engine: Optional[str]) -> "GhsomDetector":
        """Choose the descent engine: ``"numpy"``, ``"fused"``, ``"auto"`` or ``None``.

        .. deprecated:: use ``configure(serving_config.evolve(engine=...))``
           with a :class:`~repro.serving.config.ServingConfig` instead.

        ``"numpy"`` is the byte-exact reference (and the library default);
        ``"fused"`` runs the single-pass distance+argmin kernel from
        :mod:`repro.core.kernels` — same leaf assignments, distances within
        the documented kernel tolerance; ``"auto"`` uses the fused kernel
        when a provider is available and silently falls back otherwise;
        ``None`` defers to :func:`repro.core.kernels.get_default_engine`.

        Requesting ``"fused"`` on a fitted detector is *strict*: it raises
        :class:`~repro.exceptions.ConfigurationError` immediately when no
        kernel provider supports the model's metric/dtype, instead of
        silently serving slower.  The choice applies to the unsharded and
        sharded engines alike (a live sharded engine is rebuilt with the new
        setting on the next scoring call).
        """
        warnings.warn(
            "GhsomDetector.set_engine() is deprecated; build a "
            "repro.serving.ServingConfig (engine=...) and pass it to "
            "configure()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._apply_serving(self._serving.evolve(engine=engine))

    # ------------------------------------------------------------------ #
    # sharded serving
    # ------------------------------------------------------------------ #
    @property
    def sharding(self) -> Optional[Dict[str, object]]:
        """The active sharded-serving configuration, or ``None`` if unsharded."""
        if self._shard_spec is None:
            return None
        n_shards, backend, _ = self._shard_spec
        return {"n_shards": n_shards, "backend": backend.name, "workers": backend.workers}

    def set_sharding(
        self,
        n_shards: Optional[int],
        *,
        backend: object = "serial",
        workers: Optional[int] = None,
    ) -> "GhsomDetector":
        """Serve ``detect`` through K root-subtree shards (``None``/0 disables).

        .. deprecated:: use ``configure()`` with a
           :class:`~repro.serving.config.ServingConfig` carrying a
           :class:`~repro.serving.config.ShardingSpec` instead.

        The compiled model is partitioned by root-level BMU into ``n_shards``
        self-contained subtree shards executed on ``backend`` (``"serial"``,
        ``"thread"``, ``"process"``, or a :class:`~repro.serving.ShardBackend`
        instance); scores stay byte-identical to the unsharded float64 engine
        — see :mod:`repro.serving`.  The configuration survives refits: the
        engine is rebuilt against the new compiled snapshot on the next
        scoring call, which is what keeps a sharded
        :class:`~repro.streaming.OnlineDetector` sharded across drift-
        triggered refits.
        """
        warnings.warn(
            "GhsomDetector.set_sharding() is deprecated; build a "
            "repro.serving.ServingConfig (sharding=ShardingSpec(...)) and "
            "pass it to configure()",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.serving.backends import make_backend
        from repro.serving.config import ShardingSpec

        if not n_shards:
            return self._apply_serving(self._serving.evolve(sharding=ShardingSpec()))
        if n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
        # Resolve the backend eagerly so a bad name fails here, not mid-batch
        # (and so an already-constructed instance keeps its identity).
        resolved = make_backend(backend, workers)
        spec = self._spec_of_backend(resolved, int(n_shards), workers)
        return self._apply_serving(self._serving.evolve(sharding=spec), backend=resolved)

    def _spec_of_backend(self, resolved, n_shards: int, workers: Optional[int]):
        """Best-effort declarative mirror of a live backend instance.

        Keeps :attr:`serving_config` honest on the legacy ``set_sharding``
        path: named backends round-trip exactly; a custom
        :class:`ShardBackend` subclass has no declarative name and is
        recorded as a bare sharded spec.
        """
        from repro.serving.config import SHARD_BACKENDS, ShardingSpec

        name = getattr(resolved, "name", None)
        if name == "remote":
            addresses = getattr(resolved, "addresses", ())
            return ShardingSpec(
                shards=n_shards,
                remote_workers=",".join(f"{host}:{port}" for host, port in addresses),
                provisioning=getattr(resolved, "_provisioning", "auto"),
            )
        if name in SHARD_BACKENDS:
            return ShardingSpec(
                shards=n_shards,
                backend=name,
                workers=None if name == "serial" else workers,
            )
        return ShardingSpec(shards=n_shards)

    def _close_sharded(self) -> None:
        if self._sharded is not None:
            self._sharded.close()
            self._sharded = None

    def _serving_engine(self):
        """The engine ``_score_arrays`` descends with: sharded or compiled.

        The sharded engine is rebuilt whenever the compiled snapshot it was
        sliced from is replaced (refit, dtype switch, artifact reload).
        """
        compiled = self._compiled_model()
        if self._shard_spec is None:
            return compiled
        if self._sharded is None or self._sharded.source is not compiled:
            from repro.serving.planner import plan_shards, subtrees_from_manifest
            from repro.serving.router import ShardedGhsom

            n_shards, backend, _ = self._shard_spec
            plan = None
            manifest = self._shard_manifest
            if manifest is not None and int(manifest.get("n_leaves", -1)) == compiled.n_leaves:
                plan = plan_shards(
                    compiled, n_shards, subtrees=subtrees_from_manifest(manifest)
                )
            tables = self._leaf_tables()
            self._close_sharded()
            self._sharded = ShardedGhsom.from_compiled(
                compiled,
                n_shards,
                backend=backend,
                plan=plan,
                thresholds=tables.thresholds,
                labels=tables.labels,
                is_attack=tables.is_attack,
                purity=tables.purity,
                engine=self._engine,
            )
        return self._sharded

    # ------------------------------------------------------------------ #
    def fit(self, X, y: Optional[Sequence[str]] = None) -> "GhsomDetector":
        """Train the GHSOM, label its leaves (if ``y`` given) and calibrate thresholds."""
        matrix = check_array_2d(X, "X", min_rows=2)
        labels = None
        if y is not None:
            labels = [str(label) for label in y]
            check_same_length(matrix, labels, "X", "y")
        self._tables = None
        self._compiled = None
        self._close_sharded()  # the spec survives; the engine rebuilds lazily
        self._shard_manifest = None  # layout of the previous tree, now stale
        self.model = Ghsom(self.config, random_state=self.random_state)
        self.model.fit(matrix)
        compiled = self.model.compile()
        leaf_index, distances = compiled.assign_arrays(matrix)
        leaf_keys = compiled.keys_of(leaf_index)

        if labels is not None:
            self.labeler = UnitLabeler(strategy=self.labeling_strategy)
            self.labeler.fit(leaf_keys, labels)
        else:
            self.labeler = None

        calibration_mask = np.ones(len(distances), dtype=bool)
        if labels is not None and self.calibrate_on_normal_only:
            normal_mask = np.array([label == "normal" for label in labels])
            if normal_mask.any():
                calibration_mask = normal_mask
        strategy = make_threshold_strategy(self.threshold_strategy_name, **self.threshold_kwargs)
        strategy.fit(
            distances[calibration_mask],
            [key for key, keep in zip(leaf_keys, calibration_mask, strict=True) if keep],
        )
        self.threshold_ = strategy
        # Re-apply the serving config to the fresh model: the compiled
        # snapshot was reset above, so a non-default serving dtype (e.g.
        # float32 across an OnlineDetector drift-triggered refit) must be
        # re-narrowed from it.  The cached plan is host-side only, but the
        # model's metric feeds resolution — recompute lazily.
        self._plan = None
        if np.dtype(self._serving.dtype) != np.dtype("float64"):
            self._compiled = compiled.astype(self._serving.dtype)
        return self

    # ------------------------------------------------------------------ #
    def _compiled_model(self) -> CompiledGhsom:
        """The compiled snapshot the serving path runs on.

        A detector hydrated from a v2 artifact (or switched to a non-default
        serving dtype) serves from its stored arrays; a tree-backed detector
        compiles its fitted tree (cached per fit by ``Ghsom.compile``).
        """
        if self._compiled is not None:
            return self._compiled
        return self.model.compile()

    def _leaf_tables(self) -> _LeafTables:
        """Compiled leaf lookup tables (built lazily, e.g. after deserialization).

        Rebuilt whenever the compiled model changes, the threshold strategy /
        labeler instance is swapped, or either is refitted *in place* (their
        ``fit_version`` counters move), so sklearn-style recalibration takes
        effect on the next scoring call just as it did on the pre-compiled
        path.
        """
        compiled = self._compiled_model()
        if (
            self._tables is not None
            and self._tables.compiled is compiled
            and self._tables.threshold_source is self.threshold_
            and self._tables.threshold_version == self.threshold_.fit_version
            and self._tables.labeler_source is self.labeler
            and self._tables.labeler_version
            == (0 if self.labeler is None else self.labeler.fit_version)
        ):
            return self._tables
        self._tables = build_leaf_tables(compiled, self.threshold_, self.labeler)
        return self._tables

    def _score_arrays(self, X):
        """Shared vectorized front half of every scoring method.

        Returns ``(tables, leaf_index, ratios)`` where ``ratios`` are the
        threshold-normalised distances.  This is the *single*
        ``assign_arrays`` pass everything in :meth:`detect` derives from.
        """
        self._require_fitted(self.is_fitted)
        tables = self._leaf_tables()
        # The sharded engine (when configured) returns global leaf rows and
        # distances byte-identical to the compiled engine, so everything
        # downstream of this call is oblivious to the partitioning.  The
        # compute-engine choice rides along per call on the compiled engine;
        # the sharded engine carries it in its shard fields (set at build).
        serving = self._serving_engine()
        if isinstance(serving, CompiledGhsom):
            leaf_index, distances = serving.assign_arrays(X, engine=self._engine)
        else:
            leaf_index, distances = serving.assign_arrays(X)
        ratios = distances / tables.thresholds[leaf_index]
        return tables, leaf_index, ratios

    def detect(self, X) -> DetectionResult:
        """Scores, decisions, categories and leaf rows from **one** descent.

        A single :meth:`CompiledGhsom.assign_arrays` pass feeds every output:
        the serving path (CLI ``detect``, :class:`OnlineDetector`, the
        evaluation harness) costs one tree descent per batch instead of the
        three that separate ``predict`` / ``score_samples`` /
        ``predict_category`` calls would pay.  Each individual method is the
        corresponding field of this result.

        The result's :attr:`DetectionResult.stats` carries a
        :class:`~repro.serving.config.ServingStats`: per-stage wall-clock
        timings (ingest / route / descend / merge) plus the resolved
        :class:`~repro.serving.config.ServingPlan` provenance, so serving
        consumers get observability without instrumenting the layers.
        """
        from repro.serving.config import ServingStats

        t_start = perf_counter()
        self._require_fitted(self.is_fitted)
        # One cast to the serving dtype at the boundary; the engines' own
        # validation then passes the converted matrix through untouched, so
        # this stays a single-descent, single-cast path (and the timing below
        # cleanly separates ingest from the descent).
        matrix = check_array_2d(X, "data", dtype=self._compiled_model().dtype)
        ingest_s = perf_counter() - t_start
        t_score = perf_counter()
        tables, leaf_index, ratios = self._score_arrays(matrix)
        score_s = perf_counter() - t_score
        t_merge = perf_counter()
        if tables.is_attack is None:
            scores = ratios
        else:
            scores = _fold_attack_labels(
                ratios, tables.is_attack[leaf_index], tables.purity[leaf_index]
            )
        predictions = alarm_decisions(scores)
        if tables.labels is None:
            categories = ["anomaly" if flag else "normal" for flag in predictions]
        else:
            # Fancy indexing allocates a fresh array, safe for in-place masking
            # once all label masks are computed up front.
            labels = tables.labels[leaf_index]
            over = ratios > 1.0
            unlabeled = labels == UNLABELED
            was_normal = labels == "normal"
            labels[unlabeled & over] = "unknown"
            labels[unlabeled & ~over] = "normal"
            labels[was_normal & over] = "unknown"
            categories = labels.tolist()
        # The sharded router measures its own route / dispatch / merge split;
        # the unsharded engine fuses routing into the descent (route 0.0).
        route_s = shard_merge_s = 0.0
        descend_s = score_s
        router_timings = getattr(self._sharded, "last_timings", None)
        if router_timings:
            route_s = float(router_timings.get("route_s", 0.0))
            shard_merge_s = float(router_timings.get("merge_s", 0.0))
            descend_s = max(score_s - route_s - shard_merge_s, 0.0)
        plan = self.resolved_plan()
        stats = ServingStats(
            n_records=int(matrix.shape[0]),
            dtype=str(matrix.dtype),
            engine=plan.engine,
            sharded=self._shard_spec is not None,
            ingest_s=ingest_s,
            route_s=route_s,
            descend_s=descend_s,
            merge_s=shard_merge_s + (perf_counter() - t_merge),
            total_s=perf_counter() - t_start,
            plan=plan.to_dict(),
        )
        return DetectionResult(
            scores=scores,
            predictions=predictions,
            categories=categories,
            leaf_index=leaf_index,
            stats=stats,
        )

    def score_samples(self, X) -> np.ndarray:
        """Threshold-normalised anomaly scores.

        In one-class mode the score is ``distance / leaf threshold``; in
        labelled mode records on attack-labelled leaves additionally receive a
        score above 1.0 graded by the leaf's purity (see
        :func:`combine_label_and_distance_scores`).  In both modes
        ``score > 1.0`` is exactly the alarm condition used by :meth:`predict`.
        """
        tables, leaf_index, ratios = self._score_arrays(X)
        if tables.is_attack is None:
            return ratios
        return _fold_attack_labels(
            ratios, tables.is_attack[leaf_index], tables.purity[leaf_index]
        )

    def predict(self, X) -> np.ndarray:
        """Binary anomaly decisions.

        In labelled mode a record alarms when it lands on an attack-labelled
        leaf or exceeds its leaf's distance threshold; in one-class mode only
        the distance criterion applies.  Both are captured by the combined
        score exceeding 1.0.
        """
        return alarm_decisions(self.score_samples(X))

    def predict_category(self, X) -> List[str]:
        """Per-record class labels (requires labelled training data).

        Records that land on unlabeled leaves, or that exceed the distance
        threshold of a normal-labelled leaf, are reported as ``"unknown"`` —
        they are anomalous but resemble no training class.  Equal to
        ``detect(X).categories``.
        """
        return self.detect(X).categories

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def topology_summary(self) -> Dict[str, object]:
        """Structural statistics of the underlying GHSOM (Table 5)."""
        self._require_fitted(self.is_fitted)
        return self.model.topology_summary()

    def leaf_label_distribution(self) -> Dict[str, int]:
        """Number of leaves per assigned class (labelled mode only)."""
        self._require_fitted(self.is_fitted)
        if self.labeler is None:
            raise ConfigurationError("the detector was trained without labels")
        return self.labeler.class_distribution()
