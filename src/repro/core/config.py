"""Configuration dataclasses for SOM / GHSOM training.

Separating the configuration from the models keeps constructor signatures
small, makes experiments easy to log (a config serialises to a dict), and lets
the benchmark sweeps vary one parameter at a time.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict

from repro.core.decay import available_decays
from repro.core.distances import available_metrics
from repro.core.neighborhood import available_neighborhoods
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class SomTrainingConfig:
    """Hyper-parameters for training one SOM layer.

    Attributes
    ----------
    epochs:
        Number of passes over the training data per growth round.
    learning_rate:
        Initial learning rate; decays according to ``decay``.
    initial_radius:
        Initial neighbourhood radius; ``None`` (encoded as 0.0) lets the map
        choose half of its larger side.
    neighborhood:
        Name of the neighbourhood kernel (see :mod:`repro.core.neighborhood`).
    decay:
        Name of the decay schedule for both learning rate and radius.
    metric:
        Distance metric for BMU search.
    """

    epochs: int = 10
    learning_rate: float = 0.5
    initial_radius: float = 0.0
    neighborhood: str = "gaussian"
    decay: str = "exponential"
    metric: str = "euclidean"

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {self.epochs}")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ConfigurationError(
                f"learning_rate must be in (0, 1], got {self.learning_rate}"
            )
        if self.initial_radius < 0.0:
            raise ConfigurationError(
                f"initial_radius must be >= 0 (0 = auto), got {self.initial_radius}"
            )
        if self.neighborhood not in available_neighborhoods():
            raise ConfigurationError(f"unknown neighborhood {self.neighborhood!r}")
        if self.decay not in available_decays():
            raise ConfigurationError(f"unknown decay {self.decay!r}")
        if self.metric not in available_metrics():
            raise ConfigurationError(f"unknown metric {self.metric!r}")

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict representation (for logging and serialization)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SomTrainingConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)  # type: ignore[arg-type]


@dataclass(frozen=True)
class GhsomConfig:
    """Hyper-parameters controlling GHSOM growth.

    Attributes
    ----------
    tau1:
        Horizontal (breadth) growth threshold.  A layer keeps growing while
        its mean quantization error exceeds ``tau1 * parent_qe``.  Smaller
        values produce larger, more detailed maps.
    tau2:
        Vertical (depth) growth threshold.  A unit is expanded into a child
        map while its quantization error exceeds ``tau2 * qe0``, where
        ``qe0`` is the quantization error of the whole dataset around its
        mean.  Smaller values produce deeper hierarchies.
    max_depth:
        Maximum hierarchy depth (the root layer has depth 1).
    max_map_size:
        Maximum number of units a single layer may grow to.
    max_growth_rounds:
        Safety bound on the number of insertions per layer.
    min_samples_for_expansion:
        A unit is only expanded vertically if at least this many training
        samples map to it.
    initial_rows, initial_cols:
        Shape of every newly created layer (the classic GHSOM uses 2x2).
    training:
        Per-layer SOM training configuration.
    random_state:
        Seed for weight initialisation and sample shuffling.
    """

    tau1: float = 0.3
    tau2: float = 0.05
    max_depth: int = 3
    max_map_size: int = 144
    max_growth_rounds: int = 40
    min_samples_for_expansion: int = 30
    initial_rows: int = 2
    initial_cols: int = 2
    training: SomTrainingConfig = field(default_factory=SomTrainingConfig)
    random_state: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.tau1 <= 1.0:
            raise ConfigurationError(f"tau1 must be in (0, 1], got {self.tau1}")
        if not 0.0 < self.tau2 <= 1.0:
            raise ConfigurationError(f"tau2 must be in (0, 1], got {self.tau2}")
        if self.max_depth < 1:
            raise ConfigurationError(f"max_depth must be >= 1, got {self.max_depth}")
        if self.initial_rows < 2 or self.initial_cols < 2:
            raise ConfigurationError(
                "initial map shape must be at least 2x2, got "
                f"{self.initial_rows}x{self.initial_cols}"
            )
        if self.max_map_size < self.initial_rows * self.initial_cols:
            raise ConfigurationError(
                "max_map_size must be at least as large as the initial map "
                f"({self.initial_rows * self.initial_cols}), got {self.max_map_size}"
            )
        if self.max_growth_rounds < 0:
            raise ConfigurationError(
                f"max_growth_rounds must be >= 0, got {self.max_growth_rounds}"
            )
        if self.min_samples_for_expansion < 1:
            raise ConfigurationError(
                f"min_samples_for_expansion must be >= 1, got {self.min_samples_for_expansion}"
            )

    def with_updates(self, **changes) -> "GhsomConfig":
        """A copy of this config with some fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict representation (training config nested as a dict)."""
        data = asdict(self)
        data["training"] = self.training.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "GhsomConfig":
        """Inverse of :meth:`to_dict`."""
        payload = dict(data)
        training = payload.pop("training", {})
        if isinstance(training, SomTrainingConfig):
            training_config = training
        else:
            training_config = SomTrainingConfig.from_dict(dict(training))
        return cls(training=training_config, **payload)  # type: ignore[arg-type]
