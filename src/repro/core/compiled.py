"""Compiled flat-array inference for fitted GHSOM trees.

A fitted :class:`~repro.core.ghsom.Ghsom` is a tree of SOM layers; the
recursive descent in :meth:`Ghsom.assign` is correct but pays a per-sample
Python tax (one ``LeafAssignment`` dataclass per record, per-object attribute
reads in every consumer).  For batch scoring — the hot path of the anomaly
detector — that tax dominates the actual distance arithmetic.

:class:`CompiledGhsom` flattens the hierarchy once, at compile time, into a
handful of contiguous numpy arrays:

* ``codebook`` — every layer's weight matrix stacked into one ``(U, d)``
  array, with ``node_offsets`` delimiting each layer's slice;
* ``child_of_unit`` — for every global unit row, the node index of the child
  layer expanded from it (or ``-1`` when the unit is a leaf);
* ``leaf_of_unit`` — for every global unit row, its row in the *leaf table*
  (or ``-1`` for internal units);
* the leaf table itself — parallel arrays mapping leaf row to ``(node_id,
  unit)`` leaf key, depth, and owning node.

Batch scoring then becomes a per-level vectorized distance + argmin over the
*frontier* of samples still descending (a single flat argmin when the tree is
one layer deep), with zero per-sample Python objects: the result is a pair of
ndarrays ``(leaf_index, distance)``.  Leaf indices are stable integers, so any
per-leaf quantity (threshold, label, purity) can be turned into an ``(L,)``
lookup array once and applied to a batch with a single fancy-indexing
operation — this is what :class:`~repro.core.detector.GhsomDetector` builds
its vectorized scoring on.

The compiled path reproduces the legacy semantics *exactly*, including the
subtlety that best-matching-unit search always uses squared Euclidean
distance while the reported quantization distance is the minimum under the
configured metric (they can disagree for Manhattan / Chebyshev metrics).
Equivalence is enforced bit-for-bit by the property tests in
``tests/test_property_compiled.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
import numpy.typing as npt

from repro._typing import AnyArray
from repro.core import kernels
from repro.core.distances import get_metric
from repro.exceptions import DataValidationError, NotFittedError
from repro.utils.validation import check_array_2d

LeafKey = Tuple[str, int]


@dataclass(frozen=True, eq=False)
class CompiledGhsom:
    """Flat-array snapshot of a fitted GHSOM, optimised for batch inference.

    Instances are immutable snapshots produced by :func:`compile_ghsom` (or
    :meth:`repro.core.ghsom.Ghsom.compile`, which caches one per fit) and
    compare by identity (``eq=False``: the ndarray fields make element-wise
    dataclass equality both ambiguous and unhashable).

    Attributes
    ----------
    n_features:
        Input dimensionality.
    metric:
        Name of the quantization-distance metric (BMU search always uses
        squared Euclidean, matching the layer-level SOMs).
    node_ids:
        Path-like id of every layer, indexed by node index (root is 0).
    node_depths:
        Depth of every layer (root is 1).
    node_offsets:
        ``(n_nodes + 1,)`` prefix sums delimiting each layer's slice of
        ``codebook``; layer ``i`` owns rows ``node_offsets[i]:node_offsets[i+1]``.
    codebook:
        ``(U, d)`` stacked weight matrix of every unit of every layer.
    child_of_unit:
        ``(U,)`` node index of the child layer expanded from each global unit
        row, ``-1`` when the unit is a leaf.
    leaf_of_unit:
        ``(U,)`` leaf-table row of each global unit, ``-1`` for internal units.
    leaf_node, leaf_unit, leaf_depth:
        ``(L,)`` parallel arrays mapping leaf row to owning node index, local
        unit index on that layer, and depth.
    leaf_keys:
        ``(node_id, unit)`` leaf identity per leaf row — the same hashable
        keys the legacy path exposes via ``LeafAssignment.leaf_key``.
    """

    n_features: int
    metric: str
    node_ids: Tuple[str, ...]
    node_depths: AnyArray
    node_offsets: AnyArray
    codebook: AnyArray
    child_of_unit: AnyArray
    leaf_of_unit: AnyArray
    leaf_node: AnyArray
    leaf_unit: AnyArray
    leaf_depth: AnyArray
    leaf_keys: Tuple[LeafKey, ...]
    #: Precomputed ``|w|^2`` per global unit row, reused by every batch.
    unit_norms: AnyArray
    _leaf_index_of: Dict[LeafKey, int] = field(repr=False)

    # ------------------------------------------------------------------ #
    # construction from stored arrays
    # ------------------------------------------------------------------ #
    @classmethod
    def from_arrays(
        cls,
        *,
        n_features: int,
        metric: str,
        node_ids: Sequence[str],
        node_depths: npt.ArrayLike,
        node_offsets: npt.ArrayLike,
        codebook: npt.ArrayLike,
        child_of_unit: npt.ArrayLike,
        leaf_of_unit: npt.ArrayLike,
        leaf_node: npt.ArrayLike,
        leaf_unit: npt.ArrayLike,
        leaf_depth: npt.ArrayLike,
        unit_norms: Optional[npt.ArrayLike] = None,
    ) -> "CompiledGhsom":
        """Assemble a snapshot from its defining arrays (deserialization).

        The entry point for every artifact reader: v2 payloads pass parsed
        JSON lists, the v3 binary reader passes read-only memory-mapped
        views.  Arrays already carrying the target dtype are adopted
        *without copying* — the inference path never writes to the defining
        arrays, so memmap-backed (and otherwise read-only) inputs are served
        from directly and their pages fault in on first use.  ``unit_norms``
        is derived data: passing the stored value avoids touching every
        codebook page at load time; when omitted (v2 JSON payloads do not
        store it) it is recomputed from the codebook.
        """
        def adopt(array: npt.ArrayLike, dtype: "np.dtype[Any]") -> AnyArray:
            # asanyarray + conditional conversion keeps np.memmap instances
            # intact when dtype and layout already match (always true for
            # sidecars written by this library) — the subclass is what lets
            # downstream consumers pickle these arrays by file reference.
            adopted = np.asanyarray(array)
            if adopted.dtype != dtype or not adopted.flags["C_CONTIGUOUS"]:
                adopted = np.ascontiguousarray(adopted, dtype=dtype)
            return adopted

        ids = tuple(str(node_id) for node_id in node_ids)
        book = adopt(codebook, np.dtype(float))
        lnode = adopt(leaf_node, np.dtype(np.intp))
        lunit = adopt(leaf_unit, np.dtype(np.intp))
        # tolist() first: iterating a memmap element-wise pays a Python-level
        # __getitem__ per leaf, which is most of a v3 artifact's load time.
        leaf_keys = tuple(
            (ids[node], unit)
            for node, unit in zip(lnode.tolist(), lunit.tolist(), strict=True)
        )
        norms = (
            np.einsum("ij,ij->i", book, book)
            if unit_norms is None
            else adopt(unit_norms, np.dtype(float))
        )
        return cls(
            n_features=int(n_features),
            metric=str(metric),
            node_ids=ids,
            node_depths=adopt(node_depths, np.dtype(np.intp)),
            node_offsets=adopt(node_offsets, np.dtype(np.intp)),
            codebook=book,
            child_of_unit=adopt(child_of_unit, np.dtype(np.intp)),
            leaf_of_unit=adopt(leaf_of_unit, np.dtype(np.intp)),
            leaf_node=lnode,
            leaf_unit=lunit,
            leaf_depth=adopt(leaf_depth, np.dtype(np.intp)),
            leaf_keys=leaf_keys,
            unit_norms=norms,
            _leaf_index_of={key: row for row, key in enumerate(leaf_keys)},
        )

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    @property
    def n_nodes(self) -> int:
        """Number of layers in the hierarchy."""
        return len(self.node_ids)

    @property
    def n_units(self) -> int:
        """Total units across all layers."""
        return int(self.codebook.shape[0])

    @property
    def n_leaves(self) -> int:
        """Number of leaf units (rows of the leaf table)."""
        return len(self.leaf_keys)

    @property
    def max_depth(self) -> int:
        """Deepest layer of the hierarchy."""
        return int(self.node_depths.max())

    def leaf_index_of(self, key: LeafKey) -> int:
        """Leaf-table row of a ``(node_id, unit)`` key.

        Raises
        ------
        KeyError
            If the key does not name a leaf unit of this tree.
        """
        return self._leaf_index_of[key]

    def keys_of(self, leaf_indices: npt.ArrayLike) -> List[LeafKey]:
        """Leaf keys for a batch of leaf-table rows."""
        keys = self.leaf_keys
        return [keys[index] for index in np.asarray(leaf_indices, dtype=np.intp)]

    def leaf_lookup(
        self,
        getter: Callable[[LeafKey], object],
        dtype: npt.DTypeLike = float,
    ) -> AnyArray:
        """Materialise a per-leaf quantity into an ``(L,)`` lookup array.

        ``getter`` is called once per leaf key (not once per sample), so
        dict-backed quantities such as per-unit thresholds or unit labels are
        evaluated ``L`` times at compile time instead of ``n`` times per
        scored batch.
        """
        return np.array([getter(key) for key in self.leaf_keys], dtype=dtype)

    @property
    def dtype(self) -> "np.dtype[Any]":
        """Arithmetic dtype of the serving codebook (``float64`` unless cast)."""
        return self.codebook.dtype

    def astype(self, dtype: npt.DTypeLike) -> "CompiledGhsom":
        """A snapshot with the codebook cast to ``dtype`` (opt-in float32 serving).

        ``float64`` (the default everywhere) is bit-exact against the legacy
        recursive path.  ``float32`` halves codebook memory traffic for large
        trees at the cost of exactness: the expanded ``|x-w|^2`` form loses
        low-order bits to cancellation in single precision, so scores drift
        with a relative error on the order of ``1e-4`` (the test gate allows
        up to ``1e-3``); a sample near-equidistant between two units can
        additionally flip to the other leaf, taking that leaf's threshold and
        label with it — observed on well under 1% of records on the synthetic
        KDD workload.  ``benchmarks/bench_serving.py`` records both effects
        per run.
        Distances are still returned as ``float64`` arrays so downstream
        threshold arithmetic is unchanged.

        Returns ``self`` when the codebook already has the requested dtype.
        """
        requested = np.dtype(dtype)
        if requested == self.codebook.dtype:
            return self
        codebook = np.ascontiguousarray(self.codebook, dtype=requested)
        return CompiledGhsom(
            n_features=self.n_features,
            metric=self.metric,
            node_ids=self.node_ids,
            node_depths=self.node_depths,
            node_offsets=self.node_offsets,
            codebook=codebook,
            child_of_unit=self.child_of_unit,
            leaf_of_unit=self.leaf_of_unit,
            leaf_node=self.leaf_node,
            leaf_unit=self.leaf_unit,
            leaf_depth=self.leaf_depth,
            leaf_keys=self.leaf_keys,
            unit_norms=np.einsum("ij,ij->i", codebook, codebook),
            _leaf_index_of=self._leaf_index_of,
        )

    def describe(self) -> Dict[str, object]:
        """Structural summary (used by the benchmark harness and docs)."""
        return {
            "n_nodes": self.n_nodes,
            "n_units": self.n_units,
            "n_leaves": self.n_leaves,
            "max_depth": self.max_depth,
            "n_features": self.n_features,
            "metric": self.metric,
            "dtype": str(self.dtype),
        }

    # ------------------------------------------------------------------ #
    # inference
    # ------------------------------------------------------------------ #
    def assign_arrays(
        self, data: object, *, engine: Optional[str] = None
    ) -> Tuple[AnyArray, AnyArray]:
        """Leaf-table row and quantization distance for every sample.

        ``engine`` selects the descent implementation (``"numpy"``,
        ``"fused"``, ``"auto"``; ``None`` uses the library default — see
        :mod:`repro.core.kernels`).  The numpy engine is the byte-exact
        reference; the fused engine returns the same leaf assignments with
        distances inside the documented kernel tolerance.

        Returns
        -------
        (leaf_index, distance):
            ``leaf_index`` is an ``(n,)`` integer array of rows into the leaf
            table; ``distance`` is the ``(n,)`` float array of distances under
            the configured metric — both identical to what the legacy
            recursive descent produces, with no per-sample Python objects.
        """
        # Validation casts straight to the serving dtype: one conversion pass
        # total (float32 serving used to pay a float64 conversion here and a
        # float32 one right after).  Already-conforming arrays pass through
        # untouched, so callers that pre-validate at their boundary (the
        # detector, the streaming wrapper) pay no copy at all.
        matrix = check_array_2d(data, "data", dtype=self.codebook.dtype)
        if matrix.shape[1] != self.n_features:
            raise DataValidationError(
                f"data has {matrix.shape[1]} features, the model expects {self.n_features}"
            )
        resolved = kernels.resolve_engine(
            engine, metric=self.metric, dtype=self.codebook.dtype
        )
        if resolved == "fused":
            leaf_index, distances = kernels.fused_descent(
                self,
                matrix,
                np.zeros(matrix.shape[0], dtype=np.int64),
                metric=self.metric,
            )
        else:
            entry_nodes = np.zeros(matrix.shape[0], dtype=np.intp)
            leaf_index, distances = frontier_descent(
                matrix,
                entry_nodes,
                codebook=self.codebook,
                node_offsets=self.node_offsets,
                child_of_unit=self.child_of_unit,
                leaf_of_unit=self.leaf_of_unit,
                unit_norms=self.unit_norms,
                metric=self.metric,
            )
        # Distances surface as float64 regardless of serving dtype so the
        # threshold arithmetic downstream never changes representation.
        # repro-lint: disable=RPL003 -- documented result-widening contract;
        # copy=False makes it a no-op on the float64 engine.
        return leaf_index, distances.astype(np.float64, copy=False)

    def transform(self, data: object) -> AnyArray:
        """Quantization distance per sample (the raw anomaly score)."""
        return self.assign_arrays(data)[1]


def frontier_descent(
    matrix: AnyArray,
    entry_nodes: AnyArray,
    *,
    codebook: AnyArray,
    node_offsets: AnyArray,
    child_of_unit: AnyArray,
    leaf_of_unit: AnyArray,
    unit_norms: AnyArray,
    metric: str,
) -> Tuple[AnyArray, AnyArray]:
    """Per-level vectorized BMU descent over a flat-array hierarchy.

    The core inference loop shared by :meth:`CompiledGhsom.assign_arrays`
    (every sample enters at node 0) and the sharded serving engine in
    :mod:`repro.serving` (each sample enters at its subtree's root node).
    Factoring the loop out — rather than duplicating it per engine — is what
    makes the sharded path byte-identical to the unsharded one by
    construction: both run the exact same IEEE operations on the exact same
    row groupings.

    ``matrix`` must already be validated and cast to ``codebook.dtype``;
    ``entry_nodes`` holds the node index each sample starts its descent on.
    Returns ``(leaf_index, distances)`` with ``distances`` still in the
    codebook dtype (callers widen to float64 at their boundary).
    """
    n = matrix.shape[0]
    leaf_index = np.full(n, -1, dtype=np.intp)
    distances = np.zeros(n, dtype=codebook.dtype)
    # exact_metric is None when the squared-Euclidean BMU matrix already
    # yields the quantization distance (possibly after a square root).
    exact_metric = None if metric in ("euclidean", "sqeuclidean") else get_metric(metric)
    # |x|^2 per sample, computed once and reused at every level (the
    # legacy path recomputes it per node; row-wise sums are bitwise
    # identical either way).
    sample_norms = np.einsum("ij,ij->i", matrix, matrix)
    # Frontier descent: `pending` holds the sample rows still travelling
    # down the tree, `pending_node` the node each currently sits on.
    pending = np.arange(n, dtype=np.intp)
    pending_node = np.ascontiguousarray(entry_nodes, dtype=np.intp)
    while pending.size:
        next_rows: List[AnyArray] = []
        next_nodes: List[AnyArray] = []
        # One two-key sort groups the frontier by node with ascending sample
        # order inside each group — the same per-node row sets (and therefore
        # bitwise-identical BLAS inputs and outputs) the former np.unique +
        # per-node boolean-mask pass produced, at O(p log p) per level
        # instead of O(nodes x pending) mask scans.  Ascending sample order
        # matches the legacy recursion's subset construction.
        order = np.lexsort((pending, pending_node))
        sorted_rows = pending[order]
        sorted_nodes = pending_node[order]
        boundaries = np.flatnonzero(sorted_nodes[1:] != sorted_nodes[:-1]) + 1
        run_starts = np.concatenate(([0], boundaries))
        run_stops = np.concatenate((boundaries, [sorted_nodes.size]))
        for run_begin, run_end in zip(run_starts.tolist(), run_stops.tolist(), strict=True):
            node = int(sorted_nodes[run_begin])
            rows = sorted_rows[run_begin:run_end]
            start = int(node_offsets[node])
            stop = int(node_offsets[node + 1])
            block = codebook[start:stop]
            whole_batch = rows.size == n
            sub = matrix if whole_batch else matrix[rows]
            # In-place |x - w|^2 = -2 x.w + |x|^2 + |w|^2: the same IEEE
            # operations as `squared_euclidean` (negation and scaling by 2
            # are exact, a - b == (-b) + a), with no (n, u) temporaries.
            d2 = sub @ block.T
            d2 *= -2.0
            d2 += (sample_norms if whole_batch else sample_norms[rows])[:, None]
            d2 += unit_norms[start:stop][None, :]
            np.maximum(d2, 0.0, out=d2)
            units = np.argmin(d2, axis=1)
            global_units = start + units
            children = child_of_unit[global_units]
            at_leaf = children < 0
            if at_leaf.any():
                leaf_rows = rows[at_leaf]
                leaf_index[leaf_rows] = leaf_of_unit[global_units[at_leaf]]
                if exact_metric is None:
                    best = d2[at_leaf].min(axis=1)
                    if metric == "euclidean":
                        best = np.sqrt(best)
                    distances[leaf_rows] = best
                else:
                    distances[leaf_rows] = exact_metric(sub[at_leaf], block).min(axis=1)
            descending = ~at_leaf
            if descending.any():
                next_rows.append(rows[descending])
                next_nodes.append(children[descending])
        if next_rows:
            pending = np.concatenate(next_rows)
            pending_node = np.concatenate(next_nodes).astype(np.intp, copy=False)
        else:
            pending = np.empty(0, dtype=np.intp)
            pending_node = pending
    return leaf_index, distances


def compile_ghsom(model: Any) -> CompiledGhsom:
    """Flatten a fitted :class:`~repro.core.ghsom.Ghsom` into a :class:`CompiledGhsom`.

    The snapshot reflects the tree at compile time; refitting the model
    requires recompiling (handled automatically by ``Ghsom.compile``).
    """
    if not getattr(model, "is_fitted", False):
        raise NotFittedError("Ghsom must be fitted before it can be compiled")
    nodes = list(model.iter_nodes())  # pre-order: parents precede children
    node_index = {node.node_id: index for index, node in enumerate(nodes)}
    unit_counts = [node.n_units for node in nodes]
    node_offsets = np.zeros(len(nodes) + 1, dtype=np.intp)
    np.cumsum(unit_counts, out=node_offsets[1:])
    codebook = np.ascontiguousarray(
        np.concatenate([node.layer.codebook for node in nodes], axis=0), dtype=float
    )
    total_units = int(node_offsets[-1])
    child_of_unit = np.full(total_units, -1, dtype=np.intp)
    leaf_of_unit = np.full(total_units, -1, dtype=np.intp)
    leaf_node: List[int] = []
    leaf_unit: List[int] = []
    leaf_depth: List[int] = []
    leaf_keys: List[LeafKey] = []
    for index, node in enumerate(nodes):
        start = int(node_offsets[index])
        for unit, child in node.children.items():
            child_of_unit[start + int(unit)] = node_index[child.node_id]
        for unit in range(node.n_units):
            if unit in node.children:
                continue
            leaf_of_unit[start + unit] = len(leaf_keys)
            leaf_node.append(index)
            leaf_unit.append(unit)
            leaf_depth.append(node.depth)
            leaf_keys.append((node.node_id, unit))
    return CompiledGhsom(
        n_features=int(model.n_features),
        metric=str(model.config.training.metric),
        node_ids=tuple(node.node_id for node in nodes),
        node_depths=np.array([node.depth for node in nodes], dtype=np.intp),
        node_offsets=node_offsets,
        codebook=codebook,
        child_of_unit=child_of_unit,
        leaf_of_unit=leaf_of_unit,
        leaf_node=np.array(leaf_node, dtype=np.intp),
        leaf_unit=np.array(leaf_unit, dtype=np.intp),
        leaf_depth=np.array(leaf_depth, dtype=np.intp),
        leaf_keys=tuple(leaf_keys),
        unit_norms=np.einsum("ij,ij->i", codebook, codebook),
        _leaf_index_of={key: row for row, key in enumerate(leaf_keys)},
    )
