"""Learning-rate and neighbourhood-radius schedules.

A schedule maps training progress ``t / t_max`` (in ``[0, 1]``) to a scaling
factor in ``(0, 1]`` that multiplies the initial learning rate or radius.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.exceptions import ConfigurationError

DecayFunction = Callable[[float], float]


def linear_decay(progress: float) -> float:
    """Linear decay from 1 to a small floor (never exactly zero)."""
    progress = float(np.clip(progress, 0.0, 1.0))
    return max(1.0 - progress, 0.01)


def exponential_decay(progress: float) -> float:
    """Exponential decay ``exp(-4 t)``: reaches ~0.018 at the end of training."""
    progress = float(np.clip(progress, 0.0, 1.0))
    return float(np.exp(-4.0 * progress))


def inverse_decay(progress: float) -> float:
    """Hyperbolic decay ``1 / (1 + 9 t)``: reaches 0.1 at the end of training."""
    progress = float(np.clip(progress, 0.0, 1.0))
    return 1.0 / (1.0 + 9.0 * progress)


def constant_decay(progress: float) -> float:
    """No decay (useful for online/streaming fine-tuning)."""
    return 1.0


_SCHEDULES: Dict[str, DecayFunction] = {
    "linear": linear_decay,
    "exponential": exponential_decay,
    "inverse": inverse_decay,
    "constant": constant_decay,
}


def get_decay(name: str) -> DecayFunction:
    """Look up a decay schedule by name."""
    try:
        return _SCHEDULES[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown decay schedule {name!r}; available: {sorted(_SCHEDULES)}"
        ) from exc


def available_decays() -> tuple:
    """Names of all registered decay schedules."""
    return tuple(sorted(_SCHEDULES))
