"""Model inspection: U-matrices, hit maps, component planes and tree rendering.

SOM-family models are popular in security operations partly because they are
*inspectable*: an analyst can look at the map, see which regions of it fire,
and understand what kind of traffic a unit represents.  This module provides
the classic inspection artefacts as plain numpy arrays / text (no plotting
dependency):

* :func:`u_matrix` — average distance of each unit's weight vector to its grid
  neighbours (cluster boundaries show up as ridges);
* :func:`hit_map` — how many records of a dataset map to each unit;
* :func:`component_plane` — the value of one input feature across the map;
* :func:`describe_tree` — a text rendering of a GHSOM hierarchy with per-layer
  statistics;
* :func:`render_grid` — ASCII rendering of any per-unit matrix.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.ghsom import Ghsom
from repro.core.grid import MapGrid
from repro.core.labeling import UnitLabeler
from repro.core.som import Som
from repro.exceptions import ConfigurationError
from repro.utils.validation import check_array_2d


def u_matrix(codebook, grid: MapGrid) -> np.ndarray:
    """Unified distance matrix of a map.

    Returns a ``(rows, cols)`` array where each cell holds the mean Euclidean
    distance between that unit's weight vector and the weight vectors of its
    4-connected neighbours.  High values mark cluster boundaries.
    """
    weights = check_array_2d(codebook, "codebook")
    if weights.shape[0] != grid.n_units:
        raise ConfigurationError(
            f"codebook has {weights.shape[0]} rows but the grid has {grid.n_units} units"
        )
    result = np.zeros((grid.rows, grid.cols))
    for unit, row, col in grid.iter_units():
        neighbors = grid.neighbors(unit)
        distances = [
            float(np.linalg.norm(weights[unit] - weights[neighbor])) for neighbor in neighbors
        ]
        result[row, col] = float(np.mean(distances)) if distances else 0.0
    return result


def hit_map(som: Som, data) -> np.ndarray:
    """Number of records of ``data`` mapped to each unit, shaped like the grid."""
    counts = som.unit_counts(data)
    return counts.reshape(som.grid.rows, som.grid.cols)


def component_plane(som: Som, feature_index: int) -> np.ndarray:
    """The weight value of one input feature across the map (``(rows, cols)``)."""
    if not 0 <= feature_index < som.n_features:
        raise ConfigurationError(
            f"feature_index must be in [0, {som.n_features}), got {feature_index}"
        )
    return som.codebook[:, feature_index].reshape(som.grid.rows, som.grid.cols)


def label_map(som: Som, labeler: UnitLabeler, node_id: str = "som") -> List[List[str]]:
    """Per-unit labels of a flat SOM as a ``rows x cols`` nested list of strings."""
    rows: List[List[str]] = []
    for row in range(som.grid.rows):
        current: List[str] = []
        for col in range(som.grid.cols):
            unit = som.grid.unit_index(row, col)
            current.append(labeler.label_of((node_id, unit)))
        rows.append(current)
    return rows


def render_grid(values: np.ndarray, *, float_format: str = ".3f") -> str:
    """ASCII rendering of a per-unit matrix (one row of text per map row)."""
    matrix = np.atleast_2d(np.asarray(values))
    width = max(len(format(float(value), float_format)) for value in matrix.ravel())
    lines = []
    for row in matrix:
        lines.append(" ".join(format(float(value), float_format).rjust(width) for value in row))
    return "\n".join(lines)


def describe_tree(model: Ghsom, labeler: Optional[UnitLabeler] = None) -> str:
    """Text rendering of a GHSOM hierarchy.

    Each line shows one layer: its id, depth, shape, number of training
    records, mean quantization error of its units, and (when a labeler is
    given) the distribution of leaf labels on that layer.
    """
    lines: List[str] = []
    for node in model.iter_nodes():
        indent = "  " * (node.depth - 1)
        n_records = int(np.sum(node.unit_count)) if node.unit_count.size else 0
        mean_qe = float(np.mean(node.unit_qe)) if node.unit_qe.size else 0.0
        line = (
            f"{indent}{node.node_id}: {node.layer.grid.rows}x{node.layer.grid.cols} "
            f"({node.n_units} units, depth {node.depth}, {n_records} records, "
            f"mean unit QE {mean_qe:.4f}, {len(node.children)} expanded)"
        )
        if labeler is not None:
            counts: Dict[str, int] = {}
            for unit in range(node.n_units):
                if unit in node.children:
                    continue
                label = labeler.label_of((node.node_id, unit))
                counts[label] = counts.get(label, 0) + 1
            if counts:
                rendered = ", ".join(f"{label}={count}" for label, count in sorted(counts.items()))
                line += f" [leaf labels: {rendered}]"
        lines.append(line)
    return "\n".join(lines)


def unit_summaries(
    model: Ghsom,
    feature_names: Optional[Sequence[str]] = None,
    *,
    top_k: int = 3,
) -> List[Dict[str, object]]:
    """Per-leaf summaries: id, depth, records, QE and the strongest weight features.

    Useful for answering "what does the unit that fired look like?" without a
    visualisation stack.
    """
    if top_k < 1:
        raise ConfigurationError(f"top_k must be >= 1, got {top_k}")
    summaries: List[Dict[str, object]] = []
    for node in model.iter_nodes():
        for unit in range(node.n_units):
            if unit in node.children:
                continue
            weights = node.layer.codebook[unit]
            order = np.argsort(weights)[::-1][:top_k]
            if feature_names is not None and len(feature_names) == weights.shape[0]:
                top_features = [(str(feature_names[index]), float(weights[index])) for index in order]
            else:
                top_features = [(f"feature_{index}", float(weights[index])) for index in order]
            summaries.append(
                {
                    "node_id": node.node_id,
                    "unit": unit,
                    "depth": node.depth,
                    "n_records": int(node.unit_count[unit]) if node.unit_count.size else 0,
                    "qe": float(node.unit_qe[unit]) if node.unit_qe.size else 0.0,
                    "top_features": top_features,
                }
            )
    return summaries
