"""The Growing Hierarchical Self-Organizing Map (GHSOM).

A GHSOM is a tree of growing SOM layers:

* the **root layer** is grown on the whole training set with the breadth
  target ``tau1 * qe0``, where ``qe0`` is the quantization error of the data
  around its global mean;
* after a layer stabilises, every unit whose quantization error is still
  larger than the depth threshold ``tau2 * qe0`` — and which has enough
  mapped samples — is **expanded** into a child layer trained only on the
  samples mapped to that unit, with breadth target ``tau1 * qe_unit``;
* expansion recurses until ``max_depth`` or until no unit violates the depth
  criterion.

Inference descends the tree: a sample's best matching unit is found on the
root layer, then on that unit's child layer (if any), and so on until a leaf
unit is reached.  The leaf identity and the distance to its weight vector are
the raw outputs every detector in this library builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.compiled import CompiledGhsom, compile_ghsom
from repro.core.config import GhsomConfig
from repro.core.growing_som import GrowingSom
from repro.core.quantization import dataset_quantization_error
from repro.exceptions import DataValidationError, NotFittedError
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs
from repro.utils.validation import check_array_2d


@dataclass
class GhsomNode:
    """One layer of the GHSOM hierarchy.

    Attributes
    ----------
    node_id:
        Path-like identifier: ``"root"`` for the root layer, ``"root/3"`` for
        the child layer expanded from unit 3 of the root, and so on.
    layer:
        The trained :class:`~repro.core.growing_som.GrowingSom`.
    depth:
        Depth in the hierarchy (the root layer has depth 1).
    parent_unit:
        Flat unit index in the parent layer this node was expanded from
        (``None`` for the root).
    children:
        Mapping from unit index on this layer to the child node expanded
        from it.
    unit_qe, unit_count:
        Per-unit quantization error and training-sample count recorded at fit
        time (used for expansion decisions, inspection and thresholds).
    """

    node_id: str
    layer: GrowingSom
    depth: int
    parent_unit: Optional[int] = None
    children: Dict[int, "GhsomNode"] = field(default_factory=dict)
    unit_qe: np.ndarray = field(default_factory=lambda: np.zeros(0))
    unit_count: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=int))

    @property
    def n_units(self) -> int:
        """Number of units on this layer."""
        return self.layer.n_units

    def iter_subtree(self) -> Iterator["GhsomNode"]:
        """Yield this node and every descendant (pre-order)."""
        yield self
        for child in self.children.values():
            yield from child.iter_subtree()


@dataclass(frozen=True)
class LeafAssignment:
    """Where one sample landed in the hierarchy."""

    node_id: str
    unit: int
    depth: int
    distance: float

    @property
    def leaf_key(self) -> Tuple[str, int]:
        """Hashable identity of the leaf unit."""
        return (self.node_id, self.unit)


class Ghsom:
    """Growing Hierarchical Self-Organizing Map.

    Parameters
    ----------
    config:
        All growth and training hyper-parameters (see :class:`GhsomConfig`).
    random_state:
        Overrides ``config.random_state`` when given.

    Example
    -------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> data = np.concatenate([rng.normal(0, 0.1, (100, 4)), rng.normal(1, 0.1, (100, 4))])
    >>> model = Ghsom(GhsomConfig(tau1=0.5, tau2=0.2, max_depth=2))
    >>> _ = model.fit(data)
    >>> model.n_maps >= 1
    True
    """

    def __init__(
        self,
        config: Optional[GhsomConfig] = None,
        random_state: RandomState = None,
    ) -> None:
        self.config = config or GhsomConfig()
        seed = self.config.random_state if random_state is None else random_state
        self._rng = ensure_rng(seed)
        self.root: Optional[GhsomNode] = None
        self.qe0: float = 0.0
        self.n_features: Optional[int] = None
        self._compiled: Optional[CompiledGhsom] = None

    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self.root is not None

    def _check_fitted(self) -> None:
        if self.root is None:
            raise NotFittedError("Ghsom must be fitted before it can be used")

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def fit(self, data) -> "Ghsom":
        """Build the hierarchy on ``data``."""
        self._compiled = None
        matrix = check_array_2d(data, "data", min_rows=2)
        self.n_features = matrix.shape[1]
        self.qe0 = dataset_quantization_error(matrix, metric=self.config.training.metric)
        if self.qe0 == 0.0:
            # Degenerate dataset (all rows identical): a single 2x2 layer suffices.
            self.qe0 = 1e-12
        root_layer = GrowingSom(
            n_features=self.n_features,
            config=self.config,
            parent_qe=self.qe0,
            random_state=self._rng,
        )
        root_layer.fit(matrix)
        self.root = GhsomNode(node_id="root", layer=root_layer, depth=1)
        self._record_unit_statistics(self.root, matrix)
        self._expand_node(self.root, matrix)
        return self

    def _record_unit_statistics(self, node: GhsomNode, data: np.ndarray) -> None:
        node.unit_qe = node.layer.unit_errors(data, reduction="mean")
        node.unit_count = node.layer.unit_counts(data)

    def _expand_node(self, node: GhsomNode, data: np.ndarray) -> None:
        """Vertically expand the units of ``node`` that violate the depth criterion."""
        if node.depth >= self.config.max_depth:
            return
        assignments = node.layer.transform(data)
        depth_threshold = self.config.tau2 * self.qe0
        expandable_units = [
            unit
            for unit in range(node.n_units)
            if node.unit_count[unit] >= self.config.min_samples_for_expansion
            and node.unit_qe[unit] > depth_threshold
        ]
        if not expandable_units:
            return
        child_rngs = spawn_rngs(self._rng, len(expandable_units))
        for unit, child_rng in zip(expandable_units, child_rngs, strict=True):
            subset = data[assignments == unit]
            if subset.shape[0] < self.config.min_samples_for_expansion:
                continue
            child_layer = GrowingSom(
                n_features=self.n_features,
                config=self.config,
                parent_qe=float(node.unit_qe[unit]),
                random_state=child_rng,
            )
            child_layer.fit(subset)
            child = GhsomNode(
                node_id=f"{node.node_id}/{unit}",
                layer=child_layer,
                depth=node.depth + 1,
                parent_unit=unit,
            )
            self._record_unit_statistics(child, subset)
            node.children[unit] = child
            self._expand_node(child, subset)

    # ------------------------------------------------------------------ #
    # inference
    # ------------------------------------------------------------------ #
    def compile(self) -> CompiledGhsom:
        """The flat-array inference engine for this tree (compiled once per fit).

        The snapshot is cached; :meth:`fit` invalidates it.  See
        :mod:`repro.core.compiled` for the representation.
        """
        self._check_fitted()
        if self._compiled is None:
            self._compiled = compile_ghsom(self)
        return self._compiled

    def assign_arrays(self, data) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized leaf assignment: ``(leaf_index, distance)`` ndarrays.

        ``leaf_index`` rows index the compiled leaf table
        (``self.compile().leaf_keys``); no per-sample Python objects are
        created.  This is the fast path every batch consumer should use.
        """
        return self.compile().assign_arrays(data)

    def assign(self, data) -> List[LeafAssignment]:
        """Descend the hierarchy for every sample and return its leaf assignment."""
        compiled = self.compile()
        leaf_index, distances = compiled.assign_arrays(data)
        keys = compiled.leaf_keys
        depths = compiled.leaf_depth
        return [
            LeafAssignment(
                node_id=keys[row][0],
                unit=keys[row][1],
                depth=int(depths[row]),
                distance=float(distance),
            )
            for row, distance in zip(leaf_index, distances, strict=True)
        ]

    def assign_legacy(self, data) -> List[LeafAssignment]:
        """Reference recursive descent (kept for equivalence tests and benchmarks).

        Materialises one :class:`LeafAssignment` per sample while walking the
        tree node by node — the pre-compilation implementation of
        :meth:`assign`, preserved verbatim so the compiled engine can be
        checked against it bit for bit.
        """
        self._check_fitted()
        matrix = check_array_2d(data, "data")
        if matrix.shape[1] != self.n_features:
            raise DataValidationError(
                f"data has {matrix.shape[1]} features, the model expects {self.n_features}"
            )
        results: List[Optional[LeafAssignment]] = [None] * matrix.shape[0]
        self._assign_batch(self.root, matrix, np.arange(matrix.shape[0]), results)
        return [assignment for assignment in results if assignment is not None]

    def _assign_batch(
        self,
        node: GhsomNode,
        matrix: np.ndarray,
        indices: np.ndarray,
        results: List[Optional[LeafAssignment]],
    ) -> None:
        if indices.size == 0:
            return
        subset = matrix[indices]
        units = node.layer.transform(subset)
        distances = node.layer.quantization_distances(subset)
        for unit in np.unique(units):
            unit = int(unit)
            mask = units == unit
            selected = indices[mask]
            child = node.children.get(unit)
            if child is not None:
                self._assign_batch(child, matrix, selected, results)
            else:
                for position, sample_index in enumerate(selected):
                    sample_distance = float(distances[mask][position])
                    results[sample_index] = LeafAssignment(
                        node_id=node.node_id,
                        unit=unit,
                        depth=node.depth,
                        distance=sample_distance,
                    )

    def transform(self, data) -> np.ndarray:
        """Distance of each sample to its leaf BMU (the raw anomaly score)."""
        return self.assign_arrays(data)[1]

    def leaf_keys(self, data) -> List[Tuple[str, int]]:
        """``(node_id, unit)`` leaf identity per sample."""
        compiled = self.compile()
        leaf_index, _ = compiled.assign_arrays(data)
        return compiled.keys_of(leaf_index)

    # ------------------------------------------------------------------ #
    # structure inspection
    # ------------------------------------------------------------------ #
    def iter_nodes(self) -> Iterator[GhsomNode]:
        """Iterate over every layer of the hierarchy (pre-order)."""
        self._check_fitted()
        yield from self.root.iter_subtree()

    def get_node(self, node_id: str) -> GhsomNode:
        """Look a layer up by its ``node_id``."""
        for node in self.iter_nodes():
            if node.node_id == node_id:
                return node
        raise KeyError(f"no GHSOM node with id {node_id!r}")

    @property
    def n_maps(self) -> int:
        """Total number of layers in the hierarchy."""
        return sum(1 for _ in self.iter_nodes())

    @property
    def n_units(self) -> int:
        """Total number of units across all layers."""
        return sum(node.n_units for node in self.iter_nodes())

    @property
    def n_leaf_units(self) -> int:
        """Units that have no child layer (the ones samples can land on)."""
        return sum(
            1
            for node in self.iter_nodes()
            for unit in range(node.n_units)
            if unit not in node.children
        )

    @property
    def depth(self) -> int:
        """Maximum depth of the hierarchy."""
        return max(node.depth for node in self.iter_nodes())

    def topology_summary(self) -> Dict[str, object]:
        """Structural statistics used by the topology experiment (Table 5)."""
        self._check_fitted()
        nodes = list(self.iter_nodes())
        units_per_map = [node.n_units for node in nodes]
        return {
            "n_maps": len(nodes),
            "n_units": int(np.sum(units_per_map)),
            "n_leaf_units": self.n_leaf_units,
            "depth": self.depth,
            "mean_units_per_map": float(np.mean(units_per_map)),
            "max_units_per_map": int(np.max(units_per_map)),
            "qe0": float(self.qe0),
            "tau1": self.config.tau1,
            "tau2": self.config.tau2,
        }

    def growth_history(self) -> Dict[str, List]:
        """Growth trajectories of every layer, keyed by node id (Figure 3)."""
        self._check_fitted()
        return {node.node_id: list(node.layer.growth_history) for node in self.iter_nodes()}
