"""Saving and loading trained models.

Model metadata is always serialised to a JSON document (human-inspectable,
no pickle code-execution concerns).  Three artifact format versions exist:

* **v1** — the original tree-shaped payload: the GHSOM is stored as a nested
  ``root`` node dict and loading rebuilds the full Python ``GhsomNode`` tree
  (and recompiles it before the first score).  Still read, never written.
* **v2** (default) — additionally embeds the **compiled flat arrays**
  (stacked codebook, topology arrays, leaf table — see
  :class:`~repro.core.compiled.CompiledGhsom`) and, for detectors, the
  per-leaf scoring tables (thresholds, labels, attack flags, purity) as JSON
  lists.  Loading hydrates a scoring-ready detector straight from these
  arrays: no ``GhsomNode`` objects are constructed and nothing is recompiled
  before the first score.  The tree payload is still stored, and the loaded
  detector rebuilds it lazily only if a consumer actually asks for
  ``detector.model`` (structure inspection, refit workflows).
* **v3** (binary, opt-in via ``format="binary"``) — the JSON document keeps
  all metadata (config, thresholds strategy state, tree structure, shard
  manifest) plus an **integrity header**, while every compiled array and
  per-leaf scoring table moves to an ``.npz`` sidecar written atomically
  next to the JSON.  Loading memory-maps the sidecar
  (:func:`repro.utils.mmapio.mmap_npz`), so cold start is O(metadata): the
  codebook pages fault in on first score instead of being parsed out of
  JSON.  Scores are byte-identical to v2 float64 across every load path.
  The JSON header records the sidecar's file name (resolved relative to the
  JSON file — the pair must be moved together), byte count and per-member
  CRC-32s (both always checked at load, catching truncation and stale
  pairings even when sizes happen to match) and SHA-256 (checked on
  ``verify=True`` loads, catching corruption CRC-32 cannot).

All artifact files — JSON and binary sidecars alike — are written atomically
(same-directory temp file + fsync + ``os.replace``; see
:func:`repro.utils.mmapio.atomic_write`), so a crash mid-write can never
leave a truncated, unloadable file under the target name.  A v3 save writes
the sidecar first and the JSON referencing it second: a crash between the
two leaves the old JSON pointing at a replaced sidecar, which the size /
checksum checks then report as a mismatch instead of serving silently wrong
arrays.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union, cast

import numpy as np
import numpy.typing as npt

from repro._typing import AnyArray
from repro.core.compiled import CompiledGhsom
from repro.core.config import GhsomConfig
from repro.core.detector import GhsomDetector, restore_leaf_tables
from repro.core.ghsom import Ghsom, GhsomNode
from repro.core.growing_som import GrowingSom
from repro.core.labeling import UnitLabeler
from repro.core.thresholds import threshold_from_dict
from repro.exceptions import SerializationError
from repro.serving.config import ServingConfig, effective_config
from repro.serving.planner import manifest_from_compiled
from repro.utils.mmapio import (
    atomic_write,
    load_npz,
    mmap_npz,
    npz_member_crcs,
    sha256_of_file,
    write_npz_atomic,
)

PathLike = Union[str, Path]

#: Format marker written into every JSON-only artefact so loads can fail
#: fast on incompatible files.
FORMAT_VERSION = 2

#: The binary (npz-sidecar) format written by ``format="binary"`` saves.
BINARY_FORMAT_VERSION = 3

#: Format versions the readers accept (v1 artifacts remain loadable).
SUPPORTED_FORMAT_VERSIONS = (1, 2, 3)

#: Versions the JSON-dict writers (:func:`ghsom_to_dict`,
#: :func:`detector_to_dict`) can produce; v3 splits its arrays into a binary
#: sidecar and is written through :func:`save_ghsom` / :func:`save_detector`.
JSON_WRITER_VERSIONS = (1, 2)

#: File suffix of the binary array sidecar written next to a v3 JSON file.
SIDECAR_SUFFIX = ".npz"

#: Sidecar container formats the v3 reader understands.
_SIDECAR_FORMATS = ("npz",)

#: Sentinel distinguishing "legacy keyword not passed" from explicit values
#: (including ``None``) on the deprecated loader signatures.
_UNSET = object()


def _as_int(value: object) -> int:
    """An artifact-payload value as an int (mirrors ``int()`` for JSON types)."""
    if isinstance(value, (bool, int, float, str, np.integer)):
        return int(value)
    raise SerializationError(f"expected an integer payload value, got {type(value).__name__}")


def _as_float(value: object) -> float:
    """An artifact-payload value as a float (mirrors ``float()`` for JSON types)."""
    if isinstance(value, (bool, int, float, str, np.integer, np.floating)):
        return float(value)
    raise SerializationError(f"expected a number payload value, got {type(value).__name__}")


def _as_mapping(value: object) -> Dict[str, object]:
    """An artifact-payload value as a fresh dict (mirrors ``dict()``)."""
    if isinstance(value, Mapping):
        return dict(value)
    raise SerializationError(f"expected a mapping payload value, got {type(value).__name__}")


def _as_array(value: object, dtype: npt.DTypeLike) -> AnyArray:
    """An artifact-payload value as a numpy array of ``dtype``."""
    return np.asarray(cast("npt.ArrayLike", value), dtype=dtype)


def _legacy_serving_overrides(kwargs: Dict[str, object], caller: str) -> Dict[str, object]:
    """Fold explicitly-passed legacy serving kwargs into config overrides.

    Emits a single :class:`DeprecationWarning` naming the
    :class:`~repro.serving.config.ServingConfig` replacement when any legacy
    keyword was given.  ``None`` values on keywords whose legacy default was
    ``None`` ("no preference") count as unset, so migrated callers that
    forward defaults verbatim neither warn nor override anything.
    """
    passed = {key: value for key, value in kwargs.items() if value is not _UNSET}
    for key in ("engine", "shards", "workers", "backend", "remote_workers"):
        if key in passed and passed[key] is None:
            del passed[key]
    if not passed:
        return {}
    warnings.warn(
        f"the {sorted(passed)} keyword(s) of {caller} are deprecated; pass a "
        "repro.serving.ServingConfig via config= (or flat field overrides "
        "via overrides=) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return passed


def _check_version(data: Dict[str, object]) -> int:
    version = data.get("format_version")
    if version not in SUPPORTED_FORMAT_VERSIONS:
        raise SerializationError(f"unsupported format version {version!r}")
    return _as_int(version)


def _check_writer_version(version: int) -> int:
    if version == BINARY_FORMAT_VERSION:
        raise SerializationError(
            "format v3 stores its arrays in a binary sidecar and cannot be "
            "written as a single JSON dict; use save_ghsom/save_detector "
            "with format='binary'"
        )
    if version not in JSON_WRITER_VERSIONS:
        raise SerializationError(
            f"cannot write format version {version!r}; the JSON-dict writers "
            f"support versions {JSON_WRITER_VERSIONS} (v{BINARY_FORMAT_VERSION} "
            "is written via save_ghsom/save_detector with format='binary')"
        )
    return int(version)


def check_artifact_format(format: str) -> str:
    if format not in ("json", "binary"):
        raise SerializationError(
            f"unknown artifact format {format!r}; choose 'json' or 'binary'"
        )
    return format


# --------------------------------------------------------------------------- #
# compiled flat arrays (formats v2 and v3)
# --------------------------------------------------------------------------- #
#: Array attributes of :class:`CompiledGhsom` stored in artifacts, in a fixed
#: order shared by the v2 JSON payload and the v3 sidecar member names.
#: ``unit_norms`` is derived data stored only by v3: recomputing it at load
#: time would touch every codebook page and defeat the lazy mapping.
_COMPILED_ARRAY_FIELDS = (
    "node_depths",
    "node_offsets",
    "codebook",
    "child_of_unit",
    "leaf_of_unit",
    "leaf_node",
    "leaf_unit",
    "leaf_depth",
)
_SIDECAR_COMPILED_FIELDS = _COMPILED_ARRAY_FIELDS + ("unit_norms",)

#: Per-leaf scoring-table sidecar member names (v3 detectors).  Labels are
#: stored as a fixed-width unicode array; the loader restores the object
#: dtype the in-memory tables use.
_SIDECAR_LEAF_THRESHOLDS = "leaf_thresholds"
_SIDECAR_LEAF_LABELS = "leaf_labels"
_SIDECAR_LEAF_IS_ATTACK = "leaf_is_attack"
_SIDECAR_LEAF_PURITY = "leaf_purity"


def _refuse_narrowed(compiled: CompiledGhsom) -> None:
    if compiled.dtype != np.dtype("float64"):
        raise SerializationError(
            "refusing to serialise a narrowed compiled model "
            f"(dtype={compiled.dtype}); serialise the float64 snapshot and "
            "opt into float32 at load time instead"
        )


def compiled_to_dict(compiled: CompiledGhsom) -> Dict[str, object]:
    """Serialise a :class:`CompiledGhsom` snapshot to a JSON-compatible dict.

    Only the defining arrays are stored; derived quantities (unit norms, the
    leaf-key index) are recomputed on load, and ``leaf_keys`` themselves are
    reconstructed from ``node_ids`` + the leaf table.  The codebook is always
    written from the float64 representation so artifacts stay bit-exact
    regardless of any serving-dtype cast applied in memory.
    """
    _refuse_narrowed(compiled)
    payload: Dict[str, object] = {
        "n_features": int(compiled.n_features),
        "metric": compiled.metric,
        "node_ids": list(compiled.node_ids),
    }
    for name in _COMPILED_ARRAY_FIELDS:
        payload[name] = getattr(compiled, name).tolist()
    return payload


def compiled_from_dict(data: Dict[str, object], *, dtype: str = "float64") -> CompiledGhsom:
    """Rebuild a :class:`CompiledGhsom` from :func:`compiled_to_dict` output.

    ``dtype`` selects the serving precision: the default ``"float64"``
    reproduces the saved model bit-exactly; ``"float32"`` opts into the
    narrowed serving mode (see :meth:`CompiledGhsom.astype`).
    """
    field_arrays: Dict[str, Any] = {name: data[name] for name in _COMPILED_ARRAY_FIELDS}
    compiled = CompiledGhsom.from_arrays(
        n_features=_as_int(data["n_features"]),
        metric=str(data["metric"]),
        node_ids=cast("Sequence[str]", data["node_ids"]),
        **field_arrays,
    )
    return compiled.astype(dtype)


def compiled_to_arrays(
    compiled: CompiledGhsom,
) -> Tuple[Dict[str, object], Dict[str, AnyArray]]:
    """Split a compiled snapshot into JSON metadata + binary sidecar arrays.

    The v3 counterpart of :func:`compiled_to_dict`: the returned metadata
    dict carries only scalars and node ids; every array (including the
    derived ``unit_norms``, so loading never has to touch the codebook)
    goes into the arrays mapping under its attribute name.
    """
    _refuse_narrowed(compiled)
    meta: Dict[str, object] = {
        "n_features": int(compiled.n_features),
        "metric": compiled.metric,
        "node_ids": list(compiled.node_ids),
    }
    arrays = {name: getattr(compiled, name) for name in _SIDECAR_COMPILED_FIELDS}
    return meta, arrays


def compiled_from_arrays(
    meta: Dict[str, object],
    arrays: Dict[str, AnyArray],
    *,
    dtype: str = "float64",
) -> CompiledGhsom:
    """Rebuild a compiled snapshot from v3 metadata + sidecar arrays.

    Memory-mapped inputs are adopted without copying (see
    :meth:`CompiledGhsom.from_arrays`), so the codebook stays on disk until
    the first score touches it.
    """
    missing = [name for name in _SIDECAR_COMPILED_FIELDS if name not in arrays]
    if missing:
        raise SerializationError(
            f"binary sidecar is missing compiled arrays {missing}; the file "
            "is incomplete or does not belong to this artifact"
        )
    field_arrays: Dict[str, Any] = {name: arrays[name] for name in _COMPILED_ARRAY_FIELDS}
    compiled = CompiledGhsom.from_arrays(
        n_features=_as_int(meta["n_features"]),
        metric=str(meta["metric"]),
        node_ids=cast("Sequence[str]", meta["node_ids"]),
        unit_norms=arrays["unit_norms"],
        **field_arrays,
    )
    return compiled.astype(dtype)


# --------------------------------------------------------------------------- #
# sidecar plumbing (format v3)
# --------------------------------------------------------------------------- #
def sidecar_path_for(json_path: PathLike) -> Path:
    """The sidecar path a binary save writes next to ``json_path``.

    Single owner of the naming rule (same stem, ``.npz`` suffix) so the
    writers, the CLI messaging and the benchmarks cannot drift apart.
    """
    json_path = Path(json_path)
    return json_path.parent / (json_path.stem + SIDECAR_SUFFIX)


def write_binary_sidecar(
    payload: Dict[str, object], arrays: Dict[str, AnyArray], json_path: PathLike
) -> Path:
    """Write ``arrays`` as the ``.npz`` sidecar of the JSON file at ``json_path``.

    The sidecar lands atomically next to the JSON file (see
    :func:`sidecar_path_for`) and its integrity header — relative file name,
    byte count, SHA-256, per-member CRC-32s — is stamped into
    ``payload["sidecar"]``.  Callers write the JSON *after* this returns so
    the header always describes the bytes on disk.  Returns the sidecar
    path.
    """
    json_path = Path(json_path)
    sidecar_path = sidecar_path_for(json_path)
    if sidecar_path == json_path:
        # A JSON path ending in .npz would collide with its own sidecar and
        # the second write would silently destroy the first.
        raise SerializationError(
            f"binary artifact path {json_path} collides with its sidecar "
            f"name; choose a path whose suffix is not {SIDECAR_SUFFIX!r} "
            "(conventionally .json)"
        )
    digest = write_npz_atomic(arrays, sidecar_path)
    member_crcs = cast(Dict[str, int], digest["crc32"])
    payload["sidecar"] = {
        "format": "npz",
        "path": sidecar_path.name,
        "bytes": _as_int(digest["bytes"]),
        "sha256": str(digest["sha256"]),
        "crc32": {name: int(value) for name, value in member_crcs.items()},
    }
    return sidecar_path


def artifact_sidecar_header(json_path: PathLike) -> Optional[Tuple[Path, Dict[str, object]]]:
    """The sidecar path + integrity header recorded by an artifact JSON.

    Accepts any artifact JSON this package writes — a bare detector/ghsom
    payload or a CLI bundle (whose detector payload nests one level down) —
    and returns ``(sidecar_path, header)`` with the path resolved next to
    the JSON file, or ``None`` for a JSON-only (v1/v2) artifact.  This is
    how a shard worker started with ``--model`` discovers the sidecar it
    advertises for by-reference provisioning, without hydrating the model.
    """
    json_path = Path(json_path)
    data = _read_json(json_path)
    header = data.get("sidecar")
    if not isinstance(header, dict):
        nested = data.get("detector")
        if isinstance(nested, dict):
            header = nested.get("sidecar")
    if not isinstance(header, dict):
        return None
    name = str(header.get("path", ""))
    if not name or Path(name).name != name:
        raise SerializationError(
            f"invalid sidecar path {name!r} in artifact header "
            "(must be a bare file name next to the JSON file)"
        )
    return json_path.parent / name, dict(header)


def open_sidecar(
    data: Dict[str, object],
    sidecar_dir: Optional[PathLike],
    *,
    mmap: bool = True,
    verify: bool = False,
) -> Dict[str, AnyArray]:
    """Resolve, check and open the binary sidecar of a v3 JSON payload.

    ``sidecar_dir`` is the directory the JSON file was read from (the
    sidecar path in the header is a bare file name relative to it).  The
    byte count and the per-member CRC-32s recorded in the header are always
    checked — catching truncation and stale JSON/sidecar pairings (even
    same-size ones) for the cost of a ``stat`` plus the zip-directory parse
    the open needs anyway — while the SHA-256 is checked only when
    ``verify=True`` (it must read the whole file, which defeats the lazy
    mapping's O(metadata) cold load).
    """
    header = data.get("sidecar")
    if not isinstance(header, dict):
        raise SerializationError(
            "v3 artifact has no sidecar header; the JSON file is incomplete"
        )
    container = header.get("format", "npz")
    if container not in _SIDECAR_FORMATS:
        raise SerializationError(
            f"unsupported sidecar format {container!r}; "
            f"this reader understands {_SIDECAR_FORMATS}"
        )
    name = str(header.get("path", ""))
    if not name or Path(name).name != name:
        raise SerializationError(
            f"invalid sidecar path {name!r} in artifact header "
            "(must be a bare file name next to the JSON file)"
        )
    if sidecar_dir is None:
        raise SerializationError(
            "this payload stores its arrays in a binary sidecar; load it "
            "through load_detector()/load_ghsom()/load_bundle() (or pass "
            "sidecar_dir=) so the sidecar file can be located"
        )
    path = Path(sidecar_dir) / name
    if not path.exists():
        raise SerializationError(
            f"missing binary sidecar {path}: a v3 artifact is a JSON + "
            f"{SIDECAR_SUFFIX} pair — keep the two files together"
        )
    # The always-on checks must never silently degrade: a v3 header without
    # them is as suspect as a failing one.
    expected_bytes = header.get("bytes")
    if expected_bytes is None:
        raise SerializationError(
            f"artifact header records no byte count for sidecar {path}; "
            "the JSON file is incomplete or was tampered with"
        )
    actual_bytes = path.stat().st_size
    if _as_int(expected_bytes) != actual_bytes:
        raise SerializationError(
            f"binary sidecar {path} is {actual_bytes} bytes but the "
            f"artifact header records {expected_bytes}: the sidecar is "
            "truncated or does not belong to this JSON file"
        )
    expected_crcs = header.get("crc32")
    if expected_crcs is None:
        raise SerializationError(
            f"artifact header records no member checksums for sidecar {path}; "
            "the JSON file is incomplete or was tampered with"
        )
    actual_crcs = npz_member_crcs(path)
    if actual_crcs != {name: int(value) for name, value in expected_crcs.items()}:
        raise SerializationError(
            f"binary sidecar {path} does not match the artifact header "
            "(member checksums differ): the sidecar was replaced after "
            "this JSON file was written — re-save the artifact pair"
        )
    if verify:
        expected_hash = header.get("sha256")
        if expected_hash is None:
            # A verify request must never silently degrade to no check.
            raise SerializationError(
                f"verification requested but the artifact header records no "
                f"sha256 for sidecar {path}; the JSON file is incomplete or "
                "was tampered with"
            )
        if sha256_of_file(path) != expected_hash:
            raise SerializationError(
                f"binary sidecar {path} fails its integrity check "
                "(sha256 mismatch): the file is corrupt or does not belong "
                "to this JSON artifact"
            )
    return mmap_npz(path) if mmap else load_npz(path)


# --------------------------------------------------------------------------- #
# GHSOM model
# --------------------------------------------------------------------------- #
def _node_to_dict(node: GhsomNode, *, include_codebook: bool = True) -> Dict[str, object]:
    payload: Dict[str, object] = {
        "node_id": node.node_id,
        "depth": node.depth,
        "parent_unit": node.parent_unit,
        "rows": node.layer.grid.rows,
        "cols": node.layer.grid.cols,
        "parent_qe": node.layer.parent_qe,
        "unit_qe": np.asarray(node.unit_qe, dtype=float).tolist(),
        "unit_count": np.asarray(node.unit_count, dtype=int).tolist(),
        "children": {
            str(unit): _node_to_dict(child, include_codebook=include_codebook)
            for unit, child in node.children.items()
        },
    }
    if include_codebook:
        # v1 payloads carry each layer's codebook inline; v2/v3 payloads
        # store every codebook exactly once, in the compiled stacked array,
        # and the tree nodes reference their slice of it by node id.
        payload["codebook"] = node.layer.codebook.tolist()
    return payload


def _node_from_dict(
    data: Dict[str, object],
    config: GhsomConfig,
    n_features: int,
    codebooks: Optional[Dict[str, AnyArray]] = None,
) -> GhsomNode:
    rows = _as_int(data["rows"])
    cols = _as_int(data["cols"])
    layer = GrowingSom(
        n_features=n_features,
        config=config,
        parent_qe=_as_float(data["parent_qe"]),
        random_state=config.random_state,
    )
    if "codebook" in data:
        codebook = _as_array(data["codebook"], float)
    elif codebooks is not None and str(data["node_id"]) in codebooks:
        codebook = np.array(codebooks[str(data["node_id"])], dtype=float)
    else:
        raise SerializationError(
            f"node {data.get('node_id')!r} has no inline codebook and no "
            "compiled codebook slice to restore it from"
        )
    layer._replace_map(layer.grid.__class__(rows, cols), codebook)  # reuse swap helper
    layer.som._fitted = True
    layer._fitted = True
    node = GhsomNode(
        node_id=str(data["node_id"]),
        layer=layer,
        depth=_as_int(data["depth"]),
        parent_unit=None if data["parent_unit"] is None else _as_int(data["parent_unit"]),
        unit_qe=_as_array(data["unit_qe"], float),
        unit_count=_as_array(data["unit_count"], int),
    )
    for unit, child_data in _as_mapping(data.get("children") or {}).items():
        node.children[int(unit)] = _node_from_dict(
            _as_mapping(child_data), config, n_features, codebooks
        )
    return node


def _codebook_slices(compiled: CompiledGhsom) -> Dict[str, AnyArray]:
    """Per-node views into the compiled stacked codebook, keyed by node id."""
    offsets = compiled.node_offsets
    return {
        node_id: compiled.codebook[int(offsets[index]) : int(offsets[index + 1])]
        for index, node_id in enumerate(compiled.node_ids)
    }


def _ghsom_payload(
    model: Ghsom, version: int, arrays: Optional[Dict[str, AnyArray]]
) -> Dict[str, object]:
    """Shared GHSOM payload builder; ``arrays`` collects sidecar data (v3)."""
    if not model.is_fitted:
        raise SerializationError("cannot serialise an unfitted Ghsom")
    payload: Dict[str, object] = {
        "format_version": version,
        "kind": "ghsom",
        "config": model.config.to_dict(),
        "qe0": model.qe0,
        "n_features": model.n_features,
        # v2/v3 store every codebook once, in the compiled stacked array; the
        # tree payload keeps only structure + per-unit statistics.
        "root": _node_to_dict(model.root, include_codebook=version < 2),
    }
    if version == 2:
        payload["compiled"] = compiled_to_dict(model.compile())
    elif version >= 3:
        if arrays is None:
            raise SerializationError("binary payloads need a sidecar arrays mapping")
        meta, compiled_arrays = compiled_to_arrays(model.compile())
        payload["compiled"] = meta
        arrays.update(compiled_arrays)
    return payload


def ghsom_to_dict(model: Ghsom, *, version: int = FORMAT_VERSION) -> Dict[str, object]:
    """Serialise a fitted :class:`Ghsom` to a JSON-compatible dict.

    ``version=1`` writes the legacy tree-only payload (used by the round-trip
    regression tests and the serving benchmark to exercise the v1 reader);
    the default v2 payload additionally embeds the compiled flat arrays.
    The binary v3 format cannot be expressed as a single dict — use
    :func:`save_ghsom` with ``format="binary"``.
    """
    _check_writer_version(version)
    return _ghsom_payload(model, version, None)


def ghsom_from_dict(
    data: Dict[str, object],
    *,
    compiled: Optional[CompiledGhsom] = None,
    arrays: Optional[Dict[str, AnyArray]] = None,
) -> Ghsom:
    """Rebuild a :class:`Ghsom` from a stored payload.

    v2 payloads hydrate the compiled inference engine directly from the
    embedded arrays; v3 payloads need their sidecar ``arrays`` (resolved by
    :func:`load_ghsom`) for the same.  An already-hydrated float64
    ``compiled`` snapshot may be passed in place of either (the detector
    loader does this so its lazy tree hydration does not have to keep the
    parsed payload arrays alive).
    """
    if data.get("kind") != "ghsom":
        raise SerializationError(f"payload is not a ghsom model (kind={data.get('kind')!r})")
    version = _check_version(data)
    config = GhsomConfig.from_dict(_as_mapping(data["config"]))
    model = Ghsom(config)
    model.qe0 = _as_float(data["qe0"])
    model.n_features = _as_int(data["n_features"])
    if compiled is None and version >= 3:
        if arrays is None:
            raise SerializationError(
                "format v3 stores its arrays in a binary sidecar; load the "
                "model through load_ghsom()/load_detector() so the sidecar "
                "can be resolved"
            )
        compiled = compiled_from_arrays(_as_mapping(data["compiled"]), arrays)
    if compiled is None and version == 2 and data.get("compiled") is not None:
        compiled = compiled_from_dict(_as_mapping(data["compiled"]))
    if compiled is not None and compiled.dtype != np.dtype("float64"):
        raise SerializationError(
            "cannot rebuild a tree from a narrowed compiled snapshot "
            f"(dtype={compiled.dtype}); pass the float64 snapshot"
        )
    codebooks = _codebook_slices(compiled) if compiled is not None else None
    model.root = _node_from_dict(_as_mapping(data["root"]), config, model.n_features, codebooks)
    if compiled is not None:
        model._compiled = compiled
    return model


def save_ghsom(model: Ghsom, path: PathLike, *, format: str = "json") -> None:
    """Write a fitted GHSOM to ``path`` (atomically).

    ``format="json"`` writes the default single-document v2 artifact;
    ``format="binary"`` writes the v3 pair — metadata JSON at ``path`` plus
    an ``.npz`` array sidecar next to it.
    """
    if check_artifact_format(format) == "binary":
        arrays: Dict[str, AnyArray] = {}
        payload = _ghsom_payload(model, BINARY_FORMAT_VERSION, arrays)
        write_binary_sidecar(payload, arrays, path)
        write_json_atomic(payload, path)
    else:
        write_json_atomic(ghsom_to_dict(model), path)


def load_ghsom(path: PathLike, *, mmap: bool = True, verify: bool = False) -> Ghsom:
    """Load a GHSOM previously written by :func:`save_ghsom` (any version).

    The format is auto-detected from the JSON header.  For v3 artifacts
    ``mmap=False`` opts out of memory-mapping (arrays are read eagerly) and
    ``verify=True`` additionally checks the sidecar's SHA-256.
    """
    path = Path(path)
    data = _read_json(path)
    arrays: Optional[Dict[str, AnyArray]] = None
    if data.get("format_version") == BINARY_FORMAT_VERSION:
        arrays = open_sidecar(data, path.parent, mmap=mmap, verify=verify)
    return ghsom_from_dict(data, arrays=arrays)


# --------------------------------------------------------------------------- #
# GHSOM detector (model + labels + thresholds)
# --------------------------------------------------------------------------- #
def _detector_payload(
    detector: GhsomDetector, version: int, arrays: Optional[Dict[str, AnyArray]]
) -> Dict[str, object]:
    """Shared detector payload builder; ``arrays`` collects sidecar data (v3)."""
    if not detector.is_fitted:
        raise SerializationError("cannot serialise an unfitted GhsomDetector")
    payload: Dict[str, object] = {
        "format_version": version,
        "kind": "ghsom_detector",
        "model": _ghsom_payload(detector.model, version, arrays),
        "labeler": detector.labeler.to_dict() if detector.labeler is not None else None,
        "threshold": detector.threshold_.to_dict(),
        "threshold_strategy_name": detector.threshold_strategy_name,
        "threshold_kwargs": detector.threshold_kwargs,
        "labeling_strategy": detector.labeling_strategy,
        "calibrate_on_normal_only": detector.calibrate_on_normal_only,
    }
    if version >= 2:
        # The detector's serving configuration travels inside the artifact,
        # so loading hydrates a fully-configured detector (dtype, engine,
        # sharding, artifact options) unless the caller overrides it — see
        # repro.serving.config.effective_config for the precedence rule.
        payload["serving_config"] = detector.serving_config.to_dict()
        # Generators are process-local state; only reproducible seeds persist.
        random_state = detector.random_state
        payload["random_state"] = (
            int(random_state) if isinstance(random_state, (int, np.integer)) else None
        )
        tables = detector._leaf_tables()
        if version == 2:
            payload["leaf_tables"] = {
                "thresholds": np.asarray(tables.thresholds, dtype=float).tolist(),
                "labels": None if tables.labels is None else [str(v) for v in tables.labels],
                "is_attack": None if tables.is_attack is None else tables.is_attack.astype(bool).tolist(),
                "purity": None if tables.purity is None else tables.purity.tolist(),
            }
        else:
            # v3: the numeric tables ride in the sidecar; labels travel as a
            # fixed-width unicode array (npz stores those without pickle).
            if arrays is None:
                raise SerializationError("binary payloads need a sidecar arrays mapping")
            arrays[_SIDECAR_LEAF_THRESHOLDS] = np.asarray(tables.thresholds, dtype=float)
            labelled = tables.labels is not None
            if labelled:
                arrays[_SIDECAR_LEAF_LABELS] = np.asarray(
                    [str(v) for v in tables.labels]
                )
                arrays[_SIDECAR_LEAF_IS_ATTACK] = tables.is_attack.astype(bool)
                arrays[_SIDECAR_LEAF_PURITY] = np.asarray(tables.purity, dtype=float)
            payload["leaf_tables"] = {"storage": "sidecar", "labelled": labelled}
        # The partition-independent subtree layout: lets ``load_bundle`` /
        # ``set_sharding`` slice worker shards straight from the stored
        # arrays instead of re-deriving the plan (see repro.serving.planner).
        payload["shard_manifest"] = manifest_from_compiled(tables.compiled)
    return payload


def detector_to_dict(
    detector: GhsomDetector, *, version: int = FORMAT_VERSION
) -> Dict[str, object]:
    """Serialise a fitted :class:`GhsomDetector` (model, labels, thresholds).

    The default v2 payload embeds the compiled arrays plus the per-leaf
    scoring tables so :func:`detector_from_dict` can return a scoring-ready
    detector without touching the tree; ``version=1`` writes the legacy
    payload for compatibility testing.  The binary v3 format cannot be
    expressed as a single dict — use :func:`save_detector` with
    ``format="binary"``.
    """
    _check_writer_version(version)
    return _detector_payload(detector, version, None)


def detector_binary_payload(
    detector: GhsomDetector,
) -> Tuple[Dict[str, object], Dict[str, AnyArray]]:
    """The v3 JSON payload + sidecar arrays of a fitted detector.

    The payload carries no ``sidecar`` header yet — writers call
    :func:`write_binary_sidecar` (which stamps it) before serialising the
    JSON.  Exposed for composite artifacts such as the CLI bundle, which
    nests the detector payload inside its own JSON document while sharing
    one sidecar file.
    """
    arrays: Dict[str, AnyArray] = {}
    payload = _detector_payload(detector, BINARY_FORMAT_VERSION, arrays)
    return payload, arrays


def _restored_labels(labels: Optional[AnyArray]) -> Optional[AnyArray]:
    """Sidecar label array (fixed-width unicode) -> the object dtype used in memory."""
    if labels is None:
        return None
    return np.asarray(np.asarray(labels).tolist(), dtype=object)


def detector_from_dict(
    data: Dict[str, object],
    *,
    config: Optional[ServingConfig] = None,
    overrides: Optional[Mapping[str, object]] = None,
    sidecar_dir: Optional[PathLike] = None,
    arrays: Optional[Dict[str, AnyArray]] = None,
    dtype: object = _UNSET,
    mmap: object = _UNSET,
    verify: object = _UNSET,
    engine: object = _UNSET,
) -> GhsomDetector:
    """Rebuild a :class:`GhsomDetector` from a stored payload (any version).

    For v2/v3 payloads the returned detector serves straight from the stored
    compiled arrays and leaf tables — no ``GhsomNode`` objects are built and
    no compile pass runs before the first score; the tree payload is parked
    behind a lazy loader that only fires when ``detector.model`` is accessed.
    v1 payloads fall back to the legacy full tree rebuild.

    v3 payloads additionally need their binary sidecar: pass ``sidecar_dir``
    (the directory the JSON was read from — :func:`load_detector` does) or a
    pre-opened ``arrays`` mapping.

    How the detector serves is governed by one
    :class:`~repro.serving.config.ServingConfig` with the standard
    precedence (see :func:`repro.serving.config.effective_config`): a full
    ``config`` wins wholesale; otherwise flat ``overrides`` (dtype, engine,
    provider, shards, workers, backend, remote_workers, provisioning, mmap,
    verify) apply field-wise on top of the artifact-embedded config (v2+
    payloads carry the config the detector was saved with; older artifacts
    fall back to the library default).  The resolved config also controls
    how the sidecar is opened.  Scores are bit-exact against the saved
    detector only at the default ``"float64"`` dtype.

    The ``dtype`` / ``mmap`` / ``verify`` / ``engine`` keywords are the
    deprecated pre-config spelling; they behave as the equivalent
    ``overrides`` and emit a :class:`DeprecationWarning`.
    """
    if data.get("kind") != "ghsom_detector":
        raise SerializationError(
            f"payload is not a ghsom detector (kind={data.get('kind')!r})"
        )
    merged = dict(overrides or {})
    merged.update(
        _legacy_serving_overrides(
            {"dtype": dtype, "mmap": mmap, "verify": verify, "engine": engine},
            "detector_from_dict()",
        )
    )
    serving = effective_config(
        config=config,
        overrides=merged or None,
        embedded=cast("Optional[Mapping[str, object]]", data.get("serving_config")),
    )
    version = _check_version(data)
    if version >= 3 and arrays is None:
        arrays = open_sidecar(
            data, sidecar_dir, mmap=serving.artifact.mmap, verify=serving.artifact.verify
        )
    model_payload = _as_mapping(data["model"])
    ghsom_config = GhsomConfig.from_dict(_as_mapping(model_payload["config"]))
    random_state = data.get("random_state")
    detector = GhsomDetector(
        config=ghsom_config,
        threshold_strategy=str(data.get("threshold_strategy_name", "per_unit")),
        threshold_kwargs=_as_mapping(data.get("threshold_kwargs") or {}),
        labeling_strategy=str(data.get("labeling_strategy", "majority")),
        calibrate_on_normal_only=bool(data.get("calibrate_on_normal_only", True)),
        random_state=None if random_state is None else _as_int(random_state),
    )
    labeler_payload: Optional[Dict[str, object]] = data.get("labeler")  # type: ignore[assignment]
    detector.labeler = UnitLabeler.from_dict(labeler_payload) if labeler_payload else None
    detector.threshold_ = threshold_from_dict(_as_mapping(data["threshold"]))
    manifest_payload = data.get("shard_manifest")
    if manifest_payload is not None:
        # Kept verbatim: set_sharding() uses it to slice worker shards
        # without re-deriving the subtree layout from the arrays.
        detector._shard_manifest = _as_mapping(manifest_payload)
    if version >= 2 and model_payload.get("compiled") is not None:
        # Keep the exact float64 snapshot for lazy tree hydration even when
        # serving narrowed; when dtype is float64, astype returns it as-is.
        if version >= 3:
            assert arrays is not None  # opened above for every v3 payload
            exact = compiled_from_arrays(_as_mapping(model_payload["compiled"]), arrays)
        else:
            exact = compiled_from_dict(_as_mapping(model_payload["compiled"]))
        compiled = exact.astype(serving.dtype)
        detector._compiled = compiled
        # The loader closure carries only the tree-structure payload plus the
        # in-memory float64 arrays — not the parsed JSON codebook lists (or
        # the open sidecar mapping), which would otherwise stay resident for
        # the detector's whole lifetime.
        tree_payload = {
            key: value for key, value in model_payload.items() if key != "compiled"
        }
        detector._model_loader = lambda: ghsom_from_dict(tree_payload, compiled=exact)
        # Normalise both storage layouts to one {thresholds, labels,
        # is_attack, purity} dict so table restoration itself has a single
        # code path regardless of where the arrays came from.
        tables: Dict[str, object]
        if version >= 3:
            assert arrays is not None  # opened above for every v3 payload
            tables = {
                "thresholds": arrays.get(_SIDECAR_LEAF_THRESHOLDS),
                "labels": _restored_labels(arrays.get(_SIDECAR_LEAF_LABELS)),
                "is_attack": arrays.get(_SIDECAR_LEAF_IS_ATTACK),
                "purity": arrays.get(_SIDECAR_LEAF_PURITY),
            }
        else:
            tables = _as_mapping(data.get("leaf_tables") or {})
        if tables.get("thresholds") is not None:
            detector._tables = restore_leaf_tables(
                compiled,
                detector.threshold_,
                detector.labeler,
                thresholds=_as_array(tables["thresholds"], float),
                labels=(
                    None
                    if tables.get("labels") is None
                    else _as_array(tables["labels"], object)
                ),
                is_attack=(
                    None
                    if tables.get("is_attack") is None
                    else _as_array(tables["is_attack"], bool)
                ),
                purity=(
                    None
                    if tables.get("purity") is None
                    else _as_array(tables["purity"], float)
                ),
            )
    else:
        # v1: full tree rebuild; any non-default dtype is applied by the
        # configure() call below (it narrows from the freshly compiled tree).
        detector.model = ghsom_from_dict(model_payload)
    # One atomic application of the effective config: dtype (already matching
    # on the v2/v3 path above, so the snapshot is kept), engine (resolved
    # strictly — an unprovidable "fused" request fails here rather than at
    # first score) and sharding (the backend is constructed eagerly).
    detector.configure(serving)
    return detector


def save_detector(
    detector: GhsomDetector, path: PathLike, *, format: str = "json"
) -> None:
    """Write a fitted detector to ``path`` (atomically).

    ``format="json"`` writes the default single-document v2 artifact;
    ``format="binary"`` writes the v3 pair — metadata JSON at ``path`` plus
    an ``.npz`` array sidecar next to it (sidecar first, then the JSON whose
    header records the sidecar's size and SHA-256).
    """
    if check_artifact_format(format) == "binary":
        payload, arrays = detector_binary_payload(detector)
        write_binary_sidecar(payload, arrays, path)
        write_json_atomic(payload, path)
    else:
        write_json_atomic(detector_to_dict(detector), path)


def load_detector(
    path: PathLike,
    *,
    config: Optional[ServingConfig] = None,
    overrides: Optional[Mapping[str, object]] = None,
    dtype: object = _UNSET,
    mmap: object = _UNSET,
    verify: object = _UNSET,
    engine: object = _UNSET,
) -> GhsomDetector:
    """Load a detector previously written by :func:`save_detector` (any version).

    The format is auto-detected from the JSON header.  Serving is governed
    by one :class:`~repro.serving.config.ServingConfig` with the standard
    precedence — ``config`` wholesale, else ``overrides`` field-wise on top
    of the artifact-embedded config — exactly as documented on
    :func:`detector_from_dict`; the resolved config also controls how a v3
    sidecar is opened (``mmap`` / ``verify``).  The ``dtype`` / ``mmap`` /
    ``verify`` / ``engine`` keywords are the deprecated pre-config spelling
    (they behave as the equivalent ``overrides`` and warn once).
    """
    path = Path(path)
    merged = dict(overrides or {})
    merged.update(
        _legacy_serving_overrides(
            {"dtype": dtype, "mmap": mmap, "verify": verify, "engine": engine},
            "load_detector()",
        )
    )
    return detector_from_dict(
        _read_json(path),
        config=config,
        overrides=merged or None,
        sidecar_dir=path.parent,
    )


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
def write_json_atomic(payload: Dict[str, object], path: PathLike) -> None:
    """Serialise ``payload`` to ``path`` via the shared atomic-write path.

    Same-directory temp file + fsync + ``os.replace`` (see
    :func:`repro.utils.mmapio.atomic_write`), so readers only ever observe
    the old file or the complete new one — never a truncated artifact from a
    crash mid-write.
    """
    path = Path(path)
    try:
        text = json.dumps(payload)
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"could not serialise model to {path}: {exc}") from exc
    atomic_write(path, lambda stream: stream.write(text))


def _read_json(path: PathLike) -> Dict[str, object]:
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"model file does not exist: {path}")
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"could not parse model file {path}: {exc}") from exc
