"""Saving and loading trained models.

Models are serialised to a single JSON document (codebooks stored as nested
lists).  JSON keeps the artefacts human-inspectable and avoids pickle's code
execution concerns; the models involved are small (a few hundred units of a
few dozen dimensions), so the size overhead of a text format is irrelevant.

Two artifact format versions exist:

* **v1** — the original tree-shaped payload: the GHSOM is stored as a nested
  ``root`` node dict and loading rebuilds the full Python ``GhsomNode`` tree
  (and recompiles it before the first score).  Still read, never written.
* **v2** (current) — additionally embeds the **compiled flat arrays**
  (stacked codebook, topology arrays, leaf table — see
  :class:`~repro.core.compiled.CompiledGhsom`) and, for detectors, the
  per-leaf scoring tables (thresholds, labels, attack flags, purity).
  Loading hydrates a scoring-ready detector straight from these arrays: no
  ``GhsomNode`` objects are constructed and nothing is recompiled before the
  first score.  The tree payload is still stored, and the loaded detector
  rebuilds it lazily only if a consumer actually asks for ``detector.model``
  (structure inspection, refit workflows).

All files are written atomically: the payload goes to a temporary file in the
target directory first and is renamed into place, so a crash mid-write can
never leave a truncated, unloadable artifact behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.core.compiled import CompiledGhsom
from repro.core.config import GhsomConfig
from repro.core.detector import GhsomDetector, restore_leaf_tables
from repro.core.ghsom import Ghsom, GhsomNode
from repro.core.growing_som import GrowingSom
from repro.core.labeling import UnitLabeler
from repro.core.thresholds import threshold_from_dict
from repro.exceptions import SerializationError
from repro.serving.planner import manifest_from_compiled

PathLike = Union[str, Path]

#: Format marker written into every artefact so loads can fail fast on
#: incompatible files.
FORMAT_VERSION = 2

#: Format versions the readers accept (v1 artifacts remain loadable).
SUPPORTED_FORMAT_VERSIONS = (1, 2)


def _check_version(data: Dict[str, object]) -> int:
    version = data.get("format_version")
    if version not in SUPPORTED_FORMAT_VERSIONS:
        raise SerializationError(f"unsupported format version {version!r}")
    return int(version)  # type: ignore[arg-type]


def _check_writer_version(version: int) -> int:
    if version not in SUPPORTED_FORMAT_VERSIONS:
        raise SerializationError(
            f"cannot write format version {version!r}; "
            f"supported versions are {SUPPORTED_FORMAT_VERSIONS}"
        )
    return int(version)


# --------------------------------------------------------------------------- #
# compiled flat arrays (format v2)
# --------------------------------------------------------------------------- #
def compiled_to_dict(compiled: CompiledGhsom) -> Dict[str, object]:
    """Serialise a :class:`CompiledGhsom` snapshot to a JSON-compatible dict.

    Only the defining arrays are stored; derived quantities (unit norms, the
    leaf-key index) are recomputed on load, and ``leaf_keys`` themselves are
    reconstructed from ``node_ids`` + the leaf table.  The codebook is always
    written from the float64 representation so artifacts stay bit-exact
    regardless of any serving-dtype cast applied in memory.
    """
    if compiled.dtype != np.dtype("float64"):
        raise SerializationError(
            "refusing to serialise a narrowed compiled model "
            f"(dtype={compiled.dtype}); serialise the float64 snapshot and "
            "opt into float32 at load time instead"
        )
    return {
        "n_features": int(compiled.n_features),
        "metric": compiled.metric,
        "node_ids": list(compiled.node_ids),
        "node_depths": compiled.node_depths.tolist(),
        "node_offsets": compiled.node_offsets.tolist(),
        "codebook": compiled.codebook.tolist(),
        "child_of_unit": compiled.child_of_unit.tolist(),
        "leaf_of_unit": compiled.leaf_of_unit.tolist(),
        "leaf_node": compiled.leaf_node.tolist(),
        "leaf_unit": compiled.leaf_unit.tolist(),
        "leaf_depth": compiled.leaf_depth.tolist(),
    }


def compiled_from_dict(data: Dict[str, object], *, dtype: str = "float64") -> CompiledGhsom:
    """Rebuild a :class:`CompiledGhsom` from :func:`compiled_to_dict` output.

    ``dtype`` selects the serving precision: the default ``"float64"``
    reproduces the saved model bit-exactly; ``"float32"`` opts into the
    narrowed serving mode (see :meth:`CompiledGhsom.astype`).
    """
    node_ids = tuple(str(node_id) for node_id in data["node_ids"])
    codebook = np.ascontiguousarray(np.asarray(data["codebook"], dtype=float))
    leaf_node = np.asarray(data["leaf_node"], dtype=np.intp)
    leaf_unit = np.asarray(data["leaf_unit"], dtype=np.intp)
    leaf_keys = tuple(
        (node_ids[node], int(unit)) for node, unit in zip(leaf_node, leaf_unit)
    )
    compiled = CompiledGhsom(
        n_features=int(data["n_features"]),
        metric=str(data["metric"]),
        node_ids=node_ids,
        node_depths=np.asarray(data["node_depths"], dtype=np.intp),
        node_offsets=np.asarray(data["node_offsets"], dtype=np.intp),
        codebook=codebook,
        child_of_unit=np.asarray(data["child_of_unit"], dtype=np.intp),
        leaf_of_unit=np.asarray(data["leaf_of_unit"], dtype=np.intp),
        leaf_node=leaf_node,
        leaf_unit=leaf_unit,
        leaf_depth=np.asarray(data["leaf_depth"], dtype=np.intp),
        leaf_keys=leaf_keys,
        unit_norms=np.einsum("ij,ij->i", codebook, codebook),
        _leaf_index_of={key: row for row, key in enumerate(leaf_keys)},
    )
    return compiled.astype(dtype)


# --------------------------------------------------------------------------- #
# GHSOM model
# --------------------------------------------------------------------------- #
def _node_to_dict(node: GhsomNode, *, include_codebook: bool = True) -> Dict[str, object]:
    payload: Dict[str, object] = {
        "node_id": node.node_id,
        "depth": node.depth,
        "parent_unit": node.parent_unit,
        "rows": node.layer.grid.rows,
        "cols": node.layer.grid.cols,
        "parent_qe": node.layer.parent_qe,
        "unit_qe": np.asarray(node.unit_qe, dtype=float).tolist(),
        "unit_count": np.asarray(node.unit_count, dtype=int).tolist(),
        "children": {
            str(unit): _node_to_dict(child, include_codebook=include_codebook)
            for unit, child in node.children.items()
        },
    }
    if include_codebook:
        # v1 payloads carry each layer's codebook inline; v2 payloads store
        # every codebook exactly once, in the compiled stacked array, and the
        # tree nodes reference their slice of it by node id.
        payload["codebook"] = node.layer.codebook.tolist()
    return payload


def _node_from_dict(
    data: Dict[str, object],
    config: GhsomConfig,
    n_features: int,
    codebooks: Optional[Dict[str, np.ndarray]] = None,
) -> GhsomNode:
    rows = int(data["rows"])
    cols = int(data["cols"])
    layer = GrowingSom(
        n_features=n_features,
        config=config,
        parent_qe=float(data["parent_qe"]),
        random_state=config.random_state,
    )
    if "codebook" in data:
        codebook = np.asarray(data["codebook"], dtype=float)
    elif codebooks is not None and str(data["node_id"]) in codebooks:
        codebook = np.array(codebooks[str(data["node_id"])], dtype=float)
    else:
        raise SerializationError(
            f"node {data.get('node_id')!r} has no inline codebook and no "
            "compiled codebook slice to restore it from"
        )
    layer._replace_map(layer.grid.__class__(rows, cols), codebook)  # reuse swap helper
    layer.som._fitted = True
    layer._fitted = True
    node = GhsomNode(
        node_id=str(data["node_id"]),
        layer=layer,
        depth=int(data["depth"]),
        parent_unit=None if data["parent_unit"] is None else int(data["parent_unit"]),
        unit_qe=np.asarray(data["unit_qe"], dtype=float),
        unit_count=np.asarray(data["unit_count"], dtype=int),
    )
    for unit, child_data in dict(data.get("children", {})).items():
        node.children[int(unit)] = _node_from_dict(child_data, config, n_features, codebooks)
    return node


def _codebook_slices(compiled: CompiledGhsom) -> Dict[str, np.ndarray]:
    """Per-node views into the compiled stacked codebook, keyed by node id."""
    offsets = compiled.node_offsets
    return {
        node_id: compiled.codebook[int(offsets[index]) : int(offsets[index + 1])]
        for index, node_id in enumerate(compiled.node_ids)
    }


def ghsom_to_dict(model: Ghsom, *, version: int = FORMAT_VERSION) -> Dict[str, object]:
    """Serialise a fitted :class:`Ghsom` to a JSON-compatible dict.

    ``version=1`` writes the legacy tree-only payload (used by the round-trip
    regression tests and the serving benchmark to exercise the v1 reader);
    the default v2 payload additionally embeds the compiled flat arrays.
    """
    _check_writer_version(version)
    if not model.is_fitted:
        raise SerializationError("cannot serialise an unfitted Ghsom")
    payload: Dict[str, object] = {
        "format_version": version,
        "kind": "ghsom",
        "config": model.config.to_dict(),
        "qe0": model.qe0,
        "n_features": model.n_features,
        # v2 stores every codebook once, in the compiled stacked array; the
        # tree payload keeps only structure + per-unit statistics.
        "root": _node_to_dict(model.root, include_codebook=version < 2),
    }
    if version >= 2:
        payload["compiled"] = compiled_to_dict(model.compile())
    return payload


def ghsom_from_dict(
    data: Dict[str, object], *, compiled: Optional[CompiledGhsom] = None
) -> Ghsom:
    """Rebuild a :class:`Ghsom` from :func:`ghsom_to_dict` output.

    v2 payloads hydrate the compiled inference engine directly from the
    stored arrays, so the first ``assign_arrays`` call after loading skips
    the compile step.  An already-hydrated float64 ``compiled`` snapshot may
    be passed in place of the payload's ``"compiled"`` entry (the detector
    loader does this so its lazy tree hydration does not have to keep the
    parsed JSON arrays alive).
    """
    if data.get("kind") != "ghsom":
        raise SerializationError(f"payload is not a ghsom model (kind={data.get('kind')!r})")
    version = _check_version(data)
    config = GhsomConfig.from_dict(dict(data["config"]))
    model = Ghsom(config)
    model.qe0 = float(data["qe0"])
    model.n_features = int(data["n_features"])
    if compiled is None and version >= 2 and data.get("compiled") is not None:
        compiled = compiled_from_dict(dict(data["compiled"]))
    if compiled is not None and compiled.dtype != np.dtype("float64"):
        raise SerializationError(
            "cannot rebuild a tree from a narrowed compiled snapshot "
            f"(dtype={compiled.dtype}); pass the float64 snapshot"
        )
    codebooks = _codebook_slices(compiled) if compiled is not None else None
    model.root = _node_from_dict(dict(data["root"]), config, model.n_features, codebooks)
    if compiled is not None:
        model._compiled = compiled
    return model


def save_ghsom(model: Ghsom, path: PathLike) -> None:
    """Write a fitted GHSOM to ``path`` as JSON (atomically)."""
    payload = ghsom_to_dict(model)
    write_json_atomic(payload, path)


def load_ghsom(path: PathLike) -> Ghsom:
    """Load a GHSOM previously written by :func:`save_ghsom`."""
    return ghsom_from_dict(_read_json(path))


# --------------------------------------------------------------------------- #
# GHSOM detector (model + labels + thresholds)
# --------------------------------------------------------------------------- #
def detector_to_dict(
    detector: GhsomDetector, *, version: int = FORMAT_VERSION
) -> Dict[str, object]:
    """Serialise a fitted :class:`GhsomDetector` (model, labels, thresholds).

    The default v2 payload embeds the compiled arrays plus the per-leaf
    scoring tables so :func:`detector_from_dict` can return a scoring-ready
    detector without touching the tree; ``version=1`` writes the legacy
    payload for compatibility testing.
    """
    _check_writer_version(version)
    if not detector.is_fitted:
        raise SerializationError("cannot serialise an unfitted GhsomDetector")
    payload: Dict[str, object] = {
        "format_version": version,
        "kind": "ghsom_detector",
        "model": ghsom_to_dict(detector.model, version=version),
        "labeler": detector.labeler.to_dict() if detector.labeler is not None else None,
        "threshold": detector.threshold_.to_dict(),
        "threshold_strategy_name": detector.threshold_strategy_name,
        "threshold_kwargs": detector.threshold_kwargs,
        "labeling_strategy": detector.labeling_strategy,
        "calibrate_on_normal_only": detector.calibrate_on_normal_only,
    }
    if version >= 2:
        # Generators are process-local state; only reproducible seeds persist.
        random_state = detector.random_state
        payload["random_state"] = (
            int(random_state) if isinstance(random_state, (int, np.integer)) else None
        )
        tables = detector._leaf_tables()
        payload["leaf_tables"] = {
            "thresholds": np.asarray(tables.thresholds, dtype=float).tolist(),
            "labels": None if tables.labels is None else [str(v) for v in tables.labels],
            "is_attack": None if tables.is_attack is None else tables.is_attack.astype(bool).tolist(),
            "purity": None if tables.purity is None else tables.purity.tolist(),
        }
        # The partition-independent subtree layout: lets ``load_bundle`` /
        # ``set_sharding`` slice worker shards straight from the stored
        # arrays instead of re-deriving the plan (see repro.serving.planner).
        payload["shard_manifest"] = manifest_from_compiled(tables.compiled)
    return payload


def detector_from_dict(
    data: Dict[str, object], *, dtype: str = "float64"
) -> GhsomDetector:
    """Rebuild a :class:`GhsomDetector` from :func:`detector_to_dict` output.

    For v2 payloads the returned detector serves straight from the embedded
    compiled arrays and leaf tables — no ``GhsomNode`` objects are built and
    no compile pass runs before the first score; the tree payload is parked
    behind a lazy loader that only fires when ``detector.model`` is accessed.
    v1 payloads fall back to the legacy full tree rebuild.

    ``dtype`` selects the serving precision (``"float32"`` opts into the
    narrowed mode documented on :meth:`CompiledGhsom.astype`); scores are
    bit-exact against the saved detector only at the default ``"float64"``.
    """
    if data.get("kind") != "ghsom_detector":
        raise SerializationError(
            f"payload is not a ghsom detector (kind={data.get('kind')!r})"
        )
    version = _check_version(data)
    model_payload = dict(data["model"])
    config = GhsomConfig.from_dict(dict(model_payload["config"]))
    random_state = data.get("random_state")
    detector = GhsomDetector(
        config=config,
        threshold_strategy=str(data.get("threshold_strategy_name", "per_unit")),
        threshold_kwargs=dict(data.get("threshold_kwargs", {})),
        labeling_strategy=str(data.get("labeling_strategy", "majority")),
        calibrate_on_normal_only=bool(data.get("calibrate_on_normal_only", True)),
        random_state=None if random_state is None else int(random_state),
    )
    labeler_payload: Optional[Dict[str, object]] = data.get("labeler")  # type: ignore[assignment]
    detector.labeler = UnitLabeler.from_dict(labeler_payload) if labeler_payload else None
    detector.threshold_ = threshold_from_dict(dict(data["threshold"]))
    manifest_payload = data.get("shard_manifest")
    if manifest_payload is not None:
        # Kept verbatim: set_sharding() uses it to slice worker shards
        # without re-deriving the subtree layout from the arrays.
        detector._shard_manifest = dict(manifest_payload)
    if version >= 2 and model_payload.get("compiled") is not None:
        # Keep the exact float64 snapshot for lazy tree hydration even when
        # serving narrowed; when dtype is float64, astype returns it as-is.
        exact = compiled_from_dict(dict(model_payload["compiled"]))
        compiled = exact.astype(dtype)
        detector._compiled = compiled
        # The loader closure carries only the tree-structure payload plus the
        # in-memory float64 arrays — not the parsed JSON codebook lists, which
        # would otherwise stay resident for the detector's whole lifetime.
        tree_payload = {
            key: value for key, value in model_payload.items() if key != "compiled"
        }
        detector._model_loader = lambda: ghsom_from_dict(tree_payload, compiled=exact)
        tables_payload = data.get("leaf_tables")
        if tables_payload is not None:
            tables = dict(tables_payload)
            detector._tables = restore_leaf_tables(
                compiled,
                detector.threshold_,
                detector.labeler,
                thresholds=np.asarray(tables["thresholds"], dtype=float),
                labels=(
                    None
                    if tables.get("labels") is None
                    else np.asarray(tables["labels"], dtype=object)
                ),
                is_attack=(
                    None
                    if tables.get("is_attack") is None
                    else np.asarray(tables["is_attack"], dtype=bool)
                ),
                purity=(
                    None
                    if tables.get("purity") is None
                    else np.asarray(tables["purity"], dtype=float)
                ),
            )
    else:
        detector.model = ghsom_from_dict(model_payload)
        if np.dtype(dtype) != np.dtype("float64"):
            detector.set_serving_dtype(dtype)
    return detector


def save_detector(detector: GhsomDetector, path: PathLike) -> None:
    """Write a fitted detector to ``path`` as JSON (atomically)."""
    write_json_atomic(detector_to_dict(detector), path)


def load_detector(path: PathLike, *, dtype: str = "float64") -> GhsomDetector:
    """Load a detector previously written by :func:`save_detector`."""
    return detector_from_dict(_read_json(path), dtype=dtype)


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
def write_json_atomic(payload: Dict[str, object], path: PathLike) -> None:
    """Serialise ``payload`` to ``path`` via a same-directory temp file + rename.

    ``os.replace`` is atomic on POSIX and Windows for same-filesystem moves,
    so readers only ever observe the old file or the complete new one — never
    a truncated artifact from a crash mid-write.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        text = json.dumps(payload)
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"could not serialise model to {path}: {exc}") from exc
    handle, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        # mkstemp creates 0600 files; widen so the artifact stays readable by
        # the same set of users as before (train as one user, serve as
        # another).  An existing target keeps its mode; new files get the
        # conventional 0644.  (Probing the umask via os.umask() would mutate
        # process-global state and race with other threads.)
        try:
            mode = path.stat().st_mode & 0o777
        except FileNotFoundError:
            mode = 0o644
        os.chmod(tmp_name, mode)
        with os.fdopen(handle, "w") as stream:
            stream.write(text)
            # Flush user- and OS-level buffers before the rename: without the
            # fsync, a system crash shortly after os.replace can persist the
            # rename but not the data on some filesystems, leaving exactly
            # the truncated artifact this function promises to prevent.
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _read_json(path: PathLike) -> Dict[str, object]:
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"model file does not exist: {path}")
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"could not parse model file {path}: {exc}") from exc
