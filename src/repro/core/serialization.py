"""Saving and loading trained models.

Models are serialised to a single JSON document (codebooks stored as nested
lists).  JSON keeps the artefacts human-inspectable and avoids pickle's code
execution concerns; the models involved are small (a few hundred units of a
few dozen dimensions), so the size overhead of a text format is irrelevant.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.core.config import GhsomConfig
from repro.core.detector import GhsomDetector
from repro.core.ghsom import Ghsom, GhsomNode
from repro.core.growing_som import GrowingSom
from repro.core.labeling import UnitLabeler
from repro.core.thresholds import threshold_from_dict
from repro.exceptions import SerializationError

PathLike = Union[str, Path]

#: Format marker written into every artefact so loads can fail fast on
#: incompatible files.
FORMAT_VERSION = 1


# --------------------------------------------------------------------------- #
# GHSOM model
# --------------------------------------------------------------------------- #
def _node_to_dict(node: GhsomNode) -> Dict[str, object]:
    return {
        "node_id": node.node_id,
        "depth": node.depth,
        "parent_unit": node.parent_unit,
        "rows": node.layer.grid.rows,
        "cols": node.layer.grid.cols,
        "parent_qe": node.layer.parent_qe,
        "codebook": node.layer.codebook.tolist(),
        "unit_qe": np.asarray(node.unit_qe, dtype=float).tolist(),
        "unit_count": np.asarray(node.unit_count, dtype=int).tolist(),
        "children": {str(unit): _node_to_dict(child) for unit, child in node.children.items()},
    }


def _node_from_dict(data: Dict[str, object], config: GhsomConfig, n_features: int) -> GhsomNode:
    rows = int(data["rows"])
    cols = int(data["cols"])
    layer = GrowingSom(
        n_features=n_features,
        config=config,
        parent_qe=float(data["parent_qe"]),
        random_state=config.random_state,
    )
    codebook = np.asarray(data["codebook"], dtype=float)
    layer._replace_map(layer.grid.__class__(rows, cols), codebook)  # reuse swap helper
    layer.som._fitted = True
    layer._fitted = True
    node = GhsomNode(
        node_id=str(data["node_id"]),
        layer=layer,
        depth=int(data["depth"]),
        parent_unit=None if data["parent_unit"] is None else int(data["parent_unit"]),
        unit_qe=np.asarray(data["unit_qe"], dtype=float),
        unit_count=np.asarray(data["unit_count"], dtype=int),
    )
    for unit, child_data in dict(data.get("children", {})).items():
        node.children[int(unit)] = _node_from_dict(child_data, config, n_features)
    return node


def ghsom_to_dict(model: Ghsom) -> Dict[str, object]:
    """Serialise a fitted :class:`Ghsom` to a JSON-compatible dict."""
    if not model.is_fitted:
        raise SerializationError("cannot serialise an unfitted Ghsom")
    return {
        "format_version": FORMAT_VERSION,
        "kind": "ghsom",
        "config": model.config.to_dict(),
        "qe0": model.qe0,
        "n_features": model.n_features,
        "root": _node_to_dict(model.root),
    }


def ghsom_from_dict(data: Dict[str, object]) -> Ghsom:
    """Rebuild a :class:`Ghsom` from :func:`ghsom_to_dict` output."""
    if data.get("kind") != "ghsom":
        raise SerializationError(f"payload is not a ghsom model (kind={data.get('kind')!r})")
    if data.get("format_version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {data.get('format_version')!r}"
        )
    config = GhsomConfig.from_dict(dict(data["config"]))
    model = Ghsom(config)
    model.qe0 = float(data["qe0"])
    model.n_features = int(data["n_features"])
    model.root = _node_from_dict(dict(data["root"]), config, model.n_features)
    return model


def save_ghsom(model: Ghsom, path: PathLike) -> None:
    """Write a fitted GHSOM to ``path`` as JSON."""
    payload = ghsom_to_dict(model)
    _write_json(payload, path)


def load_ghsom(path: PathLike) -> Ghsom:
    """Load a GHSOM previously written by :func:`save_ghsom`."""
    return ghsom_from_dict(_read_json(path))


# --------------------------------------------------------------------------- #
# GHSOM detector (model + labels + thresholds)
# --------------------------------------------------------------------------- #
def detector_to_dict(detector: GhsomDetector) -> Dict[str, object]:
    """Serialise a fitted :class:`GhsomDetector` (model, labels, thresholds)."""
    if not detector.is_fitted:
        raise SerializationError("cannot serialise an unfitted GhsomDetector")
    return {
        "format_version": FORMAT_VERSION,
        "kind": "ghsom_detector",
        "model": ghsom_to_dict(detector.model),
        "labeler": detector.labeler.to_dict() if detector.labeler is not None else None,
        "threshold": detector.threshold_.to_dict(),
        "threshold_strategy_name": detector.threshold_strategy_name,
        "threshold_kwargs": detector.threshold_kwargs,
        "labeling_strategy": detector.labeling_strategy,
        "calibrate_on_normal_only": detector.calibrate_on_normal_only,
    }


def detector_from_dict(data: Dict[str, object]) -> GhsomDetector:
    """Rebuild a :class:`GhsomDetector` from :func:`detector_to_dict` output."""
    if data.get("kind") != "ghsom_detector":
        raise SerializationError(
            f"payload is not a ghsom detector (kind={data.get('kind')!r})"
        )
    model = ghsom_from_dict(dict(data["model"]))
    detector = GhsomDetector(
        config=model.config,
        threshold_strategy=str(data.get("threshold_strategy_name", "per_unit")),
        threshold_kwargs=dict(data.get("threshold_kwargs", {})),
        labeling_strategy=str(data.get("labeling_strategy", "majority")),
        calibrate_on_normal_only=bool(data.get("calibrate_on_normal_only", True)),
    )
    detector.model = model
    labeler_payload: Optional[Dict[str, object]] = data.get("labeler")  # type: ignore[assignment]
    detector.labeler = UnitLabeler.from_dict(labeler_payload) if labeler_payload else None
    detector.threshold_ = threshold_from_dict(dict(data["threshold"]))
    return detector


def save_detector(detector: GhsomDetector, path: PathLike) -> None:
    """Write a fitted detector to ``path`` as JSON."""
    _write_json(detector_to_dict(detector), path)


def load_detector(path: PathLike) -> GhsomDetector:
    """Load a detector previously written by :func:`save_detector`."""
    return detector_from_dict(_read_json(path))


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
def _write_json(payload: Dict[str, object], path: PathLike) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        path.write_text(json.dumps(payload))
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"could not serialise model to {path}: {exc}") from exc


def _read_json(path: PathLike) -> Dict[str, object]:
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"model file does not exist: {path}")
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"could not parse model file {path}: {exc}") from exc
