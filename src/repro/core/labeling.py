"""Unit labelling for supervised / semi-supervised GHSOM detection.

After a GHSOM is trained (unsupervised), its leaf units can be labelled with
the traffic classes of the training samples that map to them.  A test sample
then inherits the label of its leaf unit.  This module implements the
labelling rules and keeps per-leaf statistics (count, purity) so detectors can
decide how much to trust a unit's label.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, NotFittedError

#: Sentinel returned for leaves that received no training samples.
UNLABELED = "unlabeled"

LeafKey = Tuple[str, int]


@dataclass(frozen=True)
class LeafLabel:
    """Label information for one leaf unit."""

    label: str
    count: int
    purity: float

    @property
    def is_reliable(self) -> bool:
        """A crude reliability flag: labelled by at least one sample with purity > 0.5."""
        return self.count > 0 and self.purity > 0.5


class UnitLabeler:
    """Assigns class labels to GHSOM leaf units by vote of the mapped training samples.

    Parameters
    ----------
    strategy:
        ``"majority"`` — plain majority vote (default);
        ``"purity"`` — majority vote, but the unit keeps its label only when
        the majority fraction reaches ``min_purity``, otherwise it is treated
        as mixed and labelled with the *attack* class among its samples (a
        conservative choice: mixed normal/attack units alarm).
    min_purity:
        Purity threshold for the ``"purity"`` strategy.
    min_count:
        Units with fewer mapped samples than this keep the ``UNLABELED``
        sentinel.
    """

    def __init__(
        self,
        strategy: str = "majority",
        *,
        min_purity: float = 0.7,
        min_count: int = 1,
    ) -> None:
        if strategy not in ("majority", "purity"):
            raise ConfigurationError(
                f"strategy must be 'majority' or 'purity', got {strategy!r}"
            )
        if not 0.0 < min_purity <= 1.0:
            raise ConfigurationError(f"min_purity must be in (0, 1], got {min_purity}")
        if min_count < 1:
            raise ConfigurationError(f"min_count must be >= 1, got {min_count}")
        self.strategy = strategy
        self.min_purity = min_purity
        self.min_count = min_count
        self._labels: Optional[Dict[LeafKey, LeafLabel]] = None
        #: Bumped on every (re)fit so consumers caching derived per-leaf label
        #: tables can detect in-place relabelling of the same object.  Declared
        #: eagerly so deserialized labelers carry it too.
        self.fit_version = 0

    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        return self._labels is not None

    def fit(self, leaf_keys: Sequence[LeafKey], labels: Sequence[str]) -> "UnitLabeler":
        """Learn the per-leaf labels from training assignments.

        Parameters
        ----------
        leaf_keys:
            ``(node_id, unit)`` leaf identity per training sample, as returned
            by :meth:`repro.core.ghsom.Ghsom.leaf_keys`.
        labels:
            Class label per training sample (categories or named attacks).
        """
        if len(leaf_keys) != len(labels):
            raise ConfigurationError(
                f"got {len(leaf_keys)} leaf keys but {len(labels)} labels"
            )
        votes: Dict[LeafKey, Counter] = defaultdict(Counter)
        for key, label in zip(leaf_keys, labels, strict=True):
            votes[key][str(label)] += 1
        fitted: Dict[LeafKey, LeafLabel] = {}
        for key, counter in votes.items():
            total = sum(counter.values())
            majority_label, majority_count = counter.most_common(1)[0]
            purity = majority_count / total
            if total < self.min_count:
                fitted[key] = LeafLabel(UNLABELED, total, purity)
                continue
            label = majority_label
            if self.strategy == "purity" and purity < self.min_purity:
                # Mixed unit: prefer the most common non-normal class, if any.
                attack_votes = [(count, name) for name, count in counter.items() if name != "normal"]
                if attack_votes:
                    label = max(attack_votes)[1]
            fitted[key] = LeafLabel(label, total, purity)
        self._labels = fitted
        self.fit_version += 1
        return self

    # ------------------------------------------------------------------ #
    def label_of(self, leaf_key: LeafKey) -> str:
        """Label of one leaf (``UNLABELED`` if the leaf saw no training data)."""
        if self._labels is None:
            raise NotFittedError("UnitLabeler is not fitted")
        info = self._labels.get(leaf_key)
        return info.label if info is not None else UNLABELED

    def info_of(self, leaf_key: LeafKey) -> LeafLabel:
        """Full label info of one leaf."""
        if self._labels is None:
            raise NotFittedError("UnitLabeler is not fitted")
        return self._labels.get(leaf_key, LeafLabel(UNLABELED, 0, 0.0))

    def predict(self, leaf_keys: Iterable[LeafKey]) -> List[str]:
        """Labels for a batch of leaf keys."""
        return [self.label_of(key) for key in leaf_keys]

    def labeled_leaves(self) -> Dict[LeafKey, LeafLabel]:
        """A copy of the fitted leaf-label table."""
        if self._labels is None:
            raise NotFittedError("UnitLabeler is not fitted")
        return dict(self._labels)

    def class_distribution(self) -> Dict[str, int]:
        """Number of leaves assigned to each label."""
        if self._labels is None:
            raise NotFittedError("UnitLabeler is not fitted")
        counts: Counter = Counter(info.label for info in self._labels.values())
        return dict(counts)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (used by model serialization)."""
        if self._labels is None:
            raise NotFittedError("UnitLabeler is not fitted")
        return {
            "strategy": self.strategy,
            "min_purity": self.min_purity,
            "min_count": self.min_count,
            "labels": [
                {
                    "node_id": key[0],
                    "unit": key[1],
                    "label": info.label,
                    "count": info.count,
                    "purity": info.purity,
                }
                for key, info in self._labels.items()
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "UnitLabeler":
        """Inverse of :meth:`to_dict`."""
        labeler = cls(
            strategy=str(data.get("strategy", "majority")),
            min_purity=float(data.get("min_purity", 0.7)),
            min_count=int(data.get("min_count", 1)),
        )
        labels: Dict[LeafKey, LeafLabel] = {}
        for entry in data.get("labels", []):  # type: ignore[union-attr]
            key = (str(entry["node_id"]), int(entry["unit"]))
            labels[key] = LeafLabel(
                label=str(entry["label"]),
                count=int(entry["count"]),
                purity=float(entry["purity"]),
            )
        labeler._labels = labels
        return labeler
