"""A single growing SOM layer (horizontal growth).

The layer starts as a small map (2x2 by default), is trained for a fixed
number of epochs, and then checks its mean quantization error (MQE) against
the breadth threshold ``tau1 * parent_qe``:

* while the MQE is too high, a new row or column of units is inserted between
  the *error unit* (the populated unit with the highest quantization error)
  and its most dissimilar neighbour, initialised to the mean of its two
  neighbours, and the layer is retrained;
* growth stops when the MQE criterion is met, when the layer reaches
  ``max_map_size`` units, or after ``max_growth_rounds`` insertions.

The full growth trajectory (units and MQE per round) is recorded so the
growth-curve experiment (Figure 3) can be regenerated without re-instrumenting
the training loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import GhsomConfig
from repro.core.grid import MapGrid
from repro.core.som import Som
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_array_2d


@dataclass(frozen=True)
class GrowthEvent:
    """One point of the growth trajectory of a layer."""

    round_index: int
    rows: int
    cols: int
    n_units: int
    mqe: float
    inserted: str  # "row", "col", or "none" for the final round


class GrowingSom:
    """A SOM layer that grows horizontally until its MQE target is met.

    Parameters
    ----------
    n_features:
        Input dimensionality.
    config:
        GHSOM configuration; ``tau1``, map-size limits and the nested SOM
        training settings are used here.
    parent_qe:
        Quantization error of the parent unit (or ``qe0`` for the root
        layer); the growth target is ``tau1 * parent_qe``.
    random_state:
        Seed or generator for initialisation.
    """

    def __init__(
        self,
        n_features: int,
        config: Optional[GhsomConfig] = None,
        parent_qe: float = 1.0,
        random_state: RandomState = None,
    ) -> None:
        if n_features < 1:
            raise ConfigurationError(f"n_features must be >= 1, got {n_features}")
        if parent_qe < 0:
            raise ConfigurationError(f"parent_qe must be >= 0, got {parent_qe}")
        self.n_features = int(n_features)
        self.config = config or GhsomConfig()
        self.parent_qe = float(parent_qe)
        self._rng = ensure_rng(random_state)
        self.som = Som(
            self.config.initial_rows,
            self.config.initial_cols,
            n_features=self.n_features,
            config=self.config.training,
            random_state=self._rng,
        )
        self.growth_history: List[GrowthEvent] = []
        self._fitted = False

    # ------------------------------------------------------------------ #
    @property
    def grid(self) -> MapGrid:
        """Grid geometry of the underlying map."""
        return self.som.grid

    @property
    def codebook(self) -> np.ndarray:
        """Unit weight matrix ``(n_units, n_features)``."""
        return self.som.codebook

    @property
    def n_units(self) -> int:
        """Number of units on the layer."""
        return self.som.n_units

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._fitted

    @property
    def mqe_target(self) -> float:
        """The breadth-growth stopping target ``tau1 * parent_qe``."""
        return self.config.tau1 * self.parent_qe

    # ------------------------------------------------------------------ #
    def fit(self, data) -> "GrowingSom":
        """Grow and train the layer on ``data``."""
        matrix = check_array_2d(data, "data", min_cols=self.n_features)
        if matrix.shape[1] != self.n_features:
            raise DataValidationError(
                f"data has {matrix.shape[1]} features, the layer expects {self.n_features}"
            )
        self.growth_history = []
        target = self.mqe_target
        round_index = 0
        while True:
            self.som.fit(matrix, reinitialize=(round_index == 0))
            mqe = self.som.mean_quantization_error(matrix)
            reached_target = mqe <= target
            # Stop before an insertion would push the layer past the size cap:
            # growing adds a full row or column, whichever is larger.
            next_size = self.n_units + max(self.grid.rows, self.grid.cols)
            reached_size = next_size > self.config.max_map_size
            reached_rounds = round_index >= self.config.max_growth_rounds
            if reached_target or reached_size or reached_rounds:
                self.growth_history.append(
                    GrowthEvent(
                        round_index=round_index,
                        rows=self.grid.rows,
                        cols=self.grid.cols,
                        n_units=self.n_units,
                        mqe=float(mqe),
                        inserted="none",
                    )
                )
                break
            inserted = self._grow_once(matrix)
            self.growth_history.append(
                GrowthEvent(
                    round_index=round_index,
                    rows=self.grid.rows,
                    cols=self.grid.cols,
                    n_units=self.n_units,
                    mqe=float(mqe),
                    inserted=inserted,
                )
            )
            round_index += 1
        self._fitted = True
        return self

    # ------------------------------------------------------------------ #
    # growth machinery
    # ------------------------------------------------------------------ #
    def _grow_once(self, matrix: np.ndarray) -> str:
        """Insert one row or column next to the current error unit.

        Returns the kind of insertion performed (``"row"`` or ``"col"``).
        """
        error_unit, dissimilar_neighbor = self._find_error_unit(matrix)
        error_row, error_col = self.grid.position(error_unit)
        neighbor_row, neighbor_col = self.grid.position(dissimilar_neighbor)
        if error_row == neighbor_row:
            # Neighbour lies to the left/right: insert a column between them.
            after_col = min(error_col, neighbor_col)
            self._insert_column(after_col)
            return "col"
        # Neighbour lies above/below: insert a row between them.
        after_row = min(error_row, neighbor_row)
        self._insert_row(after_row)
        return "row"

    def _find_error_unit(self, matrix: np.ndarray) -> Tuple[int, int]:
        """The populated unit with the highest QE and its most dissimilar neighbour."""
        errors = self.som.unit_errors(matrix, reduction="mean")
        counts = self.som.unit_counts(matrix)
        candidate_errors = np.where(counts > 0, errors, -np.inf)
        error_unit = int(np.argmax(candidate_errors))
        neighbors = self.grid.neighbors(error_unit)
        if not neighbors:
            raise ConfigurationError("cannot grow a map whose error unit has no neighbours")
        error_weight = self.codebook[error_unit]
        neighbor_weights = self.codebook[neighbors]
        dissimilarities = np.linalg.norm(neighbor_weights - error_weight[None, :], axis=1)
        dissimilar_neighbor = int(neighbors[int(np.argmax(dissimilarities))])
        return error_unit, dissimilar_neighbor

    def _insert_row(self, after_row: int) -> None:
        """Insert a row after ``after_row``, initialised to the mean of its neighbours."""
        rows, cols = self.grid.rows, self.grid.cols
        cube = self.codebook.reshape(rows, cols, self.n_features)
        above = cube[after_row]
        below = cube[min(after_row + 1, rows - 1)]
        new_row = (above + below) / 2.0
        expanded = np.insert(cube, after_row + 1, new_row, axis=0)
        self._replace_map(MapGrid(rows + 1, cols), expanded.reshape(-1, self.n_features))

    def _insert_column(self, after_col: int) -> None:
        """Insert a column after ``after_col``, initialised to the mean of its neighbours."""
        rows, cols = self.grid.rows, self.grid.cols
        cube = self.codebook.reshape(rows, cols, self.n_features)
        left = cube[:, after_col]
        right = cube[:, min(after_col + 1, cols - 1)]
        new_col = (left + right) / 2.0
        expanded = np.insert(cube, after_col + 1, new_col, axis=1)
        self._replace_map(MapGrid(rows, cols + 1), expanded.reshape(-1, self.n_features))

    def _replace_map(self, grid: MapGrid, codebook: np.ndarray) -> None:
        """Swap in a larger map, preserving the trained weights."""
        som = Som(
            grid.rows,
            grid.cols,
            n_features=self.n_features,
            config=self.config.training,
            random_state=self._rng,
        )
        som.set_codebook(codebook)
        self.som = som

    # ------------------------------------------------------------------ #
    # inference (delegated to the underlying SOM)
    # ------------------------------------------------------------------ #
    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("GrowingSom must be fitted before it can be used")

    def transform(self, data) -> np.ndarray:
        """BMU index per sample."""
        self._check_fitted()
        return self.som.transform(data)

    def quantization_distances(self, data) -> np.ndarray:
        """Distance of each sample to its BMU."""
        self._check_fitted()
        return self.som.quantization_distances(data)

    def unit_errors(self, data, *, reduction: str = "mean") -> np.ndarray:
        """Per-unit quantization errors of ``data`` on the layer."""
        self._check_fitted()
        return self.som.unit_errors(data, reduction=reduction)

    def unit_counts(self, data) -> np.ndarray:
        """Samples mapped to each unit."""
        self._check_fitted()
        return self.som.unit_counts(data)

    def mean_quantization_error(self, data) -> float:
        """MQE of ``data`` on the layer."""
        self._check_fitted()
        return self.som.mean_quantization_error(data)
