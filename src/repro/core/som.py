"""A fixed-size self-organizing map (SOM).

This is the building block the growing layers are made of, and it doubles as
the "flat SOM" baseline the paper's evaluation compares against.  Both the
classical online (sample-by-sample) update rule and the faster batch rule are
implemented; GHSOM layers use the batch rule by default because each layer is
retrained several times during growth.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import SomTrainingConfig
from repro.core.decay import get_decay
from repro.core.distances import get_metric, squared_euclidean
from repro.core.grid import MapGrid
from repro.core.neighborhood import get_neighborhood
from repro.core.quantization import (
    average_sample_error,
    mean_quantization_error,
    topographic_error,
    unit_quantization_errors,
)
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_array_2d


class Som:
    """A rectangular self-organizing map with a fixed number of units.

    Parameters
    ----------
    rows, cols:
        Grid shape.
    n_features:
        Dimensionality of the input vectors.
    config:
        Training hyper-parameters (epochs, learning rate, kernel, ...).
    random_state:
        Seed or generator used for codebook initialisation and shuffling.

    Example
    -------
    >>> import numpy as np
    >>> som = Som(4, 4, n_features=3, random_state=0)
    >>> data = np.random.default_rng(0).random((50, 3))
    >>> _ = som.fit(data)
    >>> som.transform(data).shape
    (50,)
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        n_features: int,
        config: Optional[SomTrainingConfig] = None,
        random_state: RandomState = None,
    ) -> None:
        if n_features < 1:
            raise ConfigurationError(f"n_features must be >= 1, got {n_features}")
        self.grid = MapGrid(rows, cols)
        self.n_features = int(n_features)
        self.config = config or SomTrainingConfig()
        self._rng = ensure_rng(random_state)
        self.codebook = self._rng.random((self.grid.n_units, self.n_features))
        self._metric = get_metric(self.config.metric)
        self._neighborhood = get_neighborhood(self.config.neighborhood)
        self._decay = get_decay(self.config.decay)
        self._fitted = False

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def n_units(self) -> int:
        """Number of units on the map."""
        return self.grid.n_units

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` (or at least one partial fit) has been called."""
        return self._fitted

    def _initial_radius(self) -> float:
        if self.config.initial_radius > 0.0:
            return self.config.initial_radius
        return self.grid.initial_radius()

    # ------------------------------------------------------------------ #
    # initialisation
    # ------------------------------------------------------------------ #
    def initialize_from_data(self, data) -> None:
        """Initialise the codebook by sampling training vectors (plus tiny noise).

        Sampling real data points spreads the initial codebook over the data
        support, which converges noticeably faster than uniform random
        initialisation for the sparse KDD feature vectors.
        """
        matrix = check_array_2d(data, "data", min_cols=self.n_features)
        indices = self._rng.integers(0, matrix.shape[0], size=self.n_units)
        jitter = self._rng.normal(0.0, 1e-3, size=(self.n_units, self.n_features))
        self.codebook = matrix[indices].copy() + jitter

    def set_codebook(self, codebook) -> None:
        """Replace the codebook (used by the growing layer and serialization)."""
        weights = check_array_2d(codebook, "codebook")
        if weights.shape != (self.grid.n_units, self.n_features):
            raise ConfigurationError(
                f"codebook shape {weights.shape} does not match "
                f"({self.grid.n_units}, {self.n_features})"
            )
        self.codebook = weights.copy()

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def fit(self, data, *, reinitialize: bool = True) -> "Som":
        """Train the map on ``data`` for ``config.epochs`` epochs (batch rule)."""
        matrix = check_array_2d(data, "data", min_cols=self.n_features)
        if matrix.shape[1] != self.n_features:
            raise DataValidationError(
                f"data has {matrix.shape[1]} features, the map expects {self.n_features}"
            )
        if reinitialize:
            self.initialize_from_data(matrix)
        grid_distances = self.grid.grid_distances()
        initial_radius = self._initial_radius()
        epochs = self.config.epochs
        for epoch in range(epochs):
            progress = epoch / max(epochs - 1, 1)
            radius = initial_radius * self._decay(progress)
            self._batch_epoch(matrix, grid_distances, radius)
        self._fitted = True
        return self

    def _batch_epoch(self, matrix: np.ndarray, grid_distances: np.ndarray, radius: float) -> None:
        """One batch update: every unit moves to the neighbourhood-weighted data mean."""
        bmus = np.argmin(squared_euclidean(matrix, self.codebook), axis=1)
        influence = self._neighborhood(grid_distances, radius)  # (units, units)
        # weights_per_sample[i, j] = influence of sample i on unit j
        weights_per_sample = influence[bmus]  # (n, units)
        denominator = weights_per_sample.sum(axis=0)  # (units,)
        numerator = weights_per_sample.T @ matrix  # (units, d)
        populated = denominator > 1e-12
        updated = self.codebook.copy()
        updated[populated] = numerator[populated] / denominator[populated, None]
        self.codebook = updated

    def partial_fit(self, data, *, learning_rate: Optional[float] = None, radius: Optional[float] = None) -> "Som":
        """Online (sample-by-sample) update pass used for streaming adaptation.

        Unlike :meth:`fit` this never re-initialises the codebook, applies the
        classic Kohonen update rule once per sample, and uses a constant
        learning rate / radius (no decay), which is what an online detector
        needs to keep adapting indefinitely.
        """
        matrix = check_array_2d(data, "data", min_cols=self.n_features)
        rate = learning_rate if learning_rate is not None else self.config.learning_rate * 0.1
        current_radius = radius if radius is not None else 1.0
        grid_distances = self.grid.grid_distances()
        order = self._rng.permutation(matrix.shape[0])
        for index in order:
            sample = matrix[index]
            bmu = int(np.argmin(squared_euclidean(sample[None, :], self.codebook)[0]))
            influence = self._neighborhood(grid_distances[bmu], current_radius)
            self.codebook += rate * influence[:, None] * (sample[None, :] - self.codebook)
        self._fitted = True
        return self

    # ------------------------------------------------------------------ #
    # inference
    # ------------------------------------------------------------------ #
    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("Som must be fitted before it can be used for inference")

    def transform(self, data) -> np.ndarray:
        """Best matching unit index for each sample."""
        self._check_fitted()
        matrix = check_array_2d(data, "data", min_cols=self.n_features)
        return np.argmin(squared_euclidean(matrix, self.codebook), axis=1)

    def quantization_distances(self, data) -> np.ndarray:
        """Distance of each sample to its BMU (in the configured metric)."""
        self._check_fitted()
        matrix = check_array_2d(data, "data", min_cols=self.n_features)
        return self._metric(matrix, self.codebook).min(axis=1)

    def unit_errors(self, data, *, reduction: str = "mean") -> np.ndarray:
        """Per-unit quantization error of ``data`` on this map."""
        self._check_fitted()
        matrix = check_array_2d(data, "data", min_cols=self.n_features)
        return unit_quantization_errors(
            matrix, self.codebook, metric=self.config.metric, reduction=reduction
        )

    def mean_quantization_error(self, data) -> float:
        """Mean per-unit quantization error (MQE) of ``data`` on this map."""
        self._check_fitted()
        return mean_quantization_error(data, self.codebook, metric=self.config.metric)

    def average_sample_error(self, data) -> float:
        """Mean BMU distance per sample."""
        self._check_fitted()
        return average_sample_error(data, self.codebook, metric=self.config.metric)

    def topographic_error(self, data) -> float:
        """Topology-preservation error of the map on ``data``."""
        self._check_fitted()
        return topographic_error(data, self.codebook, self.grid, metric=self.config.metric)

    def unit_counts(self, data) -> np.ndarray:
        """Number of samples mapped to each unit."""
        assignments = self.transform(data)
        return np.bincount(assignments, minlength=self.n_units)
