"""Neighborhood kernels for SOM weight updates.

During training, the best matching unit (BMU) and its neighbours on the map
grid are pulled towards each training sample.  The neighbourhood kernel
controls how the pull decays with grid distance from the BMU; the radius
shrinks over training so the map first unfolds globally and then fine-tunes
locally.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.exceptions import ConfigurationError

NeighborhoodFunction = Callable[[np.ndarray, float], np.ndarray]


def gaussian_neighborhood(grid_distances: np.ndarray, radius: float) -> np.ndarray:
    """Smooth Gaussian kernel: ``exp(-d^2 / (2 r^2))``.

    The radius is floored at a small positive value so late training rounds
    still update the BMU itself.
    """
    radius = max(float(radius), 1e-6)
    return np.exp(-np.square(grid_distances) / (2.0 * radius * radius))


def bubble_neighborhood(grid_distances: np.ndarray, radius: float) -> np.ndarray:
    """Hard cut-off kernel: 1 within ``radius`` grid steps of the BMU, 0 outside."""
    return (grid_distances <= max(float(radius), 0.0)).astype(float)


def mexican_hat_neighborhood(grid_distances: np.ndarray, radius: float) -> np.ndarray:
    """Difference-of-Gaussians kernel with a mild inhibitory surround."""
    radius = max(float(radius), 1e-6)
    ratio = np.square(grid_distances) / (radius * radius)
    return (1.0 - ratio) * np.exp(-0.5 * ratio)


_NEIGHBORHOODS: Dict[str, NeighborhoodFunction] = {
    "gaussian": gaussian_neighborhood,
    "bubble": bubble_neighborhood,
    "mexican_hat": mexican_hat_neighborhood,
}


def get_neighborhood(name: str) -> NeighborhoodFunction:
    """Look up a neighbourhood kernel by name."""
    try:
        return _NEIGHBORHOODS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown neighborhood {name!r}; available: {sorted(_NEIGHBORHOODS)}"
        ) from exc


def available_neighborhoods() -> tuple:
    """Names of all registered neighbourhood kernels."""
    return tuple(sorted(_NEIGHBORHOODS))
