"""Anomaly-score threshold calibration.

A GHSOM (or flat SOM) reduces every connection record to a single number: the
distance between the record and the weight vector of its best matching leaf
unit.  Turning that distance into an alarm requires a threshold.  Two
strategies from the GHSOM intrusion-detection literature are implemented:

* :class:`GlobalThreshold` — one threshold for the whole model, set to a
  percentile of the training-score distribution (equivalently, to a target
  false-positive rate on normal training traffic);
* :class:`PerUnitThreshold` — one threshold per leaf unit, set to
  ``mean + k * std`` of the distances of the training samples mapped to that
  unit, with a global fallback for units that saw too few samples.  Per-unit
  thresholds adapt to the very different tightness of different clusters
  (e.g. the ``smurf`` cluster is nearly a point while normal HTTP traffic is
  diffuse).

Both expose ``threshold_for(leaf_key)`` plus a vectorised ``normalize`` that
maps raw distances to *score ratios* (distance / threshold), so a ratio above
1 means "above threshold" regardless of strategy.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, NotFittedError
from repro.utils.validation import check_positive

LeafKey = Tuple[str, int]


class GlobalThreshold:
    """A single threshold shared by every leaf unit.

    Parameters
    ----------
    percentile:
        The percentile of the training-score distribution used as the
        threshold (e.g. 99.0 keeps the false-positive rate on training-like
        normal traffic near 1%).
    """

    def __init__(self, percentile: float = 99.0) -> None:
        if not 0.0 < percentile <= 100.0:
            raise ConfigurationError(f"percentile must be in (0, 100], got {percentile}")
        self.percentile = float(percentile)
        self._threshold: Optional[float] = None
        #: Bumped on every (re)calibration so consumers caching derived tables
        #: (e.g. the detector's per-leaf threshold arrays) can detect in-place
        #: refits of the same strategy object.  Declared here (not lazily in
        #: ``fit``) so deserialized strategies carry it too.
        self.fit_version = 0

    @property
    def is_fitted(self) -> bool:
        return self._threshold is not None

    @property
    def threshold(self) -> float:
        if self._threshold is None:
            raise NotFittedError("GlobalThreshold is not calibrated")
        return self._threshold

    def fit(self, distances: Sequence[float], leaf_keys: Optional[Sequence[LeafKey]] = None) -> "GlobalThreshold":
        """Calibrate from training distances (leaf keys are accepted but unused)."""
        values = np.asarray(distances, dtype=float)
        if values.size == 0:
            raise ConfigurationError("cannot calibrate a threshold from zero distances")
        threshold = float(np.percentile(values, self.percentile))
        self._threshold = max(threshold, 1e-12)
        self.fit_version += 1
        return self

    def threshold_for(self, leaf_key: LeafKey) -> float:
        """The calibrated threshold (identical for every leaf)."""
        return self.threshold

    def normalize(self, distances: Sequence[float], leaf_keys: Sequence[LeafKey]) -> np.ndarray:
        """Score ratios ``distance / threshold`` (>1 means above threshold)."""
        values = np.asarray(distances, dtype=float)
        return values / self.threshold

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation."""
        return {
            "kind": "global",
            "percentile": self.percentile,
            "threshold": self._threshold,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "GlobalThreshold":
        """Inverse of :meth:`to_dict`."""
        strategy = cls(percentile=float(data.get("percentile", 99.0)))
        threshold = data.get("threshold")
        strategy._threshold = float(threshold) if threshold is not None else None
        return strategy


class PerUnitThreshold:
    """Per-leaf thresholds ``mean + k * std`` with a global fallback.

    Parameters
    ----------
    k:
        Number of standard deviations above the per-unit mean distance.
    min_count:
        Units with fewer training samples than this use the global fallback
        threshold.
    fallback_percentile:
        Percentile of the global training-score distribution used for the
        fallback and for leaves never seen during calibration.
    min_threshold_fraction:
        Per-unit thresholds are floored at this fraction of the global
        fallback.  Very pure leaves (e.g. a cluster of near-identical flood
        records) would otherwise get a near-zero threshold and flag every
        slightly-off record, which destroys the low-false-positive operating
        region.
    """

    def __init__(
        self,
        k: float = 3.0,
        *,
        min_count: int = 5,
        fallback_percentile: float = 99.0,
        min_threshold_fraction: float = 0.25,
    ) -> None:
        check_positive(k, "k")
        if min_count < 1:
            raise ConfigurationError(f"min_count must be >= 1, got {min_count}")
        if not 0.0 < fallback_percentile <= 100.0:
            raise ConfigurationError(
                f"fallback_percentile must be in (0, 100], got {fallback_percentile}"
            )
        if not 0.0 <= min_threshold_fraction <= 1.0:
            raise ConfigurationError(
                f"min_threshold_fraction must be in [0, 1], got {min_threshold_fraction}"
            )
        self.k = float(k)
        self.min_count = int(min_count)
        self.fallback_percentile = float(fallback_percentile)
        self.min_threshold_fraction = float(min_threshold_fraction)
        self._thresholds: Optional[Dict[LeafKey, float]] = None
        self._fallback: Optional[float] = None
        #: See GlobalThreshold: declared eagerly so cached-table consumers can
        #: rely on the attribute existing on deserialized strategies as well.
        self.fit_version = 0

    @property
    def is_fitted(self) -> bool:
        return self._thresholds is not None

    def fit(self, distances: Sequence[float], leaf_keys: Sequence[LeafKey]) -> "PerUnitThreshold":
        """Calibrate per-leaf thresholds from training distances and their leaf keys."""
        values = np.asarray(distances, dtype=float)
        if values.size == 0:
            raise ConfigurationError("cannot calibrate a threshold from zero distances")
        if len(leaf_keys) != values.size:
            raise ConfigurationError(
                f"got {values.size} distances but {len(leaf_keys)} leaf keys"
            )
        self._fallback = max(float(np.percentile(values, self.fallback_percentile)), 1e-12)
        grouped: Dict[LeafKey, list] = defaultdict(list)
        for key, value in zip(leaf_keys, values, strict=True):
            grouped[key].append(float(value))
        floor = self.min_threshold_fraction * self._fallback
        thresholds: Dict[LeafKey, float] = {}
        for key, group in grouped.items():
            if len(group) < self.min_count:
                thresholds[key] = self._fallback
                continue
            group_array = np.asarray(group)
            threshold = float(group_array.mean() + self.k * group_array.std())
            # Per-unit thresholds adapt the sensitivity *downwards* for tight
            # clusters but are never more permissive than the global rule:
            # a diffuse leaf must not grant a free pass to everything near it.
            threshold = min(max(threshold, floor), self._fallback)
            thresholds[key] = max(threshold, 1e-12)
        self._thresholds = thresholds
        self.fit_version += 1
        return self

    def threshold_for(self, leaf_key: LeafKey) -> float:
        """Threshold of one leaf (the global fallback for unknown leaves)."""
        if self._thresholds is None or self._fallback is None:
            raise NotFittedError("PerUnitThreshold is not calibrated")
        return self._thresholds.get(leaf_key, self._fallback)

    def normalize(self, distances: Sequence[float], leaf_keys: Sequence[LeafKey]) -> np.ndarray:
        """Score ratios ``distance / per-unit threshold``."""
        values = np.asarray(distances, dtype=float)
        thresholds = np.array([self.threshold_for(key) for key in leaf_keys])
        return values / thresholds

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation."""
        if self._thresholds is None:
            thresholds_payload = None
        else:
            thresholds_payload = [
                {"node_id": key[0], "unit": key[1], "threshold": value}
                for key, value in self._thresholds.items()
            ]
        return {
            "kind": "per_unit",
            "k": self.k,
            "min_count": self.min_count,
            "fallback_percentile": self.fallback_percentile,
            "min_threshold_fraction": self.min_threshold_fraction,
            "fallback": self._fallback,
            "thresholds": thresholds_payload,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PerUnitThreshold":
        """Inverse of :meth:`to_dict`."""
        strategy = cls(
            k=float(data.get("k", 3.0)),
            min_count=int(data.get("min_count", 5)),
            fallback_percentile=float(data.get("fallback_percentile", 99.0)),
            min_threshold_fraction=float(data.get("min_threshold_fraction", 0.25)),
        )
        fallback = data.get("fallback")
        strategy._fallback = float(fallback) if fallback is not None else None
        thresholds = data.get("thresholds")
        if thresholds is not None:
            strategy._thresholds = {
                (str(entry["node_id"]), int(entry["unit"])): float(entry["threshold"])
                for entry in thresholds  # type: ignore[union-attr]
            }
        return strategy


def make_threshold_strategy(name: str, **kwargs):
    """Factory for threshold strategies (``"global"`` or ``"per_unit"``)."""
    if name == "global":
        return GlobalThreshold(**kwargs)
    if name == "per_unit":
        return PerUnitThreshold(**kwargs)
    raise ConfigurationError(f"unknown threshold strategy {name!r}; use 'global' or 'per_unit'")


def threshold_from_dict(data: Dict[str, object]):
    """Rebuild a threshold strategy from its :meth:`to_dict` payload."""
    kind = data.get("kind")
    if kind == "global":
        return GlobalThreshold.from_dict(data)
    if kind == "per_unit":
        return PerUnitThreshold.from_dict(data)
    raise ConfigurationError(f"unknown threshold payload kind {kind!r}")
