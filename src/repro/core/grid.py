"""Rectangular map-grid topology for SOM layers.

A :class:`MapGrid` tracks only the geometry of a map — unit coordinates,
pairwise grid distances and adjacency — independently of the codebook
vectors.  Keeping geometry separate makes the growing operations (row/column
insertion) easy to test in isolation from training.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.exceptions import ConfigurationError


class MapGrid:
    """A ``rows x cols`` rectangular grid of SOM units.

    Units are identified by their flat index ``unit = row * cols + col`` which
    matches the row-major layout of the codebook matrix.
    """

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ConfigurationError(f"grid dimensions must be >= 1, got {rows}x{cols}")
        self.rows = int(rows)
        self.cols = int(cols)

    # ------------------------------------------------------------------ #
    @property
    def n_units(self) -> int:
        """Total number of units on the grid."""
        return self.rows * self.cols

    @property
    def shape(self) -> Tuple[int, int]:
        """Grid shape ``(rows, cols)``."""
        return (self.rows, self.cols)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MapGrid(rows={self.rows}, cols={self.cols})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MapGrid) and self.shape == other.shape

    # ------------------------------------------------------------------ #
    def coordinates(self) -> np.ndarray:
        """``(n_units, 2)`` array of ``(row, col)`` coordinates in flat-index order."""
        rows, cols = np.meshgrid(np.arange(self.rows), np.arange(self.cols), indexing="ij")
        return np.stack([rows.ravel(), cols.ravel()], axis=1).astype(float)

    def unit_index(self, row: int, col: int) -> int:
        """Flat index of the unit at ``(row, col)``."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ConfigurationError(
                f"position ({row}, {col}) outside a {self.rows}x{self.cols} grid"
            )
        return row * self.cols + col

    def position(self, unit: int) -> Tuple[int, int]:
        """``(row, col)`` coordinates of flat index ``unit``."""
        if not 0 <= unit < self.n_units:
            raise ConfigurationError(f"unit {unit} outside a grid of {self.n_units} units")
        return divmod(unit, self.cols)

    def iter_units(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(unit, row, col)`` for every unit in flat-index order."""
        for unit in range(self.n_units):
            row, col = self.position(unit)
            yield unit, row, col

    # ------------------------------------------------------------------ #
    def grid_distances(self) -> np.ndarray:
        """``(n_units, n_units)`` matrix of Euclidean distances between unit coordinates."""
        coords = self.coordinates()
        deltas = coords[:, None, :] - coords[None, :, :]
        return np.sqrt(np.sum(np.square(deltas), axis=2))

    def distances_from(self, unit: int) -> np.ndarray:
        """Grid distances from ``unit`` to every unit (vector of length ``n_units``)."""
        coords = self.coordinates()
        origin = coords[unit]
        return np.sqrt(np.sum(np.square(coords - origin), axis=1))

    def neighbors(self, unit: int) -> List[int]:
        """Flat indices of the 4-connected neighbours of ``unit``."""
        row, col = self.position(unit)
        candidates = [(row - 1, col), (row + 1, col), (row, col - 1), (row, col + 1)]
        return [
            self.unit_index(r, c)
            for r, c in candidates
            if 0 <= r < self.rows and 0 <= c < self.cols
        ]

    def are_adjacent(self, first: int, second: int) -> bool:
        """Whether two units are 4-connected neighbours."""
        return second in self.neighbors(first)

    # ------------------------------------------------------------------ #
    # Growth operations.  These return the new grid; the caller is
    # responsible for expanding the codebook to match (see GrowingSom).
    # ------------------------------------------------------------------ #
    def with_row_inserted(self, after_row: int) -> "MapGrid":
        """A new grid with one extra row inserted after ``after_row``."""
        if not 0 <= after_row < self.rows:
            raise ConfigurationError(f"after_row={after_row} outside a grid with {self.rows} rows")
        return MapGrid(self.rows + 1, self.cols)

    def with_col_inserted(self, after_col: int) -> "MapGrid":
        """A new grid with one extra column inserted after ``after_col``."""
        if not 0 <= after_col < self.cols:
            raise ConfigurationError(f"after_col={after_col} outside a grid with {self.cols} cols")
        return MapGrid(self.rows, self.cols + 1)

    def initial_radius(self) -> float:
        """A sensible initial neighbourhood radius for this grid (half its larger side)."""
        return max(max(self.rows, self.cols) / 2.0, 1.0)
