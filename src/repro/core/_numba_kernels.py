"""Numba implementation of the fused descent kernel.

Importing this module requires numba; :mod:`repro.core.kernels` imports it
lazily inside a ``try`` block, so environments without numba never touch it.
The kernel mirrors the compiled-C provider's semantics exactly — squared
Euclidean BMU search with the numpy engine's FLOP shape
(``-2·x·w + |x|² + |w|²`` clamped at zero), strict ``<`` argmin updates so
ties resolve to the lowest unit index, and a second exact pass over the
landing node for manhattan/chebyshev quantization distances — but expresses
the whole tree descent per sample (no level synchronisation needed when
samples are independent) and parallelises over samples with ``prange``.

The padded lane-transposed plan arrays are accepted for signature parity with
the C provider; only ``tnorm_offsets``/``tnorms`` are used here (the norms in
lane layout double as the per-node norm table), distance accumulation reads
the natural row-major codebook, which is the layout LLVM vectorises best for
the per-sample loop.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np


def build_kernels() -> SimpleNamespace:
    """JIT-compile the descent kernel and smoke-test it on a trivial model.

    Raises whatever numba raises when unavailable or broken; the caller
    records the failure and disables the provider.  The smoke test forces
    compilation at probe time so a broken numba install cannot surface as a
    crash on the first serving batch.
    """
    from numba import njit, prange

    @njit(parallel=True, fastmath=False, cache=False)
    def descend(
        x,
        snorms,
        entries,
        tcodebook,
        toffsets,
        tnorm_offsets,
        punits,
        tnorms,
        codebook,
        node_offsets,
        child_of_unit,
        leaf_of_unit,
        metric_id,
        leaf_index,
        distances,
    ):
        n, d = x.shape
        for i in prange(n):
            node = entries[i]
            # dtype-typed zero so float32 batches accumulate in float32,
            # matching the C provider's lanes.
            zero = x[i, 0] - x[i, 0]
            while True:
                start = node_offsets[node]
                stop = node_offsets[node + 1]
                norm_base = tnorm_offsets[node]
                best = np.inf
                bestu = -1
                for u in range(stop - start):
                    acc = zero
                    for j in range(d):
                        acc += x[i, j] * codebook[start + u, j]
                    d2 = acc * -2.0 + snorms[i] + tnorms[norm_base + u]
                    if d2 < 0.0:
                        d2 = zero
                    if d2 < best:
                        best = d2
                        bestu = u
                child = child_of_unit[start + bestu]
                if child >= 0:
                    node = child
                    continue
                leaf_index[i] = leaf_of_unit[start + bestu]
                if metric_id == 0:
                    distances[i] = best
                elif metric_id == 1:
                    distances[i] = np.sqrt(best)
                else:
                    exact = np.inf
                    for u in range(start, stop):
                        acc = zero
                        if metric_id == 2:
                            for j in range(d):
                                acc += abs(x[i, j] - codebook[u, j])
                        else:
                            for j in range(d):
                                a = abs(x[i, j] - codebook[u, j])
                                if a > acc:
                                    acc = a
                        if acc < exact:
                            exact = acc
                    distances[i] = exact
                break

    # Trivial one-node, one-unit, one-leaf model: forces JIT compilation for
    # the float64 signature and sanity-checks the wiring.
    x = np.ones((1, 2))
    leaf_index = np.full(1, -1, dtype=np.int64)
    distances = np.zeros(1)
    descend(
        x,
        np.array([2.0]),
        np.zeros(1, dtype=np.int64),
        np.zeros(16),
        np.zeros(1, dtype=np.int64),
        np.zeros(1, dtype=np.int64),
        np.array([8], dtype=np.int64),
        np.zeros(8),
        np.ones((1, 2)),
        np.array([0, 1], dtype=np.int64),
        np.array([-1], dtype=np.int64),
        np.array([0], dtype=np.int64),
        np.int64(0),
        leaf_index,
        distances,
    )
    if leaf_index[0] != 0 or distances[0] != 0.0:
        raise RuntimeError(
            f"numba kernel smoke test failed: leaf={leaf_index[0]} dist={distances[0]}"
        )
    return SimpleNamespace(descend=descend)
