"""Ensemble of anomaly detectors.

SOM-family models are sensitive to initialisation: two GHSOMs trained with
different seeds carve the input space differently, and their mistakes are
largely uncorrelated.  :class:`EnsembleDetector` exploits that by training
several member detectors and combining their threshold-normalised scores
(mean, median or max) — the standard variance-reduction extension discussed in
the GHSOM intrusion-detection literature.  Members can also be heterogeneous
(e.g. a GHSOM plus a PCA-subspace detector) since every detector in this
library emits scores on the same "1.0 = at threshold" scale.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.detector import BaseAnomalyDetector
from repro.exceptions import ConfigurationError
from repro.utils.validation import check_array_2d


class EnsembleDetector(BaseAnomalyDetector):
    """Combines the scores of several member detectors.

    Parameters
    ----------
    members:
        Either ready detector instances, or zero-argument factories producing
        them (factories let an ensemble of identical models differ only by
        seed).
    combination:
        ``"mean"`` (default), ``"median"`` or ``"max"`` of the member scores.
    """

    name = "ensemble"

    def __init__(
        self,
        members: Sequence[object],
        *,
        combination: str = "mean",
    ) -> None:
        if not members:
            raise ConfigurationError("an ensemble needs at least one member")
        if combination not in ("mean", "median", "max"):
            raise ConfigurationError(
                f"combination must be 'mean', 'median' or 'max', got {combination!r}"
            )
        self._member_specs = list(members)
        self.combination = combination
        self.members: List[BaseAnomalyDetector] = []

    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        return bool(self.members)

    def _materialise_members(self) -> List[BaseAnomalyDetector]:
        materialised: List[BaseAnomalyDetector] = []
        for spec in self._member_specs:
            member = spec() if callable(spec) and not isinstance(spec, BaseAnomalyDetector) else spec
            if not isinstance(member, BaseAnomalyDetector):
                raise ConfigurationError(
                    f"ensemble member {member!r} does not implement the detector interface"
                )
            materialised.append(member)
        return materialised

    def fit(self, X, y: Optional[Sequence[str]] = None) -> "EnsembleDetector":
        """Fit every member on the same data."""
        matrix = check_array_2d(X, "X", min_rows=2)
        self.members = self._materialise_members()
        for member in self.members:
            member.fit(matrix, y)
        return self

    # ------------------------------------------------------------------ #
    def _member_scores(self, X) -> np.ndarray:
        matrix = check_array_2d(X, "X")
        return np.stack([member.score_samples(matrix) for member in self.members], axis=0)

    def score_samples(self, X) -> np.ndarray:
        """Combined threshold-normalised scores of all members."""
        self._require_fitted(self.is_fitted)
        scores = self._member_scores(X)
        if self.combination == "mean":
            return scores.mean(axis=0)
        if self.combination == "median":
            return np.median(scores, axis=0)
        return scores.max(axis=0)

    def predict_category(self, X) -> List[str]:
        """Majority vote of the members' category predictions (ties -> first member)."""
        self._require_fitted(self.is_fitted)
        votes = [member.predict_category(X) for member in self.members]
        combined: List[str] = []
        for index in range(len(votes[0])):
            candidates = [vote[index] for vote in votes]
            counts: dict = {}
            for candidate in candidates:
                counts[candidate] = counts.get(candidate, 0) + 1
            best = max(counts.items(), key=lambda item: (item[1], item[0] == candidates[0]))
            combined.append(best[0])
        return combined

    def member_agreement(self, X) -> np.ndarray:
        """Fraction of members whose binary decision agrees with the ensemble decision."""
        self._require_fitted(self.is_fitted)
        member_decisions = np.stack([member.predict(X) for member in self.members], axis=0)
        ensemble_decisions = self.predict(X)
        return (member_decisions == ensemble_decisions[None, :]).mean(axis=0)
