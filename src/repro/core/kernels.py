"""Fused distance+argmin descent kernels and the compute-engine registry.

The numpy engine in :func:`repro.core.compiled.frontier_descent` materialises a
full ``(pending, units)`` squared-distance matrix per node per level (one BLAS
GEMM plus four elementwise passes) and then argmins it in a second memory
pass.  For the shallow-wide trees this library serves, most of that time is
memory traffic over temporaries, not arithmetic.

The *fused* engine here performs the whole descent in one pass: per sample,
distance accumulation and the running argmin stay in registers — no ``(n, u)``
temporary, no second argmin pass, no per-level Python loop.  Two providers
implement it behind one seam:

``"cc"``
    A small C kernel compiled on first use with the system C compiler and
    loaded through :mod:`ctypes`.  The codebook is repacked once per model
    into a lane-transposed layout (units across SIMD lanes, padded to the
    vector width) so the hot loop is a register-tiled run of
    8-samples x lane-chunk fused multiply-adds with a vectorised running
    argmin.  Measured ~2-4x over the numpy engine single-core.
``"numba"``
    The same algorithm expressed as ``numba.njit`` loops (lazy-compiled,
    ``prange`` over sample tiles).  Used when numba is importable and no C
    toolchain is available; also directly selectable for testing.

Both providers are *optional*: when neither a working C compiler nor numba is
present, the ``"auto"`` engine silently resolves to ``"numpy"`` — no warnings,
no hard dependency.  The numpy engine remains the library default because its
output is byte-identical across hosts (golden artifacts, remote shard
byte-identity); the fused engine is *documented-ulp* equivalent instead: leaf
assignments match exactly on non-degenerate data, distances agree within
:data:`FUSED_DISTANCE_RTOL` (scalar accumulation orders FLOPs differently from
BLAS GEMM — the same contract as the float32 serving mode from PR 2).

Engine names accepted everywhere (``assign_arrays(engine=...)``, the
detector's :meth:`~repro.core.detector.GhsomDetector.set_engine`,
``load_bundle(engine=...)``, ``repro-ids detect --engine``):

* ``"numpy"`` — the vectorised reference path (default; byte-exact);
* ``"fused"`` — require the fused kernel (raises if unavailable);
* ``"auto"``  — fused when a provider supports the metric/dtype, else numpy.
"""

from __future__ import annotations

import ctypes
import os
import subprocess
import tempfile
import threading
import weakref
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Tuple

import numpy as np
import numpy.typing as npt

from repro._typing import AnyArray
from repro.exceptions import ConfigurationError

#: Engine names accepted by every ``engine=`` parameter in the library.
ENGINES = ("numpy", "fused", "auto")

#: Relative distance tolerance of the fused engine against the numpy engine,
#: per serving dtype.  Measured drift is ~1e-13 (float64) / ~1e-5 (float32);
#: the documented gates leave headroom for other BLAS builds.  Leaf
#: assignments are required to match exactly (ties broken identically: both
#: engines pick the lowest unit index among minimal distances).
FUSED_DISTANCE_RTOL: Dict[str, float] = {"float64": 1e-9, "float32": 2e-4}

#: Metrics the fused kernels implement.  BMU search is always squared
#: Euclidean (matching the tree's training rule); Manhattan / Chebyshev only
#: change the reported quantization distance at the landing node.
FUSED_METRICS = ("euclidean", "sqeuclidean", "manhattan", "chebyshev")
_METRIC_IDS = {"sqeuclidean": 0, "euclidean": 1, "manhattan": 2, "chebyshev": 3}

#: Environment variable forcing a provider ("cc", "numba", or "none").
PROVIDER_ENV = "REPRO_FUSED_PROVIDER"

# Reentrant: the provider probe holds it while calling into the per-provider
# loaders, which take it again.
_lock = threading.RLock()
#: Resolved provider: unset sentinel -> None/"cc"/"numba" once probed.
_active_provider: Optional[str] = None
_provider_probed = False
_forced_provider: Optional[str] = None
#: Why a provider is unavailable, keyed by provider name (debugging aid).
_provider_errors: Dict[str, str] = {}

_default_engine = "numpy"


# --------------------------------------------------------------------------- #
# engine selection
# --------------------------------------------------------------------------- #
def check_engine(engine: str) -> str:
    """Validate an engine name, returning it unchanged."""
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown compute engine {engine!r}; expected one of {ENGINES}"
        )
    return engine


def set_default_engine(engine: str) -> None:
    """Set the library-wide default engine (``"numpy"`` unless changed).

    The default applies wherever ``engine=None`` is passed (or nothing at
    all): ``CompiledGhsom.assign_arrays``, detectors without an explicit
    :meth:`~repro.core.detector.GhsomDetector.set_engine`, shard builds.
    ``"numpy"`` is the shipped default so golden artifacts and cross-host
    byte-identity guarantees hold without opt-in.
    """
    global _default_engine
    _default_engine = check_engine(engine)


def get_default_engine() -> str:
    """The library-wide default engine name."""
    return _default_engine


def resolve_engine(
    engine: Optional[str],
    *,
    metric: str,
    dtype: npt.DTypeLike,
    strict: bool = False,
) -> str:
    """Resolve an engine request to the concrete engine to run: numpy or fused.

    ``None`` means "use the library default".  ``"auto"`` picks the fused
    kernel when a provider is available and supports ``metric``/``dtype``,
    silently falling back to numpy otherwise.  ``"fused"`` falls back the same
    way unless ``strict=True``, in which case an unavailable kernel raises
    :class:`~repro.exceptions.ConfigurationError` — configuration-time callers
    (CLI flags, ``set_engine``) pass ``strict`` so a typo or a missing
    toolchain fails fast instead of silently serving slower; the per-batch hot
    path never raises.
    """
    requested = check_engine(engine) if engine is not None else _default_engine
    if requested == "numpy":
        return "numpy"
    supported = fused_supported(metric, dtype)
    if requested == "fused" and strict and not supported:
        detail = (
            f"metric {metric!r} / dtype {np.dtype(dtype).name!r} is outside the "
            f"fused kernel's support matrix ({FUSED_METRICS}, float64/float32)"
            if fused_provider() is not None
            else "no fused kernel provider is available "
            "(install numba or a C toolchain); "
            + "; ".join(f"{k}: {v}" for k, v in sorted(_provider_errors.items()))
        )
        raise ConfigurationError(f"the fused engine is unavailable: {detail}")
    return "fused" if supported else "numpy"


def fused_supported(metric: str, dtype: npt.DTypeLike) -> bool:
    """Whether the fused kernel can serve this metric/dtype combination."""
    if metric not in FUSED_METRICS:
        return False
    if np.dtype(dtype) not in (np.dtype(np.float64), np.dtype(np.float32)):
        return False
    # The kernels exchange indices as int64; every 64-bit platform this
    # library targets has np.intp == int64.
    if np.dtype(np.intp).itemsize != 8:
        return False
    return fused_provider() is not None


# --------------------------------------------------------------------------- #
# provider registry
# --------------------------------------------------------------------------- #
def available_fused_providers() -> Tuple[str, ...]:
    """Names of providers that actually work on this host (probing them)."""
    return tuple(
        name for name in ("cc", "numba") if _probe_provider(name) is not None
    )


def fused_provider() -> Optional[str]:
    """The provider the fused engine will run on, or ``None`` if unavailable.

    Preference order: the :data:`PROVIDER_ENV` environment variable or
    :func:`set_fused_provider` override if given, else the compiled-C kernel
    (measured fastest), else numba.  The probe runs once per process; a failed
    probe records its reason in the provider diagnostics.
    """
    global _active_provider, _provider_probed
    forced = _forced_provider or os.environ.get(PROVIDER_ENV) or None
    if forced is not None:
        if forced == "none":
            return None
        if forced not in ("cc", "numba"):
            raise ConfigurationError(
                f"unknown fused provider {forced!r}; expected 'cc', 'numba' or 'none'"
            )
        return forced if _probe_provider(forced) is not None else None
    with _lock:
        if not _provider_probed:
            _active_provider = next(
                (name for name in ("cc", "numba") if _probe_provider(name) is not None),
                None,
            )
            _provider_probed = True
        return _active_provider


def set_fused_provider(name: Optional[str]) -> None:
    """Force the fused provider: ``"cc"``, ``"numba"``, ``"none"``, or ``None``.

    ``"none"`` disables the fused engine entirely (``"auto"`` then resolves to
    numpy — the degraded-environment behaviour, reachable without uninstalling
    anything); ``None`` restores automatic selection.  Mainly for tests and
    the CI legs that pin a provider.
    """
    global _forced_provider
    if name not in (None, "cc", "numba", "none"):
        raise ConfigurationError(
            f"unknown fused provider {name!r}; expected 'cc', 'numba', 'none' or None"
        )
    _forced_provider = name


def provider_diagnostics() -> Dict[str, str]:
    """Why each probed provider is unavailable (empty entries mean untried)."""
    return dict(_provider_errors)


def _probe_provider(name: str) -> Optional[object]:
    if name == "cc":
        return _cc_library()
    if name == "numba":
        return _numba_kernels()
    return None


# --------------------------------------------------------------------------- #
# lane-transposed kernel plans
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FusedPlan:
    """One model's codebook repacked for the fused kernels.

    ``tcodebook`` holds, per node, the node's codebook transposed to
    ``(d, padded_units)`` with the unit axis padded to the SIMD lane count and
    flattened; ``tnorms`` carries ``|w|^2`` in the same lane layout with the
    padding set to a huge value so padded lanes never win the argmin.
    Built once per compiled model (or shard) per serving dtype and cached on
    the owning object by weak reference — repacking touches every codebook
    page once, the per-batch hot path never copies it again.
    """

    lanes: int
    tcodebook: AnyArray  # flat, lane-transposed per-node blocks
    toffsets: AnyArray  # (n_nodes,) start of each node's block in tcodebook
    tnorm_offsets: AnyArray  # (n_nodes,) start of each node's lane-norm run
    punits: AnyArray  # (n_nodes,) padded unit count per node
    tnorms: AnyArray  # lane-layout |w|^2 with huge padding


_plan_cache: "weakref.WeakKeyDictionary[Any, FusedPlan]" = weakref.WeakKeyDictionary()


def _lanes_for(dtype: "np.dtype[Any]") -> int:
    # One 512-bit vector of the serving dtype; narrower ISAs simply split the
    # lane group across two or four hardware vectors.
    return 8 if dtype == np.dtype(np.float64) else 16


def fused_plan(owner: Any) -> FusedPlan:
    """The (cached) lane-transposed plan for a compiled model or shard.

    ``owner`` is anything exposing the flat-array hierarchy contract:
    ``codebook``, ``node_offsets`` and ``unit_norms`` attributes
    (:class:`~repro.core.compiled.CompiledGhsom` and
    :class:`~repro.serving.shards.SubtreeShard` both do).
    """
    try:
        plan = _plan_cache.get(owner)
    except TypeError:  # owner not weakref-able: build uncached
        plan = None
    if plan is not None:
        return plan
    codebook = np.asarray(owner.codebook)
    node_offsets = np.asarray(owner.node_offsets, dtype=np.int64)
    unit_norms = np.asarray(owner.unit_norms, dtype=codebook.dtype)
    dtype = codebook.dtype
    lanes = _lanes_for(dtype)
    huge = dtype.type(1e300 if dtype == np.dtype(np.float64) else 1e30)
    n_nodes = node_offsets.shape[0] - 1
    d = codebook.shape[1] if codebook.ndim == 2 else 0
    counts = node_offsets[1:] - node_offsets[:-1]
    punits = ((counts + lanes - 1) // lanes) * lanes
    tnorm_offsets = np.zeros(n_nodes, dtype=np.int64)
    np.cumsum(punits[:-1], out=tnorm_offsets[1:])
    toffsets = tnorm_offsets * d
    total = int(punits.sum())
    tcodebook = np.zeros(total * d, dtype=dtype)
    tnorms = np.full(total, huge, dtype=dtype)
    for node in range(n_nodes):
        start, stop = int(node_offsets[node]), int(node_offsets[node + 1])
        cnt = stop - start
        pu = int(punits[node])
        # Chunk-major lane layout: (pu // lanes, d, lanes) — each lane chunk
        # stores its d feature rows contiguously with units in the lanes, so
        # the kernel streams one chunk linearly per dot-product pass.
        padded = np.zeros((pu, d), dtype=dtype)
        padded[:cnt] = codebook[start:stop]
        block = tcodebook[int(toffsets[node]) : int(toffsets[node]) + d * pu]
        block.reshape(pu // lanes, d, lanes)[:] = (
            padded.reshape(pu // lanes, lanes, d).transpose(0, 2, 1)
        )
        norm_start = int(tnorm_offsets[node])
        tnorms[norm_start : norm_start + cnt] = unit_norms[start:stop]
    plan = FusedPlan(
        lanes=lanes,
        tcodebook=tcodebook,
        toffsets=toffsets,
        tnorm_offsets=tnorm_offsets,
        punits=punits.astype(np.int64, copy=False),
        tnorms=tnorms,
    )
    try:
        _plan_cache[owner] = plan
    except TypeError:
        pass
    return plan


# --------------------------------------------------------------------------- #
# the fused descent entry point
# --------------------------------------------------------------------------- #
def fused_descent(
    owner: Any,
    matrix: AnyArray,
    entry_nodes: AnyArray,
    *,
    metric: str,
) -> Tuple[AnyArray, AnyArray]:
    """Run the fused kernel over ``matrix`` (already validated and cast).

    Drop-in for :func:`repro.core.compiled.frontier_descent` output-wise:
    returns ``(leaf_index, distances)`` with distances in the serving dtype.
    ``owner`` supplies the flat arrays (and caches the kernel plan); callers
    are expected to have resolved the engine first — passing an unsupported
    metric/dtype here raises.
    """
    provider = fused_provider()
    if provider is None or not fused_supported(metric, matrix.dtype):
        raise ConfigurationError(
            f"fused kernel unavailable for metric={metric!r} "
            f"dtype={matrix.dtype} (provider={provider})"
        )
    plan = fused_plan(owner)
    n, d = matrix.shape
    codebook = np.ascontiguousarray(owner.codebook)
    node_offsets = np.ascontiguousarray(owner.node_offsets, dtype=np.int64)
    child_of_unit = np.ascontiguousarray(owner.child_of_unit, dtype=np.int64)
    leaf_of_unit = np.ascontiguousarray(owner.leaf_of_unit, dtype=np.int64)
    entries = np.ascontiguousarray(entry_nodes, dtype=np.int64)
    # |x|^2 per sample: the same row-wise einsum the numpy engine runs.
    snorms = np.einsum("ij,ij->i", matrix, matrix)
    leaf_index = np.empty(n, dtype=np.int64)
    distances = np.empty(n, dtype=matrix.dtype)
    metric_id = _METRIC_IDS[metric]
    if provider == "cc":
        _cc_descent(
            plan, matrix, snorms, entries, codebook, node_offsets,
            child_of_unit, leaf_of_unit, metric_id, leaf_index, distances,
        )
    else:
        _numba_descent(
            plan, matrix, snorms, entries, codebook, node_offsets,
            child_of_unit, leaf_of_unit, metric_id, leaf_index, distances,
        )
    return leaf_index.astype(np.intp, copy=False), distances


# --------------------------------------------------------------------------- #
# provider: compiled C via the system toolchain + ctypes
# --------------------------------------------------------------------------- #
#: Rendered separately for float64 (lanes=8) and float32 (lanes=16) by token
#: substitution and compiled into one shared library per dtype.  The vector
#: comparison result type matches the element width, so the index vector is
#: int64x8 for doubles and int32x16 for floats (node-local unit indices fit
#: int32 comfortably).  The driver is level-synchronous: pending samples are
#: counting-sorted by node each level (stable, so rows stay ascending within
#: a node), then each node's run is processed in 8-sample register tiles; the
#: remainder path accumulates in the same per-lane order as the tile path, so
#: results do not depend on how a batch splits into tiles.
_C_TEMPLATE = r"""
#include <stdint.h>
#include <math.h>
#include <string.h>

/* Trained codebooks routinely carry components that are denormal in float32
   (weights decay toward zero); every FMA touching one costs a microcode
   assist, a measured ~4x slowdown on real models.  The kernel runs with
   flush-to-zero + denormals-are-zero during the descent (restoring the
   caller's MXCSR on exit): the induced drift is ~1e-38 relative, orders of
   magnitude inside the documented fused-engine tolerance. */
#if defined(__SSE__) || defined(__x86_64__)
static inline uint32_t csr_get(void) { return __builtin_ia32_stmxcsr(); }
static inline void csr_set(uint32_t v) { __builtin_ia32_ldmxcsr(v); }
#define CSR_FTZ_DAZ 0x8040u
#else
static inline uint32_t csr_get(void) { return 0; }
static inline void csr_set(uint32_t v) { (void)v; }
#define CSR_FTZ_DAZ 0u
#endif

typedef @CTYPE@ vec __attribute__((vector_size(64), aligned(8)));
typedef @ITYPE@ vidx __attribute__((vector_size(64), aligned(8)));
#define LANES @LANES@
#define STILE 8

static inline vec vload(const @CTYPE@ *p) {
    vec v; __builtin_memcpy(&v, p, sizeof v); return v;
}

/* running vector argmin update: strict less-than keeps the first minimum */
static inline void vargmin(
    vec d2, vidx idx, vec *best, vidx *besti)
{
    const vidx lt = d2 < *best;
    *best = (vec)(((vidx)d2 & lt) | ((vidx)*best & ~lt));
    *besti = (idx & lt) | (*besti & ~lt);
}

/* horizontal: global first-minimum = lowest stored index among lanes at the
   global minimum (each lane's stored index is already that lane's first) */
static inline void hargmin(
    vec best, vidx besti, @CTYPE@ *out_best, int64_t *out_idx)
{
    @CTYPE@ m = best[0];
    for (int u = 1; u < LANES; ++u) if (best[u] < m) m = best[u];
    int64_t bi = INT64_MAX;
    for (int u = 0; u < LANES; ++u)
        if (best[u] == m && besti[u] < bi) bi = besti[u];
    *out_best = m;
    *out_idx = bi;
}

static inline vidx lane_ramp(void) {
    vidx r;
    for (int u = 0; u < LANES; ++u) r[u] = u;
    return r;
}

/* one 8-sample tile against one node's lane-transposed codebook */
static void tile_node_@SUFFIX@(
    const @CTYPE@ *restrict x, const int64_t *restrict rows, int64_t d,
    const @CTYPE@ *restrict wt, const @CTYPE@ *restrict wn,
    const @CTYPE@ *restrict snorms, int64_t pu,
    @CTYPE@ *restrict best, int64_t *restrict bestu)
{
    vec bv[STILE];
    vidx iv[STILE];
    const vidx zi = {0};
    for (int s = 0; s < STILE; ++s) {
        for (int u = 0; u < LANES; ++u) bv[s][u] = INFINITY;
        iv[s] = zi;
    }
    const vidx ramp = lane_ramp();
    const @CTYPE@ *x0 = x + rows[0] * d, *x1 = x + rows[1] * d;
    const @CTYPE@ *x2 = x + rows[2] * d, *x3 = x + rows[3] * d;
    const @CTYPE@ *x4 = x + rows[4] * d, *x5 = x + rows[5] * d;
    const @CTYPE@ *x6 = x + rows[6] * d, *x7 = x + rows[7] * d;
    for (int64_t c = 0; c < pu; c += LANES) {
        const @CTYPE@ *wc = wt + c * d;
        vec a0 = {0}, a1 = {0}, a2 = {0}, a3 = {0};
        vec a4 = {0}, a5 = {0}, a6 = {0}, a7 = {0};
        for (int64_t j = 0; j < d; ++j) {
            const vec w = vload(wc + j * LANES);
            a0 += x0[j] * w; a1 += x1[j] * w; a2 += x2[j] * w; a3 += x3[j] * w;
            a4 += x4[j] * w; a5 += x5[j] * w; a6 += x6[j] * w; a7 += x7[j] * w;
        }
        vec accs[STILE] = {a0, a1, a2, a3, a4, a5, a6, a7};
        const vec wnv = vload(wn + c);
        const vec zero = {0};
        const vidx idx = ramp + (@ITYPE@)c;
        for (int s = 0; s < STILE; ++s) {
            vec d2 = accs[s] * (@CTYPE@)-2.0 + snorms[s] + wnv;
            const vidx pos = d2 > zero;     /* clamp |x-w|^2 at 0, like numpy */
            d2 = (vec)((vidx)d2 & pos);
            vargmin(d2, idx, &bv[s], &iv[s]);
        }
    }
    for (int s = 0; s < STILE; ++s)
        hargmin(bv[s], iv[s], &best[s], &bestu[s]);
}

/* one sample, same per-lane accumulation order as the tile path */
static void one_node_@SUFFIX@(
    const @CTYPE@ *restrict xi, int64_t d,
    const @CTYPE@ *restrict wt, const @CTYPE@ *restrict wn,
    @CTYPE@ snorm, int64_t pu,
    @CTYPE@ *restrict best, int64_t *restrict bestu)
{
    vec bv;
    vidx iv = {0};
    for (int u = 0; u < LANES; ++u) bv[u] = INFINITY;
    const vidx ramp = lane_ramp();
    for (int64_t c = 0; c < pu; c += LANES) {
        const @CTYPE@ *wc = wt + c * d;
        vec acc = {0};
        for (int64_t j = 0; j < d; ++j)
            acc += xi[j] * vload(wc + j * LANES);
        vec d2 = acc * (@CTYPE@)-2.0 + snorm + vload(wn + c);
        const vec zero = {0};
        const vidx pos = d2 > zero;
        d2 = (vec)((vidx)d2 & pos);
        vargmin(d2, ramp + (@ITYPE@)c, &bv, &iv);
    }
    hargmin(bv, iv, best, bestu);
}

/* exact quantization distance at the landing node for non-Euclidean metrics
   (BMU search stays squared-Euclidean; only the reported distance changes) */
static @CTYPE@ exact_metric_@SUFFIX@(
    const @CTYPE@ *restrict xi, const @CTYPE@ *restrict codebook,
    int64_t d, int64_t start, int64_t stop, int64_t metric_id)
{
    @CTYPE@ best = INFINITY;
    for (int64_t u = start; u < stop; ++u) {
        const @CTYPE@ *w = codebook + u * d;
        @CTYPE@ acc = 0;
        if (metric_id == 2) {
            for (int64_t j = 0; j < d; ++j) acc += @FABS@(xi[j] - w[j]);
        } else {
            for (int64_t j = 0; j < d; ++j) {
                const @CTYPE@ a = @FABS@(xi[j] - w[j]);
                if (a > acc) acc = a;
            }
        }
        if (acc < best) best = acc;
    }
    return best;
}

void fused_descent_@SUFFIX@(
    const @CTYPE@ *restrict x, int64_t n, int64_t d,
    const @CTYPE@ *restrict tcodebook,
    const int64_t *restrict toffsets,
    const int64_t *restrict tnorm_offsets,
    const int64_t *restrict punits,
    const @CTYPE@ *restrict tnorms,
    const @CTYPE@ *restrict codebook,
    const int64_t *restrict node_offsets,
    const int64_t *restrict child_of_unit,
    const int64_t *restrict leaf_of_unit,
    const int64_t *restrict entry_nodes,
    const @CTYPE@ *restrict snorms,
    int64_t n_nodes, int64_t metric_id,
    int64_t *restrict leaf_index, @CTYPE@ *restrict distances,
    int64_t *restrict scratch /* 3*n + n_nodes + 1 */)
{
    int64_t *pending = scratch;
    int64_t *pnode = scratch + n;
    int64_t *grouped = scratch + 2 * n;
    int64_t *counts = scratch + 3 * n;
    int64_t npend = n;
    const uint32_t saved_csr = csr_get();
    csr_set(saved_csr | CSR_FTZ_DAZ);
    for (int64_t i = 0; i < n; ++i) { pending[i] = i; pnode[i] = entry_nodes[i]; }

    while (npend > 0) {
        /* stable counting sort of pending rows by node */
        memset(counts, 0, (size_t)(n_nodes + 1) * sizeof(int64_t));
        for (int64_t i = 0; i < npend; ++i) counts[pnode[i] + 1]++;
        for (int64_t k = 0; k < n_nodes; ++k) counts[k + 1] += counts[k];
        for (int64_t i = 0; i < npend; ++i) grouped[counts[pnode[i]]++] = pending[i];
        /* counts[k] is now the end of node k's run */
        int64_t out = 0;
        int64_t run_start = 0;
        for (int64_t node = 0; node < n_nodes; ++node) {
            const int64_t run_stop = counts[node];
            if (run_stop == run_start) continue;
            const int64_t pu = punits[node];
            const @CTYPE@ *wt = tcodebook + toffsets[node];
            const @CTYPE@ *wn = tnorms + tnorm_offsets[node];
            const int64_t ustart = node_offsets[node];
            const int64_t ustop = node_offsets[node + 1];
            int64_t i = run_start;
            for (; i + STILE <= run_stop; i += STILE) {
                const int64_t *rows = grouped + i;
                @CTYPE@ best[STILE];
                int64_t bestu[STILE];
                @CTYPE@ sn[STILE];
                for (int s = 0; s < STILE; ++s) sn[s] = snorms[rows[s]];
                tile_node_@SUFFIX@(x, rows, d, wt, wn, sn, pu, best, bestu);
                for (int s = 0; s < STILE; ++s) {
                    const int64_t gu = ustart + bestu[s];
                    const int64_t child = child_of_unit[gu];
                    const int64_t row = rows[s];
                    if (child >= 0) {
                        pending[out] = row; pnode[out] = child; ++out;
                    } else {
                        leaf_index[row] = leaf_of_unit[gu];
                        if (metric_id <= 1)
                            distances[row] = metric_id == 1 ? @SQRT@(best[s]) : best[s];
                        else
                            distances[row] = exact_metric_@SUFFIX@(
                                x + row * d, codebook, d, ustart, ustop, metric_id);
                    }
                }
            }
            for (; i < run_stop; ++i) {
                const int64_t row = grouped[i];
                @CTYPE@ best;
                int64_t bestu;
                one_node_@SUFFIX@(
                    x + row * d, d, wt, wn, snorms[row], pu, &best, &bestu);
                const int64_t gu = ustart + bestu;
                const int64_t child = child_of_unit[gu];
                if (child >= 0) {
                    pending[out] = row; pnode[out] = child; ++out;
                } else {
                    leaf_index[row] = leaf_of_unit[gu];
                    if (metric_id <= 1)
                        distances[row] = metric_id == 1 ? @SQRT@(best) : best;
                    else
                        distances[row] = exact_metric_@SUFFIX@(
                            x + row * d, codebook, d, ustart, ustop, metric_id);
                }
            }
            run_start = run_stop;
        }
        npend = out;
    }
    csr_set(saved_csr);
}
"""


_DTYPE_RENDER = {
    "f64": {"@CTYPE@": "double", "@ITYPE@": "int64_t", "@LANES@": "8",
            "@SUFFIX@": "f64", "@SQRT@": "sqrt", "@FABS@": "fabs"},
    "f32": {"@CTYPE@": "float", "@ITYPE@": "int32_t", "@LANES@": "16",
            "@SUFFIX@": "f32", "@SQRT@": "sqrtf", "@FABS@": "fabsf"},
}


def _render_c_source(suffix: str) -> str:
    source = _C_TEMPLATE
    for token, value in _DTYPE_RENDER[suffix].items():
        source = source.replace(token, value)
    return source


_cc_libs: Optional[Dict[str, ctypes.CDLL]] = None
_cc_tried = False


def _cc_library() -> Optional[Dict[str, ctypes.CDLL]]:
    """Compile (once per process) and load the C kernels; ``None`` on failure."""
    global _cc_libs, _cc_tried
    if _cc_tried:
        return _cc_libs
    with _lock:
        if _cc_tried:
            return _cc_libs
        _cc_libs = _build_cc_libraries()
        _cc_tried = True
    return _cc_libs


def _compiler_candidates() -> Iterator[str]:
    override = os.environ.get("CC")
    if override:
        yield override
    yield from ("cc", "gcc", "clang")


def _build_cc_libraries() -> Optional[Dict[str, ctypes.CDLL]]:
    import shutil

    compiler = next(
        (c for c in _compiler_candidates() if shutil.which(c)), None
    )
    if compiler is None:
        _provider_errors["cc"] = "no C compiler on PATH (cc/gcc/clang)"
        return None
    try:
        build_dir = tempfile.mkdtemp(prefix="repro-kernels-")
        libs: Dict[str, ctypes.CDLL] = {}
        for suffix in ("f64", "f32"):
            src_path = os.path.join(build_dir, f"kernels_{suffix}.c")
            lib_path = os.path.join(build_dir, f"kernels_{suffix}.so")
            with open(src_path, "w") as stream:
                stream.write(_render_c_source(suffix))
            base = [
                compiler, "-O3", "-shared", "-fPIC", src_path, "-o", lib_path, "-lm",
            ]
            # Prefer full-width native vectors; retry conservatively for
            # toolchains that reject the tuning flags.
            tuned = base[:1] + ["-march=native", "-mprefer-vector-width=512"] + base[1:]
            for command in (tuned, base):
                result = subprocess.run(
                    command,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    timeout=180,
                )
                if result.returncode == 0:
                    break
            else:
                _provider_errors["cc"] = (
                    f"{compiler} failed: {result.stderr.decode(errors='replace')[:500]}"
                )
                return None
            lib = ctypes.CDLL(lib_path)
            getattr(lib, f"fused_descent_{suffix}").restype = None
            libs[suffix] = lib
        return libs
    except Exception as exc:  # noqa: BLE001 - any failure just disables the provider
        _provider_errors["cc"] = f"{type(exc).__name__}: {exc}"
        return None


def _cc_descent(
    plan: FusedPlan,
    matrix: AnyArray,
    snorms: AnyArray,
    entries: AnyArray,
    codebook: AnyArray,
    node_offsets: AnyArray,
    child_of_unit: AnyArray,
    leaf_of_unit: AnyArray,
    metric_id: int,
    leaf_index: AnyArray,
    distances: AnyArray,
) -> None:
    libs = _cc_library()
    if libs is None:  # callers resolve the engine first; defensive belt
        raise ConfigurationError("the compiled-C fused kernel is unavailable")
    n, d = matrix.shape
    n_nodes = node_offsets.shape[0] - 1
    scratch = np.empty(3 * n + n_nodes + 1, dtype=np.int64)
    if matrix.dtype == np.dtype(np.float64):
        fn = libs["f64"].fused_descent_f64
        fp = ctypes.POINTER(ctypes.c_double)
    else:
        fn = libs["f32"].fused_descent_f32
        fp = ctypes.POINTER(ctypes.c_float)
    ip = ctypes.POINTER(ctypes.c_int64)
    fn(
        matrix.ctypes.data_as(fp),
        ctypes.c_int64(n),
        ctypes.c_int64(d),
        plan.tcodebook.ctypes.data_as(fp),
        plan.toffsets.ctypes.data_as(ip),
        plan.tnorm_offsets.ctypes.data_as(ip),
        plan.punits.ctypes.data_as(ip),
        plan.tnorms.ctypes.data_as(fp),
        codebook.ctypes.data_as(fp),
        node_offsets.ctypes.data_as(ip),
        child_of_unit.ctypes.data_as(ip),
        leaf_of_unit.ctypes.data_as(ip),
        entries.ctypes.data_as(ip),
        snorms.ctypes.data_as(fp),
        ctypes.c_int64(n_nodes),
        ctypes.c_int64(metric_id),
        leaf_index.ctypes.data_as(ip),
        distances.ctypes.data_as(fp),
        scratch.ctypes.data_as(ip),
    )


# --------------------------------------------------------------------------- #
# provider: numba
# --------------------------------------------------------------------------- #
_numba_cache: Optional[Any] = None
_numba_tried = False


def _numba_kernels() -> Optional[Any]:
    """Import and JIT-wrap the numba kernels once; ``None`` when unavailable."""
    global _numba_cache, _numba_tried
    if _numba_tried:
        return _numba_cache
    with _lock:
        if _numba_tried:
            return _numba_cache
        try:
            from repro.core import _numba_kernels as module

            _numba_cache = module.build_kernels()
        except ImportError as exc:
            _provider_errors["numba"] = f"numba not importable: {exc}"
            _numba_cache = None
        except Exception as exc:  # noqa: BLE001 - jit failures disable the provider
            _provider_errors["numba"] = f"{type(exc).__name__}: {exc}"
            _numba_cache = None
        _numba_tried = True
    return _numba_cache


def _numba_descent(
    plan: FusedPlan,
    matrix: AnyArray,
    snorms: AnyArray,
    entries: AnyArray,
    codebook: AnyArray,
    node_offsets: AnyArray,
    child_of_unit: AnyArray,
    leaf_of_unit: AnyArray,
    metric_id: int,
    leaf_index: AnyArray,
    distances: AnyArray,
) -> None:
    kernels = _numba_kernels()
    kernels.descend(
        matrix,
        snorms,
        entries,
        plan.tcodebook,
        plan.toffsets,
        plan.tnorm_offsets,
        plan.punits,
        plan.tnorms,
        codebook,
        node_offsets,
        child_of_unit,
        leaf_of_unit,
        np.int64(metric_id),
        leaf_index,
        distances,
    )


def numba_version() -> Optional[str]:
    """The installed numba version, or ``None`` (benchmark metadata)."""
    try:
        import numba

        return str(numba.__version__)
    except ImportError:
        return None


def _reset_for_tests() -> None:
    """Forget probe results and plan caches (test isolation hook)."""
    global _active_provider, _provider_probed, _cc_libs, _cc_tried
    global _numba_cache, _numba_tried, _forced_provider
    with _lock:
        _active_provider = None
        _provider_probed = False
        _cc_libs = None
        _cc_tried = False
        _numba_cache = None
        _numba_tried = False
        _forced_provider = None
        _provider_errors.clear()
        _plan_cache.clear()
