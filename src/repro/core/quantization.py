"""Quantization and topographic error measures.

These are the quality measures GHSOM growth decisions are based on:

* the **quantization error (QE)** of a unit is the summed (or mean) distance
  of the samples mapped to it from its weight vector;
* the **mean quantization error (MQE)** of a map is the average unit QE over
  units that have at least one mapped sample;
* ``qe0`` is the quantization error of the whole dataset with respect to its
  mean — the yardstick against which both growth thresholds are measured;
* the **topographic error** measures how often a sample's first and second
  BMUs are not adjacent on the grid, i.e. how well the map preserves
  topology.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.distances import euclidean, get_metric
from repro.core.grid import MapGrid
from repro.utils.validation import check_array_2d


def dataset_quantization_error(data, metric: str = "euclidean") -> float:
    """Quantization error of the dataset around its mean vector (``qe0``).

    This is the mean distance of every sample from the dataset centroid, the
    quantity the GHSOM literature calls ``qe_0`` (the error of the virtual
    layer-0 map consisting of a single unit).
    """
    matrix = check_array_2d(data, "data")
    centroid = matrix.mean(axis=0, keepdims=True)
    distances = get_metric(metric)(matrix, centroid)[:, 0]
    return float(distances.mean())


def unit_quantization_errors(
    data,
    codebook,
    assignments: Optional[np.ndarray] = None,
    metric: str = "euclidean",
    *,
    reduction: str = "mean",
) -> np.ndarray:
    """Per-unit quantization error.

    Parameters
    ----------
    data:
        Sample matrix ``(n, d)``.
    codebook:
        Unit weight matrix ``(u, d)``.
    assignments:
        Optional precomputed BMU index per sample; computed if omitted.
    reduction:
        ``"mean"`` (mean distance of mapped samples, classic MQE building
        block) or ``"sum"`` (total distance, emphasising populous units).

    Returns
    -------
    numpy.ndarray
        Vector of length ``u``; units with no mapped samples get 0.
    """
    matrix = check_array_2d(data, "data")
    weights = check_array_2d(codebook, "codebook")
    distance_matrix = get_metric(metric)(matrix, weights)
    if assignments is None:
        assignments = np.argmin(distance_matrix, axis=1)
    sample_distances = distance_matrix[np.arange(matrix.shape[0]), assignments]
    n_units = weights.shape[0]
    totals = np.bincount(assignments, weights=sample_distances, minlength=n_units)
    counts = np.bincount(assignments, minlength=n_units)
    if reduction == "sum":
        return totals
    if reduction != "mean":
        raise ValueError(f"reduction must be 'mean' or 'sum', got {reduction!r}")
    errors = np.zeros(n_units)
    populated = counts > 0
    errors[populated] = totals[populated] / counts[populated]
    return errors


def mean_quantization_error(
    data,
    codebook,
    assignments: Optional[np.ndarray] = None,
    metric: str = "euclidean",
) -> float:
    """Mean of the per-unit quantization errors over *populated* units (MQE)."""
    matrix = check_array_2d(data, "data")
    weights = check_array_2d(codebook, "codebook")
    distance_matrix = get_metric(metric)(matrix, weights)
    if assignments is None:
        assignments = np.argmin(distance_matrix, axis=1)
    errors = unit_quantization_errors(matrix, weights, assignments, metric)
    counts = np.bincount(assignments, minlength=weights.shape[0])
    populated = counts > 0
    if not np.any(populated):
        return 0.0
    return float(errors[populated].mean())


def average_sample_error(data, codebook, metric: str = "euclidean") -> float:
    """Mean distance of each sample from its BMU (the per-sample view of map quality)."""
    matrix = check_array_2d(data, "data")
    weights = check_array_2d(codebook, "codebook")
    distance_matrix = get_metric(metric)(matrix, weights)
    return float(distance_matrix.min(axis=1).mean())


def topographic_error(data, codebook, grid: MapGrid, metric: str = "euclidean") -> float:
    """Fraction of samples whose first and second BMUs are not grid neighbours.

    A value of 0 means perfect topology preservation.  Maps with fewer than
    two units have a topographic error of 0 by definition.
    """
    matrix = check_array_2d(data, "data")
    weights = check_array_2d(codebook, "codebook")
    if weights.shape[0] < 2:
        return 0.0
    distance_matrix = get_metric(metric)(matrix, weights)
    order = np.argsort(distance_matrix, axis=1)
    first, second = order[:, 0], order[:, 1]
    errors = 0
    for best, runner_up in zip(first, second, strict=True):
        if not grid.are_adjacent(int(best), int(runner_up)):
            errors += 1
    return errors / matrix.shape[0]
