"""Distance kernels used by the SOM family.

All functions are vectorised over numpy arrays: given a batch of samples with
shape ``(n, d)`` and a codebook with shape ``(u, d)`` they return an
``(n, u)`` matrix of distances.  Squared Euclidean distance is the work-horse
(best-matching-unit search only needs the argmin, so the square root can be
skipped), but Manhattan and Chebyshev metrics are provided for experimentation
and are exercised by the ablation tests.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_array_2d

DistanceFunction = Callable[[np.ndarray, np.ndarray], np.ndarray]


def squared_euclidean(samples: np.ndarray, codebook: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances between ``samples`` and ``codebook``.

    Uses the expansion ``|x - w|^2 = |x|^2 - 2 x.w + |w|^2`` which avoids
    materialising the ``(n, u, d)`` difference tensor.
    """
    samples = np.atleast_2d(np.asarray(samples, dtype=float))
    codebook = np.atleast_2d(np.asarray(codebook, dtype=float))
    sample_norms = np.einsum("ij,ij->i", samples, samples)[:, None]
    code_norms = np.einsum("ij,ij->i", codebook, codebook)[None, :]
    cross = samples @ codebook.T
    distances = sample_norms - 2.0 * cross + code_norms
    # Numerical noise can push tiny distances slightly below zero.
    np.maximum(distances, 0.0, out=distances)
    return distances


def euclidean(samples: np.ndarray, codebook: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances."""
    return np.sqrt(squared_euclidean(samples, codebook))


def manhattan(samples: np.ndarray, codebook: np.ndarray) -> np.ndarray:
    """Pairwise Manhattan (L1) distances."""
    samples = np.atleast_2d(np.asarray(samples, dtype=float))
    codebook = np.atleast_2d(np.asarray(codebook, dtype=float))
    return np.abs(samples[:, None, :] - codebook[None, :, :]).sum(axis=2)


def chebyshev(samples: np.ndarray, codebook: np.ndarray) -> np.ndarray:
    """Pairwise Chebyshev (L-infinity) distances."""
    samples = np.atleast_2d(np.asarray(samples, dtype=float))
    codebook = np.atleast_2d(np.asarray(codebook, dtype=float))
    return np.abs(samples[:, None, :] - codebook[None, :, :]).max(axis=2)


_METRICS: Dict[str, DistanceFunction] = {
    "euclidean": euclidean,
    "sqeuclidean": squared_euclidean,
    "manhattan": manhattan,
    "chebyshev": chebyshev,
}


def get_metric(name: str) -> DistanceFunction:
    """Look up a distance function by name.

    Raises
    ------
    ConfigurationError
        If the metric name is unknown.
    """
    try:
        return _METRICS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown distance metric {name!r}; available: {sorted(_METRICS)}"
        ) from exc


def available_metrics() -> tuple:
    """Names of all registered distance metrics."""
    return tuple(sorted(_METRICS))


def best_matching_units(samples, codebook, metric: str = "euclidean") -> np.ndarray:
    """Index of the closest codebook vector for each sample.

    The result is identical for ``euclidean`` and ``sqeuclidean`` metrics; the
    cheaper squared variant is substituted automatically.
    """
    samples = check_array_2d(samples, "samples")
    codebook = check_array_2d(codebook, "codebook")
    function = squared_euclidean if metric in ("euclidean", "sqeuclidean") else get_metric(metric)
    return np.argmin(function(samples, codebook), axis=1)
