"""Distance kernels used by the SOM family.

All functions are vectorised over numpy arrays: given a batch of samples with
shape ``(n, d)`` and a codebook with shape ``(u, d)`` they return an
``(n, u)`` matrix of distances.  Squared Euclidean distance is the work-horse
(best-matching-unit search only needs the argmin, so the square root can be
skipped), but Manhattan and Chebyshev metrics are provided for experimentation
and are exercised by the ablation tests.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_array_2d

DistanceFunction = Callable[[np.ndarray, np.ndarray], np.ndarray]


def squared_euclidean(samples: np.ndarray, codebook: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances between ``samples`` and ``codebook``.

    Uses the expansion ``|x - w|^2 = |x|^2 - 2 x.w + |w|^2`` which avoids
    materialising the ``(n, u, d)`` difference tensor.
    """
    samples = np.atleast_2d(np.asarray(samples, dtype=float))
    codebook = np.atleast_2d(np.asarray(codebook, dtype=float))
    sample_norms = np.einsum("ij,ij->i", samples, samples)[:, None]
    code_norms = np.einsum("ij,ij->i", codebook, codebook)[None, :]
    cross = samples @ codebook.T
    distances = sample_norms - 2.0 * cross + code_norms
    # Numerical noise can push tiny distances slightly below zero.
    np.maximum(distances, 0.0, out=distances)
    return distances


def euclidean(samples: np.ndarray, codebook: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances."""
    return np.sqrt(squared_euclidean(samples, codebook))


#: Scratch budget (in float64 elements, ~128 MiB) for the broadcast L1/Linf
#: kernels.  The ``(chunk, u, d)`` difference tensor is bounded by this, so a
#: million-record batch no longer materialises an ``(n, u, d)`` tensor at once.
_BROADCAST_BUDGET_ELEMENTS = 16 * 1024 * 1024


def _chunked_broadcast_reduce(
    samples: np.ndarray, codebook: np.ndarray, reduce_kind: str
) -> np.ndarray:
    """Reduce ``|samples[:, None, :] - codebook[None, :, :]|`` over features in chunks.

    Each sample row's result is computed exactly as in the one-shot broadcast
    (identical operations, identical values); only the number of rows in
    flight at once is bounded, keeping peak scratch memory constant regardless
    of the batch size.
    """
    samples = np.atleast_2d(np.asarray(samples, dtype=float))
    codebook = np.atleast_2d(np.asarray(codebook, dtype=float))
    n, d = samples.shape
    u = codebook.shape[0]
    per_row = max(u * d, 1)
    chunk = max(1, _BROADCAST_BUDGET_ELEMENTS // per_row)
    if chunk >= n:
        diff = np.abs(samples[:, None, :] - codebook[None, :, :])
        return diff.sum(axis=2) if reduce_kind == "sum" else diff.max(axis=2)
    out = np.empty((n, u), dtype=float)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        diff = np.abs(samples[start:stop, None, :] - codebook[None, :, :])
        out[start:stop] = diff.sum(axis=2) if reduce_kind == "sum" else diff.max(axis=2)
    return out


def manhattan(samples: np.ndarray, codebook: np.ndarray) -> np.ndarray:
    """Pairwise Manhattan (L1) distances (bounded-memory chunked kernel)."""
    return _chunked_broadcast_reduce(samples, codebook, "sum")


def chebyshev(samples: np.ndarray, codebook: np.ndarray) -> np.ndarray:
    """Pairwise Chebyshev (L-infinity) distances (bounded-memory chunked kernel)."""
    return _chunked_broadcast_reduce(samples, codebook, "max")


_METRICS: Dict[str, DistanceFunction] = {
    "euclidean": euclidean,
    "sqeuclidean": squared_euclidean,
    "manhattan": manhattan,
    "chebyshev": chebyshev,
}


def get_metric(name: str) -> DistanceFunction:
    """Look up a distance function by name.

    Raises
    ------
    ConfigurationError
        If the metric name is unknown.
    """
    try:
        return _METRICS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown distance metric {name!r}; available: {sorted(_METRICS)}"
        ) from exc


def available_metrics() -> tuple:
    """Names of all registered distance metrics."""
    return tuple(sorted(_METRICS))


def best_matching_units(samples, codebook, metric: str = "euclidean") -> np.ndarray:
    """Index of the closest codebook vector for each sample.

    The result is identical for ``euclidean`` and ``sqeuclidean`` metrics; the
    cheaper squared variant is substituted automatically.
    """
    samples = check_array_2d(samples, "samples")
    codebook = check_array_2d(codebook, "codebook")
    function = squared_euclidean if metric in ("euclidean", "sqeuclidean") else get_metric(metric)
    return np.argmin(function(samples, codebook), axis=1)
