"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError`, so callers can
catch a single base class for any failure originating in this package while
still being able to distinguish the finer-grained categories below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """Raised when a configuration object holds invalid parameter values."""


class NotFittedError(ReproError):
    """Raised when a model is used for prediction before being fitted."""


class DataValidationError(ReproError):
    """Raised when input data fails shape, dtype or value validation."""


class SchemaError(ReproError):
    """Raised when records do not conform to the KDD feature schema."""


class SerializationError(ReproError):
    """Raised when a model cannot be saved to or loaded from disk."""


class ServingError(ReproError):
    """Raised when a serving backend cannot execute its shard tasks.

    Wraps worker-side failures (a crashed process-pool worker, a dead remote
    host, a refused provisioning request) with the backend name and the task
    that failed, so operators see an actionable message instead of a raw
    executor traceback.
    """


class SimulationError(ReproError):
    """Raised when the network traffic simulator is asked to do something invalid."""
