"""Framed TCP transport for distributed shard serving.

The wire format is deliberately small: every message is one **frame** —
an 8-byte prefix (4-byte magic + big-endian payload length) followed by a
pickled payload.  On top of frames sit two fixed exchanges:

* **handshake** — the first frame in each direction.  The client sends
  ``{"kind": "hello", "protocol": N}``; the server answers either
  ``{"kind": "hello", "protocol": N, "worker": {...}}`` or
  ``{"kind": "reject", "error": ...}`` and closes.  A version mismatch is
  detected *before* any request is interpreted, so old coordinators and new
  workers (or vice versa) fail with one clear error instead of a pickle
  explosion mid-batch.
* **requests** — ``{"id": n, "op": ..., **params}`` frames answered by
  ``{"id": n, "ok": True, "result": ...}`` or ``{"id": n, "ok": False,
  "error": ...}``.  Responses carry the request id, which is what lets a
  single connection multiplex many in-flight requests.

The request vocabulary is *role-scoped*: a shard worker serves ``ping`` /
``provision`` / ``run``, the detection gateway
(:mod:`repro.serving.gateway`) serves ``ping`` / ``detect``.  Adding an op
is a compatible change — an unknown op gets an error reply, never a broken
stream — so :data:`PROTOCOL_VERSION` stays put; servers instead advertise
``role`` and ``ops`` keys in the handshake's worker-info dict, which is how
a client verifies the peer speaks the vocabulary it needs before the first
request (see :class:`repro.serving.gateway.GatewayClient`).

:class:`WorkerConnection` is the client side of that contract: one
persistent socket per worker, a send lock, and a background reader thread
that matches response frames to pending :class:`~concurrent.futures.Future`
objects — the "small socket multiplexer" the remote backend pipelines its
shard tasks through.

Payloads are pickled (protocol 5: zero-copy numpy buffers), which means the
transport must only ever connect trusted peers — the same trust model as
the process-pool backend, stretched across hosts.  Run workers on a private
cluster network, never on an internet-facing port.
"""

from __future__ import annotations

import asyncio
import pickle
import socket
import struct
import threading
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ServingError

#: Protocol version spoken by this module.  Bumped whenever the frame
#: layout, the handshake, or the request vocabulary changes incompatibly;
#: both ends refuse mismatched peers during the handshake.
PROTOCOL_VERSION = 1

#: Frame magic: lets either end reject a non-repro peer (or a corrupted
#: stream) on the first 4 bytes instead of trying to unpickle garbage.
FRAME_MAGIC = b"RSHD"
_PREFIX = struct.Struct("!4sI")

#: Upper bound on a single frame's payload.  Generous (shard provisioning
#: ships codebook slices) but finite, so a corrupted length field cannot
#: make the receiver attempt a multi-terabyte allocation.
MAX_FRAME_BYTES = 1 << 31


class TransportError(ServingError):
    """A framed-transport failure: connect, handshake, or a broken stream."""


@dataclass(frozen=True)
class SidecarRef:
    """A shard array that lives in the model artifact's ``.npz`` sidecar.

    The by-reference provisioning form of a memory-mapped shard array:
    instead of the bytes, the wire carries the dtype/shape/offset of the
    region — the receiving worker re-opens *its own* copy of the sidecar
    (CRC-validated against the coordinator's first) and maps the same
    region.  ``file_bytes`` pins the sidecar size the reference was taken
    against, so a stale worker-side file fails loudly.
    """

    dtype: str
    shape: Tuple[int, ...]
    offset: int
    file_bytes: int


# --------------------------------------------------------------------------- #
# frames
# --------------------------------------------------------------------------- #
def _read_exact(sock: socket.socket, n_bytes: int) -> bytes:
    """Read exactly ``n_bytes`` or raise :class:`TransportError`.

    A peer closing mid-frame surfaces as a short read — the "truncated
    frame" failure mode — never as a partial pickle reaching the caller.
    """
    chunks: List[bytes] = []
    remaining = n_bytes
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except OSError as exc:
            raise TransportError(f"connection failed mid-frame: {exc}") from exc
        if not chunk:
            raise TransportError(
                f"connection closed mid-frame ({n_bytes - remaining} of "
                f"{n_bytes} bytes received): truncated frame"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _encode_body(payload: object) -> bytes:
    """Pickle one frame payload, enforcing the frame-size ceiling."""
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame payload of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    return body


def _frame_length(prefix: bytes) -> int:
    """Validate a frame prefix (magic + length) and return the body length."""
    magic, length = _PREFIX.unpack(prefix)
    if magic != FRAME_MAGIC:
        raise TransportError(
            f"bad frame magic {magic!r}: the peer is not speaking the repro "
            "shard-serving protocol"
        )
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte limit "
            "(corrupted stream?)"
        )
    return int(length)


def _decode_body(body: bytes) -> object:
    """Unpickle one frame body."""
    try:
        return pickle.loads(body)
    except Exception as exc:  # pickle raises a zoo of error types
        raise TransportError(f"could not decode frame payload: {exc}") from exc


def encode_frame(payload: object) -> bytes:
    """One complete wire frame (prefix + pickled body) as bytes.

    The buffer-building form of :func:`send_frame`, for transports that
    append to an output buffer instead of owning a socket — the asyncio
    gateway writes these through ``StreamWriter.write``, whose synchronous
    buffer append means two coroutines can never interleave partial frames.
    """
    body = _encode_body(payload)
    return _PREFIX.pack(FRAME_MAGIC, len(body)) + body


def send_frame(sock: socket.socket, payload: object) -> None:
    """Pickle ``payload`` and send it as one length-prefixed frame."""
    body = _encode_body(payload)
    prefix = _PREFIX.pack(FRAME_MAGIC, len(body))
    try:
        if len(body) < (1 << 16):
            sock.sendall(prefix + body)
        else:
            # Don't duplicate a large payload (by-value provisioning ships
            # whole codebooks) just to glue 8 bytes in front of it.
            sock.sendall(prefix)
            sock.sendall(body)
    except OSError as exc:
        raise TransportError(f"could not send frame: {exc}") from exc


def recv_frame(sock: socket.socket) -> object:
    """Receive one frame and unpickle its payload.

    Raises :class:`TransportError` for a closed/truncated stream, a wrong
    magic (not a repro peer), or an implausible length field.
    """
    prefix = _read_exact(sock, _PREFIX.size)
    length = _frame_length(prefix)
    body = _read_exact(sock, length)
    return _decode_body(body)


async def _read_exact_async(reader: asyncio.StreamReader, n_bytes: int) -> bytes:
    """Asyncio twin of :func:`_read_exact`: ``n_bytes`` or :class:`TransportError`."""
    try:
        return await reader.readexactly(n_bytes)
    except asyncio.IncompleteReadError as exc:
        raise TransportError(
            f"connection closed mid-frame ({len(exc.partial)} of "
            f"{n_bytes} bytes received): truncated frame"
        ) from exc
    except OSError as exc:
        raise TransportError(f"connection failed mid-frame: {exc}") from exc


async def read_frame_async(reader: asyncio.StreamReader) -> object:
    """Asyncio twin of :func:`recv_frame` (same frames, same failure modes).

    A peer that closes cleanly *between* frames surfaces as a
    :class:`TransportError` too ("0 of 8 bytes received"), matching the
    synchronous reader's contract: server loops treat any transport failure
    as the end of the connection.
    """
    prefix = await _read_exact_async(reader, _PREFIX.size)
    length = _frame_length(prefix)
    body = await _read_exact_async(reader, length)
    return _decode_body(body)


async def write_frame_async(writer: asyncio.StreamWriter, payload: object) -> None:
    """Asyncio twin of :func:`send_frame`, with flow control via ``drain``."""
    try:
        writer.write(encode_frame(payload))
        await writer.drain()
    except OSError as exc:
        raise TransportError(f"could not send frame: {exc}") from exc


# --------------------------------------------------------------------------- #
# handshake
# --------------------------------------------------------------------------- #
def client_handshake(sock: socket.socket, *, protocol: int = PROTOCOL_VERSION) -> Dict[str, object]:
    """Run the client side of the handshake; returns the worker's info dict."""
    # repro-lint: disable=RPL004 -- handshake is single threaded: it runs
    # before the connection is shared and before any reader thread exists.
    send_frame(sock, {"kind": "hello", "protocol": int(protocol)})
    reply = recv_frame(sock)
    if not isinstance(reply, dict) or reply.get("kind") not in ("hello", "reject"):
        raise TransportError(f"unexpected handshake reply: {reply!r}")
    if reply.get("kind") == "reject":
        raise TransportError(f"worker rejected the connection: {reply.get('error')}")
    if reply.get("protocol") != PROTOCOL_VERSION:
        raise TransportError(
            f"worker speaks protocol {reply.get('protocol')!r}, this "
            f"coordinator speaks {PROTOCOL_VERSION}; upgrade the older side"
        )
    worker = reply.get("worker")
    return dict(worker) if isinstance(worker, dict) else {}


def server_handshake(sock: socket.socket, worker_info: Dict[str, object]) -> bool:
    """Run the server side of the handshake.

    Returns ``True`` when the client may proceed; on a malformed hello or a
    protocol mismatch a ``reject`` frame is sent (best effort) and ``False``
    returned — the caller closes the connection.
    """
    try:
        hello = recv_frame(sock)
    except TransportError:
        return False  # garbage or a port-scanner; nothing to answer
    if not isinstance(hello, dict) or hello.get("kind") != "hello":
        _best_effort_send(sock, {"kind": "reject", "error": "expected a hello frame"})
        return False
    if hello.get("protocol") != PROTOCOL_VERSION:
        _best_effort_send(
            sock,
            {
                "kind": "reject",
                "error": (
                    f"protocol mismatch: worker speaks {PROTOCOL_VERSION}, "
                    f"coordinator sent {hello.get('protocol')!r}; upgrade the "
                    "older side"
                ),
            },
        )
        return False
    # repro-lint: disable=RPL004 -- server handshake reply: the connection is
    # still exclusive to this thread (no task pool has seen it yet).
    send_frame(sock, {"kind": "hello", "protocol": PROTOCOL_VERSION, "worker": worker_info})
    return True


def _best_effort_send(sock: socket.socket, payload: object) -> None:
    try:
        # repro-lint: disable=RPL004 -- only called from the single-threaded
        # handshake path to reject a client before the connection is shared.
        send_frame(sock, payload)
    except TransportError:
        pass


# --------------------------------------------------------------------------- #
# multiplexed client connection
# --------------------------------------------------------------------------- #
class WorkerConnection:
    """One persistent, multiplexed connection to a shard worker.

    ``submit`` sends a request frame and returns a future; any number may be
    in flight at once (the worker answers in its own order, responses are
    matched back by id).  The first stream error fails every pending future
    and marks the connection dead — the remote backend then fails the
    affected tasks over to its local fallback.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        *,
        connect_timeout: float = 10.0,
        protocol: int = PROTOCOL_VERSION,
    ) -> None:
        self.address = (str(address[0]), int(address[1]))
        try:
            self._sock = socket.create_connection(self.address, timeout=connect_timeout)
        except OSError as exc:
            raise TransportError(
                f"could not connect to shard worker {self.address[0]}:{self.address[1]}: {exc}"
            ) from exc
        try:
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self.info = client_handshake(self._sock, protocol=protocol)
        except BaseException:
            self._sock.close()
            raise
        # Request/response frames block indefinitely at the socket level;
        # per-task deadlines are enforced by future.result(timeout) so one
        # slow worker cannot wedge the reader thread's unrelated responses.
        self._sock.settimeout(None)
        self._send_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: Dict[int, Future[object]] = {}
        self._next_id = 0
        self._dead: Optional[TransportError] = None
        #: Provisioning epoch the worker last acknowledged on this
        #: connection (bookkeeping owned by the remote backend).
        self.provisioned_epoch: Optional[int] = None
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"repro-remote-{self.address[0]}:{self.address[1]}",
            daemon=True,
        )
        self._reader.start()

    # ------------------------------------------------------------------ #
    @property
    def is_alive(self) -> bool:
        return self._dead is None

    def submit(self, op: str, **params: object) -> Future[object]:
        """Send one request frame; the returned future resolves to the result.

        The future raises :class:`ServingError` when the worker answered
        with an application error, and :class:`TransportError` when the
        connection died before the response arrived.
        """
        future: Future[object] = Future()
        with self._pending_lock:
            if self._dead is not None:
                raise self._dead
            request_id = self._next_id
            self._next_id += 1
            self._pending[request_id] = future
        try:
            with self._send_lock:
                send_frame(self._sock, {"id": request_id, "op": op, **params})
        except TransportError as exc:
            self._fail_all(exc)
            raise
        return future

    def call(self, op: str, *, timeout: Optional[float] = None, **params: object) -> object:
        """Synchronous convenience: ``submit`` + ``result``."""
        return self.submit(op, **params).result(timeout=timeout)

    def close(self) -> None:
        self._fail_all(TransportError("connection closed"))

    def __enter__(self) -> "WorkerConnection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def _read_loop(self) -> None:
        while True:
            try:
                frame = recv_frame(self._sock)
            except TransportError as exc:
                self._fail_all(
                    exc
                    if self._dead is None
                    else TransportError("connection closed")
                )
                return
            # Any processing failure must kill the connection loudly: a
            # silently dead reader would leave is_alive True and every
            # pending future hanging until its timeout.
            try:
                if not isinstance(frame, dict) or "id" not in frame:
                    raise TransportError(f"malformed response frame: {frame!r}")
                with self._pending_lock:
                    future = self._pending.pop(int(frame["id"]), None)
                if future is None:
                    continue  # response to an abandoned request
                if frame.get("ok"):
                    future.set_result(frame.get("result"))
                else:
                    future.set_exception(
                        ServingError(
                            f"shard worker {self.address[0]}:{self.address[1]} "
                            f"refused a request: {frame.get('error')}"
                        )
                    )
            except TransportError as exc:
                self._fail_all(exc)
                return
            except Exception as exc:
                self._fail_all(
                    TransportError(f"could not process response frame: {exc}")
                )
                return

    def _fail_all(self, error: TransportError) -> None:
        with self._pending_lock:
            if self._dead is None:
                self._dead = error
            pending, self._pending = self._pending, {}
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        for future in pending.values():
            if not future.done():
                future.set_exception(error)


def parse_address(spec: str) -> Tuple[str, int]:
    """Parse one ``HOST:PORT`` worker address.

    IPv6 hosts use the standard bracketed form: ``[::1]:9000`` parses to
    ``("::1", 9000)`` — the brackets are stripped, because
    ``socket.create_connection`` resolves the bare address, not the
    bracketed spelling.  An unbracketed multi-colon spec such as
    ``::1:9000`` is ambiguous (every colon is a plausible host/port split)
    and rejected outright rather than silently mis-split.
    """
    text = str(spec).strip()
    if text.startswith("["):
        bracketed, _, port = text.partition("]")
        host = bracketed[1:]
        if not host or not port.startswith(":"):
            raise ServingError(
                f"invalid worker address {spec!r}; expected [IPV6-ADDR]:PORT"
            )
        port = port[1:]
    else:
        host, separator, port = text.rpartition(":")
        if not separator or not host:
            raise ServingError(
                f"invalid worker address {spec!r}; expected HOST:PORT"
            )
        if ":" in host:
            raise ServingError(
                f"invalid worker address {spec!r}; an unbracketed IPv6 "
                "address is ambiguous — write it as [ADDR]:PORT"
            )
    try:
        return host, int(port)
    except ValueError as exc:
        raise ServingError(
            f"invalid worker address {spec!r}; the port must be an integer"
        ) from exc
