"""The sharded serving engine: root-step routing + shard dispatch + merge.

:class:`ShardedGhsom` exposes the same ``assign_arrays`` contract as
:class:`~repro.core.compiled.CompiledGhsom` — ``(leaf_index, distances)`` in
global leaf rows and float64 — but executes the descent in three steps:

1. **route** — run the root-level distance + argmin once over the whole
   batch, exactly as the unsharded engine's first frontier iteration does
   (same expanded ``|x-w|^2`` arithmetic on the same contiguous root block).
   Samples whose best root unit is a leaf are finished right here;
2. **dispatch** — group the remaining rows by the shard that owns their root
   unit and execute each sub-batch on the configured backend;
3. **merge** — scatter shard results back into input order, remapping local
   leaf rows through each shard's ``leaf_global_row``.

Because routing replicates the root step bit-for-bit and shards run the
shared :func:`~repro.core.compiled.frontier_descent` loop on the same row
groupings, the merged output is byte-identical to the unsharded float64
engine for every shard count and backend.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro._typing import AnyArray
from repro.core.compiled import CompiledGhsom
from repro.core.distances import get_metric
from repro.exceptions import DataValidationError
from repro.serving.backends import ShardBackend, make_backend
from repro.serving.planner import ShardPlan, plan_shards
from repro.serving.shards import SubtreeShard, build_shards
from repro.utils.validation import check_array_2d


class ShardedGhsom:
    """A compiled GHSOM partitioned into root subtrees behind one router.

    Build instances with :meth:`from_compiled`; the constructor takes the
    already-materialised pieces.  The engine keeps a reference to its source
    :class:`CompiledGhsom` (``source``) so owners can detect staleness after
    a refit, but scoring itself only touches the root block and the shards.
    """

    def __init__(
        self,
        *,
        source: CompiledGhsom,
        plan: ShardPlan,
        shards: Tuple[SubtreeShard, ...],
        backend: ShardBackend,
    ) -> None:
        self.source = source
        self.plan = plan
        self.shards = tuple(shards)
        self.backend = backend
        self.metric = source.metric
        self.n_features = source.n_features
        n_root_units = int(source.node_offsets[1])
        #: Root-layer slices (views into the source arrays: the root block is
        #: the one piece every worker topology shares).
        self._root_codebook = source.codebook[:n_root_units]
        self._root_unit_norms = source.unit_norms[:n_root_units]
        self._root_child = source.child_of_unit[:n_root_units]
        self._root_leaf_row = source.leaf_of_unit[:n_root_units]
        #: Root unit -> owning shard (-1 for leaf root units) and the local
        #: entry node of its subtree inside that shard.
        self._shard_of_unit = np.full(n_root_units, -1, dtype=np.intp)
        self._entry_of_unit = np.full(n_root_units, -1, dtype=np.intp)
        for shard in self.shards:
            self._shard_of_unit[shard.root_units] = shard.shard_id
            self._entry_of_unit[shard.root_units] = shard.entry_local_node
        #: Stage timings of the most recent :meth:`assign_arrays` call —
        #: ``{"route_s", "descend_s", "merge_s"}`` wall-clock seconds — read
        #: by the detector to fill :class:`~repro.serving.config.ServingStats`.
        self.last_timings: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    @classmethod
    def from_compiled(
        cls,
        compiled: CompiledGhsom,
        n_shards: int,
        *,
        backend: Union[str, ShardBackend] = "serial",
        workers: Optional[int] = None,
        plan: Optional[ShardPlan] = None,
        thresholds: Optional[AnyArray] = None,
        labels: Optional[AnyArray] = None,
        is_attack: Optional[AnyArray] = None,
        purity: Optional[AnyArray] = None,
        engine: Optional[str] = None,
    ) -> "ShardedGhsom":
        """Plan, slice and wire a sharded engine for ``compiled``.

        ``plan`` may be supplied when the subtree layout came from an
        artifact's shard manifest; the per-leaf scoring tables, when given,
        are segmented into the shards so each one is fully self-contained.
        ``engine`` is stamped onto every shard and governs each shard-side
        descent (the root routing step always runs the numpy arithmetic —
        it is what keeps routing byte-identical to the unsharded engine's
        first frontier iteration).
        """
        if plan is None:
            plan = plan_shards(compiled, n_shards)
        shards = build_shards(
            compiled,
            plan,
            thresholds=thresholds,
            labels=labels,
            is_attack=is_attack,
            purity=purity,
            engine=engine,
        )
        return cls(
            source=compiled,
            plan=plan,
            shards=shards,
            backend=make_backend(backend, workers),
        )

    # ------------------------------------------------------------------ #
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_leaves(self) -> int:
        return self.source.n_leaves

    @property
    def dtype(self) -> np.dtype[Any]:
        """Serving dtype (that of the source snapshot)."""
        return self.source.dtype

    def describe(self) -> Dict[str, object]:
        """Structural + balance summary (benchmark harness and docs)."""
        summary = dict(self.source.describe())
        summary.update(self.plan.describe())
        summary["backend"] = self.backend.name
        summary["workers"] = self.backend.workers
        return summary

    def close(self) -> None:
        """Release the backend's pooled resources."""
        self.backend.close()

    # ------------------------------------------------------------------ #
    def assign_arrays(self, data: object) -> Tuple[AnyArray, AnyArray]:
        """Leaf rows and distances, byte-identical to the unsharded engine.

        See the module docstring for the route / dispatch / merge structure.
        """
        # One conversion straight to the serving dtype: check_array_2d hands
        # back a contiguous array in the target dtype, so already-converted
        # input (e.g. from GhsomDetector.detect) passes through untouched.
        matrix = check_array_2d(data, "data", dtype=self._root_codebook.dtype)
        if matrix.shape[1] != self.n_features:
            raise DataValidationError(
                f"data has {matrix.shape[1]} features, the model expects {self.n_features}"
            )
        t_route = perf_counter()
        n = matrix.shape[0]
        leaf_index = np.full(n, -1, dtype=np.intp)
        distances = np.zeros(n, dtype=self._root_codebook.dtype)
        # --- route: the unsharded engine's first frontier iteration ------- #
        sample_norms = np.einsum("ij,ij->i", matrix, matrix)
        d2 = matrix @ self._root_codebook.T
        d2 *= -2.0
        d2 += sample_norms[:, None]
        d2 += self._root_unit_norms[None, :]
        np.maximum(d2, 0.0, out=d2)
        units = np.argmin(d2, axis=1)
        at_leaf = self._root_child[units] < 0
        if at_leaf.any():
            leaf_rows = np.flatnonzero(at_leaf)
            leaf_index[leaf_rows] = self._root_leaf_row[units[at_leaf]]
            if self.metric in ("euclidean", "sqeuclidean"):
                best = d2[at_leaf].min(axis=1)
                if self.metric == "euclidean":
                    best = np.sqrt(best)
                distances[leaf_rows] = best
            else:
                exact_metric = get_metric(self.metric)
                distances[leaf_rows] = exact_metric(
                    matrix[at_leaf], self._root_codebook
                ).min(axis=1)
        # --- dispatch: one task per shard with routed samples ------------- #
        sample_shard = self._shard_of_unit[units]
        tasks: List[Tuple[int, AnyArray, AnyArray]] = []
        task_rows: List[AnyArray] = []
        for shard in self.shards:
            # flatnonzero yields ascending rows — the same ordering the
            # unsharded frontier uses, so shard-side BLAS inputs match.
            rows = np.flatnonzero(sample_shard == shard.shard_id)
            if rows.size == 0:
                continue
            entries = self._entry_of_unit[units[rows]]
            tasks.append((shard.shard_id, matrix[rows], entries))
            task_rows.append(rows)
        route_s = perf_counter() - t_route
        # --- merge: scatter results back into input order ----------------- #
        descend_s = merge_s = 0.0
        if tasks:
            t_descend = perf_counter()
            results = self.backend.run(self.shards, tasks)
            descend_s = perf_counter() - t_descend
            t_merge = perf_counter()
            for (shard_id, _, _), rows, (local_leaf, shard_distances) in zip(
                tasks, task_rows, results, strict=True
            ):
                leaf_index[rows] = self.shards[shard_id].leaf_global_row[local_leaf]
                distances[rows] = shard_distances
            merge_s = perf_counter() - t_merge
        self.last_timings = {"route_s": route_s, "descend_s": descend_s, "merge_s": merge_s}
        # repro-lint: disable=RPL003 -- same result-widening contract as
        # CompiledGhsom.assign_arrays; a no-op for the float64 engine.
        return leaf_index, distances.astype(np.float64, copy=False)

    def transform(self, data: object) -> AnyArray:
        """Quantization distance per sample (the raw anomaly score)."""
        return self.assign_arrays(data)[1]
