"""The unified serving-configuration layer: ``ServingConfig`` → ``ServingPlan``.

Six PRs of growth left the serving knobs scattered as loose keyword
arguments threaded hand-over-hand through five layers — ``load_bundle(dtype=,
shards=, workers=, shard_backend=, remote_workers=, mmap=, verify=,
engine=)``, the detector's ``set_engine`` / ``set_sharding`` /
``set_serving_dtype`` mutators, per-CLI-command flag duplication, and
worker-side re-stamping of provisioned shards.  This module replaces that
argument-plumbing convention with two first-class objects:

:class:`ServingConfig`
    A frozen, *declarative* description of how a model is served: dtype,
    compute engine (plus fused-provider override), the sharding spec and the
    artifact-loading options.  It validates strictly on construction,
    round-trips through JSON (``to_dict`` / ``from_dict``, versioned), embeds
    in v2/v3 model artifacts, and travels over the wire to remote shard
    workers.  It never touches the environment: a config built on one host
    means exactly the same thing on another.

:class:`ServingPlan`
    The *resolved* form: :meth:`ServingConfig.resolve` performs every
    environment-dependent decision — fused-kernel provider availability,
    usable core counts, remote address parsing — in one place, under one
    strict/degrade policy (``strict=True`` raises on an unprovidable
    ``"fused"`` request; ``strict=False`` degrades to the numpy engine, the
    per-batch hot-path behaviour).  The plan is still a frozen value object;
    :meth:`ServingPlan.build_backend` is the single constructor of live
    :class:`~repro.serving.backends.ShardBackend` instances.

:class:`ServingStats`
    Uniform per-batch serving observability attached to
    :class:`~repro.core.detector.DetectionResult` by ``GhsomDetector.detect``:
    per-stage timings (ingest / route / descend / merge) plus the resolved
    plan's provenance, so gateways and fleet tooling can see how a batch was
    actually executed without instrumenting the layers themselves.

Precedence, everywhere a config can come from more than one place (the CLI,
an artifact, library defaults): **explicit caller config > CLI-style field
overrides > artifact-embedded config > library default** — see
:func:`effective_config`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core import kernels
from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # runtime import stays lazy inside build_backend
    from repro.serving.backends import ShardBackend

#: Version marker of the serialized ``ServingConfig`` payload (bumped on any
#: incompatible change; readers reject versions they do not understand).
CONFIG_VERSION = 1

#: Serving dtypes the config layer accepts.  ``float64`` is the bit-exact
#: default; ``float32`` opts into the narrowed serving mode documented on
#: :meth:`~repro.core.compiled.CompiledGhsom.astype`.
SERVING_DTYPES = ("float64", "float32")

#: Shard-backend names a declarative config may carry (instances cannot be
#: serialized; the legacy instance path lives on the detector shim only).
SHARD_BACKENDS = ("serial", "thread", "process", "remote")

#: Remote shard-provisioning policies (see
#: :class:`~repro.serving.remote.RemoteBackend`).
PROVISIONING_MODES = ("auto", "reference", "value")

#: Fused-kernel provider overrides a config may request (``None`` = automatic
#: selection; ``"none"`` disables the fused engine entirely).
PROVIDERS = ("cc", "numba", "none")


def usable_workers() -> int:
    """Worker count matching the usable cores (affinity-aware).

    The single owner of the "how parallel is this host" question for the
    whole serving stack — pooled backends and plan resolution both call it.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without sched_getaffinity
        return max(1, os.cpu_count() or 1)


def _parse_remote_workers(spec: str) -> Tuple[str, ...]:
    """Normalise a ``HOST:PORT[,HOST:PORT...]`` spec into address strings."""
    from repro.serving.transport import parse_address

    addresses: List[str] = []
    for part in str(spec).split(","):
        part = part.strip()
        if not part:
            continue
        host, port = parse_address(part)
        addresses.append(f"{host}:{port}")
    return tuple(addresses)


def _opt_int(value: object) -> Optional[int]:
    """``None`` passes through; everything else must be integer-coercible.

    The strict-typed bridge from JSON payloads / CLI override mappings
    (``object`` values) to the typed dataclass fields; range validation stays
    in the dataclass ``__post_init__``.
    """
    if value is None:
        return None
    if isinstance(value, (bool, int, float, str, np.integer)):
        return int(value)
    raise ConfigurationError(f"expected an integer, got {value!r}")


def _opt_str(value: object) -> Optional[str]:
    """``None`` passes through; everything else is stringified."""
    return None if value is None else str(value)


def _sub_mapping(data: Mapping[str, object], key: str) -> Dict[str, object]:
    """A payload sub-section as a dict (absent/None becomes empty)."""
    raw = data.get(key) or {}
    if not isinstance(raw, Mapping):
        raise ConfigurationError(
            f"serving config section {key!r} must be a mapping, "
            f"got {type(raw).__name__}"
        )
    return dict(raw)


# --------------------------------------------------------------------------- #
# the declarative config
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardingSpec:
    """Declarative sharded-serving spec (``shards=None`` means unsharded).

    Attributes
    ----------
    shards:
        Number of root-subtree shards, or ``None`` for the unsharded engine.
    workers:
        Worker count for the pooled backends (``None`` = usable cores,
        resolved by :meth:`ServingConfig.resolve`).
    backend:
        ``"serial"``, ``"thread"``, ``"process"`` or ``"remote"``; ``None``
        resolves to the serving default (``"thread"``).
    remote_workers:
        ``"HOST:PORT[,HOST:PORT...]"`` shard-worker addresses, required by
        (and only valid with) the remote backend.
    provisioning:
        How remote workers receive the shard set: ``"auto"`` (by reference
        when the sidecar fingerprints match, by value otherwise),
        ``"reference"`` (strict) or ``"value"`` (always stream).
    """

    shards: Optional[int] = None
    workers: Optional[int] = None
    backend: Optional[str] = None
    remote_workers: Optional[str] = None
    provisioning: str = "auto"

    def __post_init__(self) -> None:
        if self.shards is not None:
            object.__setattr__(self, "shards", int(self.shards))
            if self.shards < 1:
                raise ConfigurationError(
                    f"n_shards must be >= 1, got {self.shards}"
                )
        if not self.shards and (
            self.workers is not None
            or self.backend is not None
            or self.remote_workers is not None
        ):
            raise ConfigurationError(
                "workers/shard_backend/remote_workers only apply to sharded "
                "serving; pass shards=K (CLI: --shards) to enable it"
            )
        if self.workers is not None:
            object.__setattr__(self, "workers", int(self.workers))
            if self.workers < 1:
                raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.backend is not None and self.backend not in SHARD_BACKENDS:
            raise ConfigurationError(
                f"unknown shard backend {self.backend!r}; available: {list(SHARD_BACKENDS)}"
            )
        if self.remote_workers is not None and self.backend not in (None, "remote"):
            raise ConfigurationError(
                f"remote_workers conflicts with shard_backend={self.backend!r}; "
                "remote worker addresses imply --shard-backend remote"
            )
        if self.backend == "remote" and self.remote_workers is None:
            raise ConfigurationError(
                "the remote shard backend needs worker addresses; pass "
                "remote_workers='HOST:PORT[,HOST:PORT...]' (CLI: "
                "--remote-workers) with one repro-ids shard-worker per address"
            )
        if self.remote_workers is not None:
            if self.backend is None:
                # Addresses imply the remote backend; normalise so equal
                # intents compare (and serialize) equal.
                object.__setattr__(self, "backend", "remote")
            if self.workers is not None:
                raise ConfigurationError(
                    "the remote backend's worker count is its address list; "
                    "drop workers= and list one HOST:PORT per worker"
                )
            addresses = _parse_remote_workers(self.remote_workers)
            if not addresses:
                raise ConfigurationError(
                    "the remote backend needs at least one worker address (HOST:PORT)"
                )
            object.__setattr__(self, "remote_workers", ",".join(addresses))
        if self.provisioning not in PROVISIONING_MODES:
            raise ConfigurationError(
                f"unknown provisioning mode {self.provisioning!r}; "
                f"expected one of {PROVISIONING_MODES}"
            )
        if self.provisioning != "auto" and self.backend != "remote":
            raise ConfigurationError(
                "provisioning only applies to the remote shard backend; "
                f"got provisioning={self.provisioning!r} with "
                f"backend={self.backend!r}"
            )

    @property
    def enabled(self) -> bool:
        return bool(self.shards)


@dataclass(frozen=True)
class ArtifactOptions:
    """How binary (v3) artifacts are opened at load time.

    ``mmap=True`` memory-maps the ``.npz`` sidecar (O(metadata) cold start);
    ``verify=True`` additionally checks the sidecar's SHA-256 against the
    integrity header (reads the whole file).
    """

    mmap: bool = True
    verify: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "mmap", bool(self.mmap))
        object.__setattr__(self, "verify", bool(self.verify))


@dataclass(frozen=True)
class ServingConfig:
    """One serializable, versioned description of how a model is served.

    Strictly validated on construction; environment-independent by design
    (resolution against the host happens in :meth:`resolve`).  Equality is
    field-wise, so "same serving intent" compares equal across processes and
    hosts — the property the artifact-embedding and remote-provisioning
    paths rely on.
    """

    dtype: str = "float64"
    engine: Optional[str] = None
    provider: Optional[str] = None
    sharding: ShardingSpec = field(default_factory=ShardingSpec)
    artifact: ArtifactOptions = field(default_factory=ArtifactOptions)

    def __post_init__(self) -> None:
        try:
            canonical = np.dtype(self.dtype).name
        except TypeError as exc:
            raise ConfigurationError(f"invalid serving dtype {self.dtype!r}: {exc}") from exc
        if canonical not in SERVING_DTYPES:
            raise ConfigurationError(
                f"unsupported serving dtype {canonical!r}; expected one of {SERVING_DTYPES}"
            )
        object.__setattr__(self, "dtype", canonical)
        if self.engine is not None:
            kernels.check_engine(self.engine)
        if self.provider is not None and self.provider not in PROVIDERS:
            raise ConfigurationError(
                f"unknown fused provider {self.provider!r}; "
                f"expected one of {PROVIDERS} or None"
            )
        if not isinstance(self.sharding, ShardingSpec):
            raise ConfigurationError(
                f"sharding must be a ShardingSpec, got {type(self.sharding).__name__}"
            )
        if not isinstance(self.artifact, ArtifactOptions):
            raise ConfigurationError(
                f"artifact must be ArtifactOptions, got {type(self.artifact).__name__}"
            )

    # ------------------------------------------------------------------ #
    # JSON round trip
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible payload; exact inverse of :meth:`from_dict`."""
        return {
            "config_version": CONFIG_VERSION,
            "dtype": self.dtype,
            "engine": self.engine,
            "provider": self.provider,
            "sharding": {
                "shards": self.sharding.shards,
                "workers": self.sharding.workers,
                "backend": self.sharding.backend,
                "remote_workers": self.sharding.remote_workers,
                "provisioning": self.sharding.provisioning,
            },
            "artifact": {
                "mmap": self.artifact.mmap,
                "verify": self.artifact.verify,
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ServingConfig":
        """Rebuild a config from :meth:`to_dict` output (strictly validated)."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"serving config payload must be a mapping, got {type(data).__name__}"
            )
        version = data.get("config_version")
        if version != CONFIG_VERSION:
            raise ConfigurationError(
                f"unsupported serving-config version {version!r}; "
                f"this reader understands version {CONFIG_VERSION}"
            )
        known = {"config_version", "dtype", "engine", "provider", "sharding", "artifact"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"serving config payload has unknown keys {unknown}; "
                "the payload is corrupt or from an incompatible writer"
            )
        sharding = _sub_mapping(data, "sharding")
        unknown = sorted(
            set(sharding) - {"shards", "workers", "backend", "remote_workers", "provisioning"}
        )
        if unknown:
            raise ConfigurationError(
                f"serving config sharding spec has unknown keys {unknown}"
            )
        artifact = _sub_mapping(data, "artifact")
        unknown = sorted(set(artifact) - {"mmap", "verify"})
        if unknown:
            raise ConfigurationError(
                f"serving config artifact options have unknown keys {unknown}"
            )
        return cls(
            dtype=str(data.get("dtype", "float64")),
            engine=_opt_str(data.get("engine")),
            provider=_opt_str(data.get("provider")),
            sharding=ShardingSpec(
                shards=_opt_int(sharding.get("shards")),
                workers=_opt_int(sharding.get("workers")),
                backend=_opt_str(sharding.get("backend")),
                remote_workers=_opt_str(sharding.get("remote_workers")),
                provisioning=str(sharding.get("provisioning", "auto")),
            ),
            artifact=ArtifactOptions(
                mmap=bool(artifact.get("mmap", True)),
                verify=bool(artifact.get("verify", False)),
            ),
        )

    # ------------------------------------------------------------------ #
    # derivation helpers
    # ------------------------------------------------------------------ #
    def evolve(self, **changes: object) -> "ServingConfig":
        """A copy with top-level fields replaced (validates the result)."""
        return replace(self, **changes)

    def with_overrides(self, overrides: Mapping[str, object]) -> "ServingConfig":
        """Apply flat, CLI-style field overrides on top of this config.

        ``overrides`` maps flat knob names — ``dtype``, ``engine``,
        ``provider``, ``shards``, ``workers``, ``backend``,
        ``remote_workers``, ``provisioning``, ``mmap``, ``verify`` — to
        values; keys that are absent keep this config's value, which is what
        gives CLI flags field-wise precedence over an artifact-embedded
        config.  Overriding any sharding field replaces the *whole* sharding
        spec (a ``--shards 4`` override must not inherit a stale remote
        address list from the artifact).
        """
        unknown = sorted(
            set(overrides)
            - {
                "dtype",
                "engine",
                "provider",
                "shards",
                "workers",
                "backend",
                "remote_workers",
                "provisioning",
                "mmap",
                "verify",
            }
        )
        if unknown:
            raise ConfigurationError(f"unknown serving config overrides {unknown}")
        config = self
        top = {key: overrides[key] for key in ("dtype", "engine", "provider") if key in overrides}
        if top:
            config = replace(config, **top)
        shard_keys = ("shards", "workers", "backend", "remote_workers", "provisioning")
        if any(key in overrides for key in shard_keys):
            config = replace(
                config,
                sharding=ShardingSpec(
                    shards=_opt_int(overrides.get("shards")),
                    workers=_opt_int(overrides.get("workers")),
                    backend=_opt_str(overrides.get("backend")),
                    remote_workers=_opt_str(overrides.get("remote_workers")),
                    provisioning=str(overrides.get("provisioning", "auto")),
                ),
            )
        if "mmap" in overrides or "verify" in overrides:
            config = replace(
                config,
                artifact=ArtifactOptions(
                    mmap=bool(overrides.get("mmap", config.artifact.mmap)),
                    verify=bool(overrides.get("verify", config.artifact.verify)),
                ),
            )
        return config

    # ------------------------------------------------------------------ #
    # resolution
    # ------------------------------------------------------------------ #
    def resolve(
        self,
        *,
        metric: str = "euclidean",
        strict: bool = True,
    ) -> "ServingPlan":
        """Resolve this config against the current host into a :class:`ServingPlan`.

        All environment-dependent decisions happen here, under one policy:

        * the engine request (``None`` → library default) is resolved to a
          concrete ``"numpy"`` / ``"fused"`` via
          :func:`repro.core.kernels.resolve_engine` — ``strict=True`` raises
          :class:`~repro.exceptions.ConfigurationError` when a ``"fused"``
          request has no provider for ``metric``/``dtype``; ``strict=False``
          degrades to numpy (the hot-path / worker-side policy);
        * a requested fused ``provider`` is honoured by consulting the
          provider registry (an unavailable strict request raises, a
          degradable one resolves to numpy);
        * pooled-backend worker counts default to the usable cores
          (:func:`usable_workers`); the remote backend's worker count is its
          address list.
        """
        requested = self.engine if self.engine is not None else kernels.get_default_engine()
        provider: Optional[str] = None
        if requested == "numpy":
            resolved = "numpy"
        elif self.provider == "none":
            if requested == "fused" and strict:
                raise ConfigurationError(
                    "the fused engine is unavailable: this config disables "
                    "every provider (provider='none')"
                )
            resolved = "numpy"
        elif self.provider is not None:
            available = self.provider in kernels.available_fused_providers()
            supported = available and kernels.fused_supported(metric, self.dtype)
            if requested == "fused" and strict and not supported:
                raise ConfigurationError(
                    f"the fused engine is unavailable with provider "
                    f"{self.provider!r} for metric {metric!r} / dtype "
                    f"{self.dtype!r}"
                )
            resolved = "fused" if supported else "numpy"
            provider = self.provider if resolved == "fused" else None
        else:
            resolved = kernels.resolve_engine(
                requested, metric=metric, dtype=self.dtype, strict=strict
            )
            provider = kernels.fused_provider() if resolved == "fused" else None
        sharding = self.sharding
        backend: Optional[str] = None
        workers: Optional[int] = None
        remote_workers: Tuple[str, ...] = ()
        if sharding.enabled:
            backend = sharding.backend or "thread"
            if backend == "remote":
                remote_workers = _parse_remote_workers(sharding.remote_workers or "")
                workers = len(remote_workers)
            elif backend == "serial":
                workers = 1
            else:
                workers = sharding.workers if sharding.workers is not None else usable_workers()
        return ServingPlan(
            config=self,
            dtype=self.dtype,
            engine_requested=requested,
            engine=resolved,
            provider=provider,
            n_shards=sharding.shards,
            backend=backend,
            workers=workers,
            remote_workers=remote_workers,
            provisioning=sharding.provisioning,
            mmap=self.artifact.mmap,
            verify=self.artifact.verify,
        )


# --------------------------------------------------------------------------- #
# the resolved plan
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ServingPlan:
    """A :class:`ServingConfig` resolved against one host.

    Every field is concrete: the engine is ``"numpy"`` or ``"fused"`` (with
    the provider it will run on), worker counts are integers, remote
    addresses are parsed.  The plan is still a passive value object —
    :meth:`build_backend` constructs the live executor.
    """

    config: ServingConfig
    dtype: str
    engine_requested: str
    engine: str
    provider: Optional[str]
    n_shards: Optional[int]
    backend: Optional[str]
    workers: Optional[int]
    remote_workers: Tuple[str, ...]
    provisioning: str
    mmap: bool
    verify: bool

    @property
    def sharded(self) -> bool:
        return bool(self.n_shards)

    def to_dict(self) -> Dict[str, object]:
        """Resolved-plan provenance (JSON-compatible; used by stats/inspect)."""
        return {
            "dtype": self.dtype,
            "engine_requested": self.engine_requested,
            "engine": self.engine,
            "provider": self.provider,
            "sharded": self.sharded,
            "n_shards": self.n_shards,
            "backend": self.backend,
            "workers": self.workers,
            "remote_workers": list(self.remote_workers),
            "provisioning": self.provisioning,
            "mmap": self.mmap,
            "verify": self.verify,
        }

    def build_backend(self) -> "Optional[ShardBackend]":
        """Construct the live :class:`~repro.serving.backends.ShardBackend`.

        The single place a declarative plan becomes a running executor:
        ``load_bundle``, ``GhsomDetector.configure`` and the CLI all come
        through here, so backend-construction policy (remote provisioning
        mode, worker counts) cannot drift between layers.  Returns ``None``
        for an unsharded plan.
        """
        if not self.sharded:
            return None
        if self.backend == "remote":
            from repro.serving.remote import RemoteBackend

            return RemoteBackend(
                list(self.remote_workers), provisioning=self.provisioning
            )
        from repro.serving.backends import make_backend

        workers = None if self.backend == "serial" else self.workers
        return make_backend(self.backend, workers)

    def describe(self) -> Dict[str, object]:
        """Plan provenance plus host diagnostics (the ``inspect`` view)."""
        summary = self.to_dict()
        summary["usable_cores"] = usable_workers()
        summary["default_engine"] = kernels.get_default_engine()
        summary["fused_providers_available"] = list(kernels.available_fused_providers())
        return summary


# --------------------------------------------------------------------------- #
# precedence
# --------------------------------------------------------------------------- #
def effective_config(
    *,
    config: Optional[ServingConfig] = None,
    overrides: Optional[Mapping[str, object]] = None,
    embedded: Optional[Mapping[str, object]] = None,
) -> ServingConfig:
    """The one precedence rule: caller config > overrides > embedded > default.

    ``config`` (a full :class:`ServingConfig`) wins wholesale when given.
    Otherwise the artifact-``embedded`` payload (or the library default when
    absent) is the base and the flat ``overrides`` mapping — CLI flags the
    operator actually passed — is applied field-wise on top.
    """
    if config is not None:
        if not isinstance(config, ServingConfig):
            raise ConfigurationError(
                f"config must be a ServingConfig, got {type(config).__name__}"
            )
        if overrides:
            raise ConfigurationError(
                "pass either a full ServingConfig or field overrides, not both"
            )
        return config
    base = ServingConfig() if embedded is None else ServingConfig.from_dict(embedded)
    if overrides:
        base = base.with_overrides(overrides)
    return base


# --------------------------------------------------------------------------- #
# serving observability
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ServingStats:
    """Per-batch serving observability attached to ``DetectionResult.stats``.

    Timings are wall-clock seconds per stage: ``ingest`` (validation plus
    the single cast to the serving dtype), ``route`` (the sharded router's
    root distance+argmin; zero on the unsharded engine, which fuses routing
    into the descent), ``descend`` (the tree descent itself) and ``merge``
    (score folding, label resolution and — when sharded — scattering shard
    results back into input order).  ``plan`` carries the resolved
    :meth:`ServingPlan.to_dict` provenance so a consumer can tell *how* the
    batch executed, not just how long it took.
    """

    n_records: int
    dtype: str
    engine: str
    sharded: bool
    ingest_s: float
    route_s: float
    descend_s: float
    merge_s: float
    total_s: float
    plan: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_records": self.n_records,
            "dtype": self.dtype,
            "engine": self.engine,
            "sharded": self.sharded,
            "ingest_s": self.ingest_s,
            "route_s": self.route_s,
            "descend_s": self.descend_s,
            "merge_s": self.merge_s,
            "total_s": self.total_s,
            "plan": self.plan,
        }
