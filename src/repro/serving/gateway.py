"""The async detection gateway: a micro-batching front door for live scoring.

Every other entry point in this library is batch-shaped, but an inline
deployment sees millions of concurrent *single-record* requests — the shape
the compiled engine is worst at (per-call overhead dominates a one-row
descent).  :class:`DetectionGateway` closes that gap: an asyncio TCP server
speaking the existing framed transport (:mod:`repro.serving.transport`)
that coalesces every ``detect`` request arriving within one configurable
few-millisecond **tick** (bounded by a **max-batch-rows** cap) into ONE
:meth:`~repro.core.detector.GhsomDetector.detect` call, then demultiplexes
the per-request slices back to their connections.

The numerical contract is precise: the gateway adds **zero numerical
error**.  Every reply is exactly ``detect()`` on the served batch, sliced
per request — a request served alone is bit-for-bit the direct call, and a
coalesced batch is bit-for-bit ``detect()`` on the concatenated rows
(``tests/test_serving_gateway.py`` proves both).  Coalescing itself carries
the same caveat as changing your own batch size: BLAS blocks the distance
GEMM differently for different row counts, so a row's *score* may move by
~1 ULP depending on which batch it rode in.  That is a property of
``detect`` (measurable entirely without the gateway), not of the transport
or the demultiplexer.

Contracts worth knowing:

* **one model, resolved once** — the gateway serves a single detector whose
  :class:`~repro.serving.config.ServingConfig` was resolved to a
  :class:`~repro.serving.config.ServingPlan` at startup (the CLI ``serve``
  command runs the standard precedence: CLI flags > artifact-embedded
  config > defaults).  The resolved plan is advertised in the handshake.
* **backpressure, never silent drops** — admission is bounded by
  ``max_pending_rows``; a request that would overflow it is rejected with
  an explicit :class:`~repro.exceptions.ServingError` reply.  Every
  admitted request gets exactly one reply (result or error) unless its
  client disconnects first.
* **per-request deadlines** — a ``detect`` request may carry ``timeout_ms``
  (a time budget starting at admission); a request still queued past its
  budget is answered with a deadline error instead of a stale result.
* **graceful drain** — :meth:`DetectionGateway.shutdown` stops accepting,
  rejects new work, and lets everything already admitted finish before the
  loop exits.

The transport pickles frames, so the gateway shares the shard worker's
trust model: serve trusted clients on a private network, never an
internet-facing port.

:class:`GatewayClient` is the matching client — a thin typed layer over the
:class:`~repro.serving.transport.WorkerConnection` multiplexer, so one
socket carries any number of in-flight requests (the benchmark drives 512).
"""

from __future__ import annotations

import asyncio
import os
import socket
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro._typing import AnyArray
from repro.exceptions import ConfigurationError, ServingError
from repro.serving.transport import (
    PROTOCOL_VERSION,
    TransportError,
    WorkerConnection,
    parse_address,
    read_frame_async,
    write_frame_async,
)

if TYPE_CHECKING:  # import cycle: repro.core.detector lazily imports serving
    from repro.core.detector import DetectionResult, GhsomDetector


# --------------------------------------------------------------------------- #
# wire-facing result
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class GatewayResult:
    """One request's slice of a gateway micro-batch.

    The arrays are exactly this request's slice of the serving batch's
    :meth:`~repro.core.detector.GhsomDetector.detect` result — no transport
    round-trip error, byte-for-byte; ``batch_rows`` reports how many rows
    the micro-batch held in total, so ``> len(result)`` means the request
    was coalesced with concurrent traffic.
    """

    scores: AnyArray
    predictions: AnyArray
    categories: List[str]
    leaf_index: Optional[AnyArray]
    batch_rows: int

    def __len__(self) -> int:
        return int(self.scores.shape[0])

    @staticmethod
    def from_payload(payload: object) -> "GatewayResult":
        """Validate one ``detect`` result payload from the wire."""
        if not isinstance(payload, dict):
            raise ServingError(f"malformed gateway result payload: {payload!r}")
        scores = np.asarray(payload.get("scores"), dtype=float)
        predictions = np.asarray(payload.get("predictions"))
        categories_raw = payload.get("categories")
        if not isinstance(categories_raw, list):
            raise ServingError("malformed gateway result payload: categories missing")
        leaf_raw = payload.get("leaf_index")
        leaf_index = None if leaf_raw is None else np.asarray(leaf_raw)
        if scores.ndim != 1 or scores.shape[0] != predictions.shape[0] or scores.shape[0] != len(categories_raw):
            raise ServingError(
                "malformed gateway result payload: per-record arrays disagree "
                f"on length ({scores.shape[0]} scores, {predictions.shape[0]} "
                f"predictions, {len(categories_raw)} categories)"
            )
        try:
            batch_rows = int(payload["batch_rows"])  # type: ignore[call-overload]
        except (KeyError, TypeError, ValueError) as exc:
            raise ServingError(
                "malformed gateway result payload: batch_rows missing"
            ) from exc
        return GatewayResult(
            scores=scores,
            predictions=predictions,
            categories=[str(category) for category in categories_raw],
            leaf_index=leaf_index,
            batch_rows=batch_rows,
        )


# --------------------------------------------------------------------------- #
# server internals
# --------------------------------------------------------------------------- #
@dataclass(eq=False)  # identity semantics: connections live in a set
class _ClientConnection:
    """Per-connection write state: one asyncio writer, serialised replies."""

    writer: asyncio.StreamWriter
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    closed: bool = False


@dataclass
class _PendingRequest:
    """One admitted ``detect`` request waiting for (or riding) a micro-batch."""

    connection: _ClientConnection
    request_id: object
    rows: AnyArray
    n_rows: int
    #: Monotonic instant after which the request must be answered with a
    #: deadline error instead of a result (``None`` = no budget).
    deadline: Optional[float]
    timeout_ms: Optional[float]


class DetectionGateway:
    """Asyncio TCP server that micro-batches ``detect`` requests.

    Parameters
    ----------
    detector:
        A fitted :class:`~repro.core.detector.GhsomDetector` (serving
        config already applied; the gateway resolves its plan once here and
        never reconfigures it).
    host, port:
        Listen address; ``port=0`` binds an ephemeral port — read the real
        one from :attr:`address` (available immediately, the listening
        socket is created in the constructor).
    tick_ms:
        Coalescing window: after the first request of a batch arrives, the
        gateway keeps admitting concurrent requests into the same
        ``detect`` call for this many milliseconds (or until the row cap).
        ``0`` disables the wait — each batch is whatever is already queued.
    max_batch_rows:
        Row cap per ``detect`` call; also the largest row-block one request
        may carry.
    max_pending_rows:
        Admission bound: total rows admitted-but-unanswered.  A request
        that would overflow it is rejected with an explicit error reply.
    drain_timeout_s:
        Upper bound :meth:`shutdown` waits for admitted work to finish.

    ``start()`` serves on a background thread (tests, benchmarks);
    ``serve_forever()`` blocks (the CLI).  Both end via :meth:`shutdown`.
    """

    def __init__(
        self,
        detector: "GhsomDetector",
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        tick_ms: float = 2.0,
        max_batch_rows: int = 4096,
        max_pending_rows: int = 32768,
        drain_timeout_s: float = 10.0,
    ) -> None:
        if tick_ms < 0:
            raise ConfigurationError(f"tick_ms must be >= 0, got {tick_ms}")
        if max_batch_rows < 1:
            raise ConfigurationError(f"max_batch_rows must be >= 1, got {max_batch_rows}")
        if max_pending_rows < max_batch_rows:
            raise ConfigurationError(
                f"max_pending_rows ({max_pending_rows}) must be >= "
                f"max_batch_rows ({max_batch_rows}), or a full-size request "
                "could never be admitted"
            )
        if not detector.is_fitted:
            raise ServingError("the gateway needs a fitted detector")
        self._detector = detector
        self._tick_s = float(tick_ms) / 1e3
        self._max_batch_rows = int(max_batch_rows)
        self._max_pending_rows = int(max_pending_rows)
        self._drain_timeout_s = float(drain_timeout_s)
        # Resolve the serving plan once, now: a misconfigured model must
        # fail at startup, not at the first client request.
        self._plan_info: Dict[str, object] = dict(detector.resolved_plan().describe())
        compiled = detector._compiled_model()
        self._n_features = int(compiled.n_features)
        self._serving_dtype = np.dtype(compiled.dtype)
        self._listener = socket.create_server((host, int(port)), reuse_port=False)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        #: Observability counters (written only from the event-loop thread).
        self.stats: Dict[str, int] = {
            "requests": 0,
            "rows": 0,
            "batches": 0,
            "batched_rows": 0,
            "largest_batch_rows": 0,
            "rejected_backpressure": 0,
            "expired_deadlines": 0,
            "request_errors": 0,
        }
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._draining = False
        self._closed = False
        self._pending_rows = 0
        self._carry: Optional[_PendingRequest] = None
        self._connections: Set[_ClientConnection] = set()
        # Created inside the event loop (asyncio primitives bind to it).
        self._queue: "asyncio.Queue[Optional[_PendingRequest]]" = asyncio.Queue()
        self._server: Optional[asyncio.AbstractServer] = None
        self._batcher: Optional["asyncio.Task[None]"] = None
        self._stopped: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def gateway_info(self) -> Dict[str, object]:
        """The info dict advertised to clients during the handshake."""
        return {
            "pid": os.getpid(),
            "protocol": PROTOCOL_VERSION,
            "role": "gateway",
            "ops": ("ping", "detect"),
            "n_features": self._n_features,
            "dtype": str(self._serving_dtype),
            "tick_ms": self._tick_s * 1e3,
            "max_batch_rows": self._max_batch_rows,
            "max_pending_rows": self._max_pending_rows,
            "plan": dict(self._plan_info),
        }

    def serve_forever(self) -> None:
        """Run the gateway on the calling thread until interrupted."""
        self._run_loop()

    def start(self) -> "DetectionGateway":
        """Serve on a daemon thread (in-process gateways for tests/benchmarks)."""
        self._thread = threading.Thread(
            target=self._run_loop,
            name=f"repro-gateway-{self.address[1]}",
            daemon=True,
        )
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._startup_error is not None:
            raise ServingError(f"gateway failed to start: {self._startup_error}")
        return self

    def shutdown(self) -> None:
        """Graceful drain from any thread: finish admitted work, then stop."""
        loop = self._loop
        if loop is None or not loop.is_running():
            self._close_listener()
            return
        try:
            asyncio.run_coroutine_threadsafe(self._shutdown_async(), loop).result(
                timeout=self._drain_timeout_s + 30.0
            )
        except (TransportError, ServingError, RuntimeError, TimeoutError):
            pass  # the loop stopped while (or before) the drain ran
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def __enter__(self) -> "DetectionGateway":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def _close_listener(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    # event loop plumbing
    # ------------------------------------------------------------------ #
    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        main_task = loop.create_task(self._main())
        try:
            loop.run_until_complete(main_task)
        except KeyboardInterrupt:
            # CLI path: drain in the same loop, then let _main finish.
            loop.run_until_complete(self._shutdown_async())
            loop.run_until_complete(main_task)
        except BaseException as exc:
            self._startup_error = exc
            raise
        finally:
            self._started.set()
            self._closed = True
            loop.close()

    async def _main(self) -> None:
        self._queue = asyncio.Queue()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_client, sock=self._listener
        )
        self._batcher = asyncio.create_task(self._batch_loop())
        self._started.set()
        await self._stopped.wait()

    async def _shutdown_async(self) -> None:
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()  # stop accepting; live connections stay up
        # Admitted work drains: new detect ops are rejected from here on,
        # everything already in the queue still gets its real result.
        deadline = time.monotonic() + self._drain_timeout_s
        while self._pending_rows > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.005)
        await self._queue.put(None)  # wake + stop the batch loop
        if self._batcher is not None:
            try:
                await asyncio.wait_for(self._batcher, timeout=self._drain_timeout_s)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                self._batcher.cancel()
        for connection in list(self._connections):
            connection.closed = True
            connection.writer.close()
        if self._server is not None:
            await self._server.wait_closed()
        if self._stopped is not None:
            self._stopped.set()

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _ClientConnection(writer=writer)
        self._connections.add(connection)
        try:
            raw = writer.get_extra_info("socket")
            if raw is not None:
                raw.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if not await self._handshake(reader, writer):
                return
            while True:
                try:
                    frame = await read_frame_async(reader)
                except TransportError:
                    return  # client went away (or sent garbage)
                if not isinstance(frame, dict) or "id" not in frame or "op" not in frame:
                    return
                request_id = frame["id"]
                try:
                    operation = frame["op"]
                    if operation == "ping":
                        await self._reply(connection, request_id, {"ok": True, "result": "pong"})
                        continue
                    if operation == "detect":
                        self._admit(connection, request_id, frame)
                        continue
                    raise ServingError(f"unknown operation {operation!r}")
                # repro-lint: disable=RPL007 -- gateway admission path: the
                # failure is shipped back as an error reply frame (the
                # "explicit rejection, never a silent drop" contract);
                # raising would kill the whole connection instead.
                except Exception as exc:
                    self.stats["request_errors"] += 1
                    await self._reply(
                        connection,
                        request_id,
                        {"ok": False, "error": f"{type(exc).__name__}: {exc}"},
                    )
        except TransportError:
            pass  # handshake reply pipe broke
        finally:
            connection.closed = True
            self._connections.discard(connection)
            writer.close()

    async def _handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Async server side of the transport handshake (same frames/texts)."""
        try:
            hello = await read_frame_async(reader)
        except TransportError:
            return False  # garbage or a port-scanner; nothing to answer
        if not isinstance(hello, dict) or hello.get("kind") != "hello":
            await self._best_effort_write(writer, {"kind": "reject", "error": "expected a hello frame"})
            return False
        if hello.get("protocol") != PROTOCOL_VERSION:
            await self._best_effort_write(
                writer,
                {
                    "kind": "reject",
                    "error": (
                        f"protocol mismatch: gateway speaks {PROTOCOL_VERSION}, "
                        f"client sent {hello.get('protocol')!r}; upgrade the "
                        "older side"
                    ),
                },
            )
            return False
        await write_frame_async(
            writer,
            {"kind": "hello", "protocol": PROTOCOL_VERSION, "worker": self.gateway_info()},
        )
        return True

    @staticmethod
    async def _best_effort_write(writer: asyncio.StreamWriter, payload: object) -> None:
        try:
            await write_frame_async(writer, payload)
        except TransportError:
            pass

    async def _reply(
        self, connection: _ClientConnection, request_id: object, payload: Dict[str, object]
    ) -> None:
        """Send one response frame; a vanished client is not an error."""
        if connection.closed:
            return
        try:
            async with connection.lock:
                await write_frame_async(connection.writer, {"id": request_id, **payload})
        except TransportError:
            connection.closed = True  # client disconnected mid-flight

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def _admit(
        self, connection: _ClientConnection, request_id: object, frame: Dict[str, object]
    ) -> None:
        """Validate and enqueue one ``detect`` request (or raise the rejection)."""
        if self._draining:
            raise ServingError(
                "gateway is draining (shutdown in progress); the request was "
                "not admitted"
            )
        rows = self._coerce_rows(frame.get("rows"))
        deadline: Optional[float] = None
        timeout_ms: Optional[float] = None
        budget = frame.get("timeout_ms")
        if budget is not None:
            if not isinstance(budget, (int, float, np.integer, np.floating)) or bool(
                budget < 0
            ):
                raise ServingError(
                    f"timeout_ms must be a non-negative number, got {budget!r}"
                )
            timeout_ms = float(budget)
            deadline = time.monotonic() + timeout_ms / 1e3
        n_rows = int(rows.shape[0])
        if self._pending_rows + n_rows > self._max_pending_rows:
            self.stats["rejected_backpressure"] += 1
            raise ServingError(
                f"gateway pending queue is full ({self._pending_rows} rows "
                f"admitted, cap {self._max_pending_rows}); back off and retry"
            )
        self._pending_rows += n_rows
        self.stats["requests"] += 1
        self.stats["rows"] += n_rows
        self._queue.put_nowait(
            _PendingRequest(
                connection=connection,
                request_id=request_id,
                rows=rows,
                n_rows=n_rows,
                deadline=deadline,
                timeout_ms=timeout_ms,
            )
        )

    def _coerce_rows(self, payload: object) -> AnyArray:
        """Per-request row validation — a bad request must not poison a batch."""
        if not isinstance(payload, np.ndarray):
            raise ServingError(
                "detect rows must be a numpy array (one record or a 2-D "
                f"row-block), got {type(payload).__name__}"
            )
        matrix = payload.reshape(1, -1) if payload.ndim == 1 else payload
        if matrix.ndim != 2:
            raise ServingError(
                f"detect rows must be 1-D or 2-D, got shape {payload.shape}"
            )
        if matrix.dtype.kind not in "fiu":
            raise ServingError(
                f"detect rows must be numeric, got dtype {matrix.dtype}"
            )
        if matrix.shape[0] < 1:
            raise ServingError("detect rows must contain at least one record")
        if matrix.shape[1] != self._n_features:
            raise ServingError(
                f"detect rows have {matrix.shape[1]} features, the model "
                f"expects {self._n_features}"
            )
        if matrix.shape[0] > self._max_batch_rows:
            raise ServingError(
                f"row-block of {matrix.shape[0]} rows exceeds this gateway's "
                f"max-batch-rows cap of {self._max_batch_rows}; split the "
                "request"
            )
        # Cast to the serving dtype at admission: batch concatenation is then
        # dtype-uniform and detect()'s own validation pass-through — exactly
        # the arrays a direct detect() call would descend with.
        return np.ascontiguousarray(matrix, dtype=self._serving_dtype)

    # ------------------------------------------------------------------ #
    # the micro-batcher
    # ------------------------------------------------------------------ #
    async def _batch_loop(self) -> None:
        """Coalesce queued requests into single ``detect`` calls, forever.

        While one batch computes in the executor, the event loop keeps
        reading sockets and admitting the next batch — under load the batch
        size adapts to however much arrives per descent.
        """
        loop = asyncio.get_running_loop()
        while True:
            first = self._carry
            self._carry = None
            if first is None:
                item = await self._queue.get()
                if item is None:
                    return  # drain sentinel: queue is empty, stop
                first = item
            batch = [first]
            total_rows = first.n_rows
            stop = False
            if self._tick_s > 0.0:
                tick_deadline = loop.time() + self._tick_s
                while total_rows < self._max_batch_rows:
                    remaining = tick_deadline - loop.time()
                    if remaining <= 0.0:
                        break
                    try:
                        extra = await asyncio.wait_for(self._queue.get(), timeout=remaining)
                    except asyncio.TimeoutError:
                        break
                    if extra is None:
                        stop = True
                        break
                    if total_rows + extra.n_rows > self._max_batch_rows:
                        self._carry = extra  # opens the next batch instead
                        break
                    batch.append(extra)
                    total_rows += extra.n_rows
            else:
                while total_rows < self._max_batch_rows:
                    try:
                        extra = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if extra is None:
                        stop = True
                        break
                    if total_rows + extra.n_rows > self._max_batch_rows:
                        self._carry = extra
                        break
                    batch.append(extra)
                    total_rows += extra.n_rows
            await self._execute(batch)
            if stop:
                if self._carry is not None:
                    carry, self._carry = self._carry, None
                    await self._execute([carry])
                return

    async def _execute(self, batch: Sequence[_PendingRequest]) -> None:
        """Run one coalesced ``detect`` call and demultiplex the replies."""
        now = time.monotonic()
        live: List[_PendingRequest] = []
        for item in batch:
            if item.deadline is not None and now > item.deadline:
                self.stats["expired_deadlines"] += 1
                self._pending_rows -= item.n_rows
                await self._reply(
                    item.connection,
                    item.request_id,
                    {
                        "ok": False,
                        "error": (
                            f"ServingError: deadline expired (timeout_ms="
                            f"{item.timeout_ms}) before the request was served"
                        ),
                    },
                )
            else:
                live.append(item)
        if not live:
            return
        matrix = (
            live[0].rows
            if len(live) == 1
            else np.concatenate([item.rows for item in live], axis=0)
        )
        loop = asyncio.get_running_loop()
        try:
            result: "DetectionResult" = await loop.run_in_executor(
                None, self._detector.detect, matrix
            )
        # repro-lint: disable=RPL007 -- gateway batch path: the failure is
        # shipped back as an error reply to every coalesced request (they
        # must never hang); raising would kill the batch loop and starve
        # every connection.
        except Exception as exc:
            message = f"{type(exc).__name__}: {exc}"
            for item in live:
                self._pending_rows -= item.n_rows
                self.stats["request_errors"] += 1
                await self._reply(
                    item.connection, item.request_id, {"ok": False, "error": message}
                )
            return
        batch_rows = int(matrix.shape[0])
        self.stats["batches"] += 1
        self.stats["batched_rows"] += batch_rows
        self.stats["largest_batch_rows"] = max(
            self.stats["largest_batch_rows"], batch_rows
        )
        offset = 0
        for item in live:
            stop = offset + item.n_rows
            payload: Dict[str, object] = {
                "scores": np.ascontiguousarray(result.scores[offset:stop]),
                "predictions": np.ascontiguousarray(result.predictions[offset:stop]),
                "categories": list(result.categories[offset:stop]),
                "leaf_index": (
                    None
                    if result.leaf_index is None
                    else np.ascontiguousarray(result.leaf_index[offset:stop])
                ),
                "batch_rows": batch_rows,
            }
            offset = stop
            self._pending_rows -= item.n_rows
            await self._reply(
                item.connection, item.request_id, {"ok": True, "result": payload}
            )


# --------------------------------------------------------------------------- #
# client side
# --------------------------------------------------------------------------- #
class GatewayClient:
    """Multiplexed client for one :class:`DetectionGateway`.

    A thin typed layer over :class:`~repro.serving.transport.WorkerConnection`
    — one persistent socket, any number of in-flight ``detect`` requests,
    responses matched back by id.  The handshake's ``role`` advertisement is
    verified up front, so pointing the client at a shard worker fails with
    one clear error instead of a vocabulary mismatch mid-request.
    """

    def __init__(
        self,
        address: Union[str, Tuple[str, int]],
        *,
        connect_timeout: float = 10.0,
    ) -> None:
        resolved = parse_address(address) if isinstance(address, str) else (
            str(address[0]),
            int(address[1]),
        )
        self._connection = WorkerConnection(resolved, connect_timeout=connect_timeout)
        role = self._connection.info.get("role")
        if role != "gateway":
            self._connection.close()
            raise ServingError(
                f"the peer at {resolved[0]}:{resolved[1]} advertises role "
                f"{role!r}, not 'gateway'; point GatewayClient at a "
                "`repro-ids serve` process (shard workers speak a different "
                "request vocabulary)"
            )
        self.address = resolved

    # ------------------------------------------------------------------ #
    @property
    def info(self) -> Dict[str, object]:
        """The gateway's handshake info (resolved plan, knobs, n_features)."""
        return dict(self._connection.info)

    @property
    def n_features(self) -> Optional[int]:
        """Feature width the gateway's model expects (from the handshake)."""
        advertised = self._connection.info.get("n_features")
        return int(advertised) if isinstance(advertised, (int, np.integer)) else None

    @property
    def is_alive(self) -> bool:
        return self._connection.is_alive

    # ------------------------------------------------------------------ #
    def submit(
        self, rows: object, *, timeout_ms: Optional[float] = None
    ) -> "Future[GatewayResult]":
        """Send one ``detect`` request; the future resolves to its result.

        ``rows`` is one record (1-D) or a small row-block (2-D); the
        authoritative validation happens gateway-side.  ``timeout_ms`` is a
        server-side budget: a request still queued past it is answered with
        a deadline error.  The returned future raises
        :class:`~repro.exceptions.ServingError` for gateway rejections and
        :class:`~repro.serving.transport.TransportError` for a dead
        connection.
        """
        matrix = np.asarray(rows)
        inner = (
            self._connection.submit("detect", rows=matrix)
            if timeout_ms is None
            else self._connection.submit(
                "detect", rows=matrix, timeout_ms=float(timeout_ms)
            )
        )
        outer: "Future[GatewayResult]" = Future()

        def _transfer(done: "Future[object]") -> None:
            error = done.exception()
            if error is not None:
                outer.set_exception(error)
                return
            try:
                outer.set_result(GatewayResult.from_payload(done.result()))
            except ServingError as exc:
                outer.set_exception(exc)

        inner.add_done_callback(_transfer)
        return outer

    def detect(
        self,
        rows: object,
        *,
        timeout: Optional[float] = None,
        timeout_ms: Optional[float] = None,
    ) -> GatewayResult:
        """Synchronous convenience: :meth:`submit` + ``result``."""
        return self.submit(rows, timeout_ms=timeout_ms).result(timeout=timeout)

    def ping(self, *, timeout: Optional[float] = 10.0) -> bool:
        """Round-trip liveness probe."""
        return self._connection.call("ping", timeout=timeout) == "pong"

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
