"""Distributed shard serving: the remote backend and the shard worker.

This module turns the shard manifest from a single-host optimisation into
the system's horizontal-scaling substrate.  It has two halves:

* :class:`RemoteBackend` — a :class:`~repro.serving.backends.ShardBackend`
  that dispatches the router's shard tasks to worker processes on other
  hosts over TCP (see :mod:`repro.serving.transport` for the framed
  protocol).  One persistent, multiplexed connection per worker; tasks for
  different shards are pipelined concurrently.
* :class:`ShardWorkerServer` — the worker side, started via ``repro-ids
  shard-worker --listen HOST:PORT [--model bundle.json]``.  Each coordinator
  connection is provisioned with a shard set once, then streams ``run``
  requests against it.

**Provisioning** has two paths.  *By reference*: when the coordinator's
shards are views into a v3 binary artifact's memory-mapped sidecar and the
worker holds its own copy of that artifact, the wire carries only
``(dtype, shape, offset)`` descriptors plus the sidecar's fingerprint
(size + per-member CRC-32s, the same integrity data the v3 JSON header
records); the worker validates its local sidecar against the fingerprint
and maps the same regions — refusing on any mismatch, because mapping
different bytes would silently break byte-identity.  *By value*: for
in-memory models or workers without the artifact, shard arrays are
streamed in full.

**Failover**: a dead, refusing or timed-out worker never surfaces as a
partial result.  Its tasks are re-run on a local fallback backend (serial
by default), so ``detect`` always returns the complete, byte-identical
answer — remote workers only ever make it faster, never wrong.  Results
are byte-identical to the serial backend by construction: workers run the
same :func:`~repro.core.compiled.frontier_descent` loop on the same row
groupings over the same array bytes.  That construction assumes a
*homogeneous numerical stack* across hosts — same NumPy/BLAS builds on
comparable CPUs — because the per-level GEMM is exactly as reproducible as
the library computing it; deploy heterogeneous fleets only with the same
pinned builds everywhere (the loopback CI gate runs coordinator and
workers on one stack, which is the supported configuration).

The transport pickles frames, so point the backend only at workers you
trust — the process-pool trust model stretched across a private network.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import fields
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Sequence, Set, Tuple, Union, cast

import numpy as np

from repro._typing import AnyArray
from repro.exceptions import ConfigurationError, SerializationError, ServingError
from repro.serving.backends import (
    ShardBackend,
    ShardResult,
    ShardTask,
    _default_workers,
    make_backend,
    same_shard_objects,
)
from repro.serving.config import ServingConfig
from repro.serving.shards import SubtreeShard
from repro.serving.transport import (
    PROTOCOL_VERSION,
    SidecarRef,
    TransportError,
    WorkerConnection,
    parse_address,
    recv_frame,
    send_frame,
    server_handshake,
)
from repro.utils.mmapio import MmapRef, fingerprints_match, sidecar_fingerprint


def _frame_int(value: object) -> int:
    """A wire-frame field as an int (malformed frames become error replies)."""
    if isinstance(value, (bool, int, float, str, np.integer)):
        return int(value)
    raise ServingError(
        f"expected an integer frame field, got {type(value).__name__}"
    )


# --------------------------------------------------------------------------- #
# shard wire forms
# --------------------------------------------------------------------------- #
def _shard_states(shards: Sequence[SubtreeShard]) -> List[Dict[str, object]]:
    """Portable per-shard field states (memmap arrays as :class:`MmapRef`)."""
    return [shard.__getstate__() for shard in shards]


def _reference_wire(
    shards: Sequence[SubtreeShard],
    states: Sequence[Dict[str, object]],
) -> Optional[Tuple[str, Dict[str, object], List[Dict[str, object]]]]:
    """The by-reference wire form, or ``None`` when shards aren't mappable.

    By-reference provisioning needs every memory-mapped shard array to live
    in one file (the artifact's sidecar) — then the wire carries
    ``(sidecar path, fingerprint, states-with-SidecarRefs)`` and a worker
    holding a byte-identical copy of the sidecar maps the same regions.
    Returns ``None`` when no array is memmap-backed (in-memory model), the
    refs span multiple files, or the file on disk no longer serves the
    coordinator's live bytes (see below).

    The region descriptors promise workers "map these offsets and you hold
    exactly the bytes the coordinator serves".  That promise is verified
    here, not assumed: every referenced region is re-read from the file and
    compared against the live mapped array, because an atomically replaced
    artifact (new inode, possibly same size) leaves the coordinator serving
    the *old* mapping while the path — and therefore the fingerprint and
    every worker check — describes the *new* file.  One sequential read of
    the shard regions per provisioning epoch; on any mismatch the caller
    falls back to by-value, which streams the true live bytes.
    """
    paths = {
        value.path
        for state in states
        for value in state.values()
        if isinstance(value, MmapRef)
    }
    if len(paths) != 1:
        return None
    path = next(iter(paths))
    try:
        with open(path, "rb") as stream:
            for shard, state in zip(shards, states, strict=True):
                for name, value in state.items():
                    if not isinstance(value, MmapRef):
                        continue
                    live = np.ascontiguousarray(getattr(shard, name))
                    if not _region_matches(stream, value.offset, live):
                        return None
    except OSError:
        return None
    ref_states = [
        {
            name: (
                SidecarRef(
                    dtype=value.dtype,
                    shape=value.shape,
                    offset=value.offset,
                    file_bytes=value.file_bytes,
                )
                if isinstance(value, MmapRef)
                else value
            )
            for name, value in state.items()
        }
        for state in states
    ]
    return path, sidecar_fingerprint(path), ref_states


def _region_matches(stream: IO[bytes], offset: int, live: AnyArray) -> bool:
    """Whether the file region at ``offset`` equals the live array's bytes.

    Fixed-size chunks: the members being compared can rival the host's RAM
    (the sidecar is mmap-served precisely because it may not fit), so the
    comparison must never materialise a whole region.
    """
    view = memoryview(live).cast("B")
    stream.seek(int(offset))
    position = 0
    while position < len(view):
        chunk = stream.read(min(1 << 22, len(view) - position))
        if not chunk or chunk != view[position : position + len(chunk)]:
            return False
        position += len(chunk)
    return True


def _value_wire(shards: Sequence[SubtreeShard]) -> List[Dict[str, object]]:
    """The by-value wire form: every array travels as its bytes.

    Memmap-backed arrays are re-exposed as plain ndarray views over the
    mapping (``.view(np.ndarray)``), which pickle by value — the worker
    receives the exact bytes the coordinator serves from, so results stay
    byte-identical without the worker needing the artifact file.
    """
    states: List[Dict[str, object]] = []
    for shard in shards:
        state: Dict[str, object] = {}
        for field_info in fields(SubtreeShard):
            value = getattr(shard, field_info.name)
            if isinstance(value, np.ndarray):
                value = np.asarray(value).view(np.ndarray)
            state[field_info.name] = value
        states.append(state)
    return states


def _shard_from_state(
    state: Dict[str, object], sidecar_path: Optional[Path]
) -> SubtreeShard:
    """Rebuild a shard from a provisioned wire state on the worker side."""
    restored: Dict[str, object] = {}
    for name, value in state.items():
        if isinstance(value, SidecarRef):
            if sidecar_path is None:
                raise ServingError(
                    "by-reference shard state received but this worker has no "
                    "model artifact; restart it with --model"
                )
            value = MmapRef(
                path=str(sidecar_path),
                dtype=value.dtype,
                shape=tuple(value.shape),
                offset=int(value.offset),
                file_bytes=int(value.file_bytes),
                file_id=None,  # the worker's copy is a different inode
            ).restore()
        restored[name] = value
    shard = SubtreeShard.__new__(SubtreeShard)
    shard.__setstate__(restored)
    return shard


# --------------------------------------------------------------------------- #
# coordinator side: the remote backend
# --------------------------------------------------------------------------- #
class RemoteBackend(ShardBackend):
    """Run shard tasks on remote worker processes over TCP.

    Slots in behind the same ``run(shards, tasks)`` seam as the in-process
    backends.  Tasks are spread round-robin over the live workers and
    pipelined concurrently on each persistent connection; any task a worker
    cannot finish — connection refused, death mid-batch, a provisioning
    refusal, a timeout — fails over to ``fallback`` (a local backend, serial
    by default), so the merged result is always complete and byte-identical.

    ``provisioning`` selects how workers receive the shard set: ``"auto"``
    (by reference when the shards map a v3 sidecar and the worker advertises
    a matching copy, by value otherwise), ``"reference"`` (strict: error
    rather than stream arrays), or ``"value"`` (always stream).

    Dead workers are reconnected (and re-provisioned) on the next ``run``
    call, so a restarted worker rejoins the pool without coordinator
    restarts.  ``stats`` counts remote/failed-over tasks and provisioning
    modes for observability and tests.
    """

    name = "remote"

    def __init__(
        self,
        addresses: Union[str, Sequence[Union[str, Tuple[str, int]]]],
        *,
        fallback: Union[str, ShardBackend] = "serial",
        provisioning: str = "auto",
        connect_timeout: float = 10.0,
        task_timeout: float = 120.0,
        reconnect_backoff: float = 30.0,
    ) -> None:
        if isinstance(addresses, str):
            addresses = [part for part in addresses.split(",") if part.strip()]
        parsed = tuple(
            address if isinstance(address, tuple) else parse_address(address)
            for address in addresses
        )
        if not parsed:
            raise ConfigurationError(
                "the remote backend needs at least one worker address "
                "(HOST:PORT)"
            )
        if provisioning not in ("auto", "reference", "value"):
            raise ConfigurationError(
                f"unknown provisioning mode {provisioning!r}; "
                "expected auto, reference or value"
            )
        self._addresses = parsed
        self._fallback = make_backend(fallback)
        self._provisioning = provisioning
        self._connect_timeout = float(connect_timeout)
        self._task_timeout = float(task_timeout)
        self._reconnect_backoff = float(reconnect_backoff)
        self._connections: Dict[Tuple[str, int], WorkerConnection] = {}
        #: Monotonic deadline before which a failed address is not re-dialed
        #: (a dead host must not add a connect timeout to every batch).
        self._retry_at: Dict[Tuple[str, int], float] = {}
        #: The shard tuple the current epoch was provisioned for, compared
        #: element-wise by identity (same contract as the process pool's
        #: staleness check — see ``same_shard_objects``).
        self._epoch_shards: Optional[Tuple[SubtreeShard, ...]] = None
        self._epoch = -1
        self._wire_reference: Optional[Tuple[str, Dict[str, object], List[Dict[str, object]]]] = None
        self._wire_value: Optional[List[Dict[str, object]]] = None
        #: The ServingConfig in force on the coordinator, shipped inside every
        #: provision frame (set via :meth:`configure_serving`).
        self._serving_config: Optional[ServingConfig] = None
        #: Per-worker resolved plans from the most recent provisioning —
        #: ``{"host:port": plan_dict}``, straight from each worker's provision
        #: ack.  Lets operators (and the loopback CI gate) assert that every
        #: worker resolved the shipped config to the same effective plan the
        #: coordinator did.
        self.worker_plans: Dict[str, Dict[str, object]] = {}
        self.stats: Dict[str, int] = {
            "remote_tasks": 0,
            "failover_tasks": 0,
            "provision_reference": 0,
            "provision_value": 0,
            "connects": 0,
        }

    # ------------------------------------------------------------------ #
    @classmethod
    def from_spec(cls, spec: str, **kwargs: Any) -> "RemoteBackend":
        """Build a backend from a ``HOST:PORT[,HOST:PORT...]`` spec string."""
        return cls(spec, **kwargs)

    @property
    def workers(self) -> int:
        return len(self._addresses)

    @property
    def addresses(self) -> Tuple[Tuple[str, int], ...]:
        return self._addresses

    def configure_serving(self, config: ServingConfig) -> None:
        """Ship ``config`` to every worker at the next provisioning epoch.

        Replaces the per-shard engine re-stamp of earlier versions: workers
        receive the whole :class:`~repro.serving.config.ServingConfig`,
        resolve it locally (honouring their own ``--engine`` override) and
        report the resolved plan back in the provision ack
        (:attr:`worker_plans`).  A changed config invalidates the current
        epoch so the next ``run`` re-provisions with the new one.
        """
        if config != self._serving_config:
            self._serving_config = config
            self._epoch_shards = None

    def close(self) -> None:
        for connection in self._connections.values():
            connection.close()
        self._connections.clear()
        self._epoch_shards = None
        self._wire_reference = None
        self._wire_value = None
        self._fallback.close()

    # ------------------------------------------------------------------ #
    def run(
        self, shards: Sequence[SubtreeShard], tasks: Sequence[ShardTask]
    ) -> List[ShardResult]:
        if not tasks:
            return []
        shard_tuple = tuple(shards)
        connections = self._ensure_workers(shard_tuple)
        results: List[Optional[ShardResult]] = [None] * len(tasks)
        failed: List[int] = []
        pending: List[Tuple[int, WorkerConnection, "Future[object]"]] = []
        if connections:
            for position, (index, matrix, entries) in enumerate(tasks):
                connection = connections[position % len(connections)]
                try:
                    future = connection.submit(
                        "run",
                        epoch=self._epoch,
                        shard=int(index),
                        matrix=matrix,
                        entries=entries,
                    )
                except ServingError:
                    self._drop(connection)
                    failed.append(position)
                    continue
                pending.append((position, connection, future))
        else:
            failed = list(range(len(tasks)))
        for position, connection, future in pending:
            try:
                leaf, distances = cast(
                    "Tuple[object, object]", future.result(timeout=self._task_timeout)
                )
                results[position] = (np.asarray(leaf), np.asarray(distances))
                self.stats["remote_tasks"] += 1
            except (ServingError, FutureTimeoutError):
                # Timed-out workers are dropped entirely: a late response to
                # an abandoned request must never be mistaken for a fresh one.
                self._drop(connection)
                failed.append(position)
        if failed:
            failed.sort()
            recovered = self._fallback.run(shard_tuple, [tasks[i] for i in failed])
            for position, result in zip(failed, recovered, strict=True):
                results[position] = result
            self.stats["failover_tasks"] += len(failed)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    def _ensure_workers(
        self, shards: Tuple[SubtreeShard, ...]
    ) -> List[WorkerConnection]:
        """Connect + provision every reachable worker for this shard tuple.

        Staleness is element-wise identity: different shard *objects* mean
        different arrays and stale worker state; a fresh tuple of the same
        objects does not force re-provisioning.
        """
        if not same_shard_objects(self._epoch_shards, shards):
            self._epoch += 1
            self._epoch_shards = shards
            # The reference wire costs a sequential sidecar read (live-bytes
            # validation); don't pay it when it can never be used.
            self._wire_reference = (
                None
                if self._provisioning == "value"
                else _reference_wire(shards, _shard_states(shards))
            )
            self._wire_value = None  # materialised lazily (it copies arrays)
        if self._provisioning == "reference" and self._wire_reference is None:
            # Strict mode is a promise to never stream arrays — an
            # unmappable shard set must surface, not degrade to local
            # serving behind the operator's back.
            raise ServingError(
                "by-reference provisioning requires shards backed by a v3 "
                "binary artifact's memory-mapped sidecar; load the model "
                "from a --format binary artifact or use provisioning='value'"
            )
        live: List[WorkerConnection] = []
        for address in self._addresses:
            connection = self._connections.get(address)
            if connection is not None and not connection.is_alive:
                self._drop(connection)
                connection = None
            if connection is None:
                if time.monotonic() < self._retry_at.get(address, 0.0):
                    continue  # recently failed; don't re-dial every batch
                try:
                    connection = WorkerConnection(
                        address, connect_timeout=self._connect_timeout
                    )
                except TransportError:
                    self._retry_at[address] = time.monotonic() + self._reconnect_backoff
                    continue  # unreachable right now; retried after backoff
                self._retry_at.pop(address, None)
                self._connections[address] = connection
                self.stats["connects"] += 1
            if connection.provisioned_epoch != self._epoch:
                try:
                    self._provision(connection, shards)
                    connection.provisioned_epoch = self._epoch
                except (ServingError, FutureTimeoutError) as exc:
                    self._drop(connection)
                    if (
                        self._provisioning == "reference"
                        and isinstance(exc, ServingError)
                        and not isinstance(exc, TransportError)
                    ):
                        # Strict mode: a worker *refusing* the reference
                        # (CRC mismatch, no artifact) is the answer the
                        # operator asked for — never paper over it with
                        # local serving.  A dead connection (TransportError)
                        # still fails over like any other backend failure.
                        raise
                    # A worker that accepts connections but cannot be
                    # provisioned (wedged process, stalling proxy) must not
                    # re-cost a full provision attempt on every batch.
                    self._retry_at[address] = time.monotonic() + self._reconnect_backoff
                    continue
            live.append(connection)
        return live

    def _provision(
        self, connection: WorkerConnection, shards: Tuple[SubtreeShard, ...]
    ) -> None:
        """Ship the current shard set to one worker (reference or value)."""
        use_reference = False
        wire_reference = self._wire_reference
        if self._provisioning in ("auto", "reference") and wire_reference is not None:
            if self._provisioning == "reference":
                use_reference = True  # strict: the worker's refusal surfaces
            else:
                advertised = connection.info.get("sidecar")
                _, fingerprint, _ = wire_reference
                use_reference = isinstance(advertised, dict) and fingerprints_match(
                    fingerprint, advertised
                )
        serving = (
            None if self._serving_config is None else self._serving_config.to_dict()
        )
        if use_reference and wire_reference is not None:
            _, fingerprint, states = wire_reference
            try:
                ack = connection.call(
                    "provision",
                    timeout=self._task_timeout,
                    mode="reference",
                    epoch=self._epoch,
                    sidecar=fingerprint,
                    shards=states,
                    serving=serving,
                )
                self.stats["provision_reference"] += 1
                self._note_worker_plan(connection, ack)
                return
            except ServingError:
                if self._provisioning == "reference":
                    raise  # strict mode: the refusal is the answer
                # The worker's sidecar changed between handshake and
                # provision; stream the arrays instead of giving it up.
        if self._wire_value is None:
            self._wire_value = _value_wire(shards)
        ack = connection.call(
            "provision",
            timeout=self._task_timeout,
            mode="value",
            epoch=self._epoch,
            sidecar=None,
            shards=self._wire_value,
            serving=serving,
        )
        self.stats["provision_value"] += 1
        self._note_worker_plan(connection, ack)

    def _note_worker_plan(self, connection: WorkerConnection, ack: object) -> None:
        """Record the resolved plan a worker reported in its provision ack."""
        if isinstance(ack, dict):
            plan = ack.get("plan")
            if isinstance(plan, dict):
                host, port = connection.address
                self.worker_plans[f"{host}:{port}"] = plan

    def _drop(self, connection: WorkerConnection) -> None:
        connection.close()
        if self._connections.get(connection.address) is connection:
            del self._connections[connection.address]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        addresses = ",".join(f"{host}:{port}" for host, port in self._addresses)
        return f"RemoteBackend({addresses})"


# --------------------------------------------------------------------------- #
# worker side: the TCP shard server
# --------------------------------------------------------------------------- #
class ShardWorkerServer:
    """A shard worker: accepts coordinator connections and runs their tasks.

    Each connection is handled on its own thread with its *own* provisioned
    shard set (two coordinators never share or race state).  When
    constructed with ``model_path`` (a bundle or detector artifact JSON),
    the worker resolves the v3 sidecar next to it, validates the local file
    against the artifact's integrity header, and advertises the sidecar
    fingerprint during the handshake — enabling by-reference provisioning.

    Pipelined ``run`` requests on one connection execute on a small
    per-connection thread pool (``task_threads``, the GIL-releasing BLAS
    descent overlaps), replying as they finish — the multiplexed client
    matches responses by id, so ordering is free to differ.

    ``port=0`` binds an ephemeral port; read the actual one from
    ``address``.  ``start()`` serves on a background thread (tests);
    ``serve_forever()`` blocks (the CLI entrypoint).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        model_path: Optional[Union[str, Path]] = None,
        task_threads: Optional[int] = None,
        engine: Optional[str] = None,
    ) -> None:
        if task_threads is None:
            task_threads = min(8, _default_workers())
        self._task_threads = max(1, int(task_threads))
        if engine is not None:
            from repro.core import kernels

            kernels.check_engine(engine)
        #: Worker-local engine override: when set, every provisioned shard is
        #: re-stamped with this engine, letting an operator turn the fused
        #: kernel on (or pin numpy) per worker host regardless of what the
        #: coordinator's shards carry.  Resolution stays non-strict inside
        #: the shard, so a host without a kernel provider degrades to numpy
        #: instead of failing batches.
        self.engine = engine
        self.model_path = Path(model_path) if model_path is not None else None
        self.sidecar_path: Optional[Path] = None
        if self.model_path is not None:
            # Lazy import: repro.core.serialization imports repro.serving
            # modules, so a top-level import here would be circular.
            from repro.core.serialization import artifact_sidecar_header

            resolved = artifact_sidecar_header(self.model_path)
            if resolved is not None:
                sidecar_path, header = resolved
                if not sidecar_path.exists():
                    raise ServingError(
                        f"model artifact {self.model_path} records sidecar "
                        f"{sidecar_path.name}, but the file is missing — keep "
                        "the JSON + .npz pair together on the worker host"
                    )
                if not fingerprints_match(header, sidecar_fingerprint(sidecar_path)):
                    raise ServingError(
                        f"sidecar {sidecar_path} does not match the integrity "
                        f"header of {self.model_path}: the worker's artifact "
                        "copy is stale or corrupt — re-sync both files"
                    )
                self.sidecar_path = sidecar_path
        self._listener = socket.create_server((host, int(port)), reuse_port=False)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._lock = threading.Lock()
        self._clients: Set[socket.socket] = set()
        self._closed = False
        self._serving_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    def worker_info(self) -> Dict[str, object]:
        """The info dict advertised to coordinators during the handshake."""
        sidecar: Optional[Dict[str, object]] = None
        if self.sidecar_path is not None:
            try:
                sidecar = sidecar_fingerprint(self.sidecar_path)
            except (OSError, SerializationError):
                # File vanished or was corrupted since startup; the worker
                # must keep serving by value, not brick on every handshake.
                sidecar = None
        return {
            "pid": os.getpid(),
            "protocol": PROTOCOL_VERSION,
            # Role-scoped vocabulary advertisement (see the transport module
            # docstring): lets clients distinguish a shard worker from a
            # detection gateway before sending the first request.
            "role": "shard-worker",
            "ops": ("ping", "provision", "run"),
            "model": None if self.model_path is None else str(self.model_path),
            "sidecar": sidecar,
        }

    def serve_forever(self) -> None:
        """Accept coordinator connections until :meth:`shutdown`."""
        while True:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return  # listener closed by shutdown()
            with self._lock:
                if self._closed:
                    client.close()
                    return
                self._clients.add(client)
            # Daemon handler threads exit with their connection (shutdown
            # closes the sockets); nothing to track or join.
            threading.Thread(target=self._handle, args=(client,), daemon=True).start()

    def start(self) -> "ShardWorkerServer":
        """Serve on a daemon thread (in-process workers for tests/benchmarks)."""
        self._serving_thread = threading.Thread(
            target=self.serve_forever,
            name=f"repro-shard-worker-{self.address[1]}",
            daemon=True,
        )
        self._serving_thread.start()
        return self

    def shutdown(self) -> None:
        """Stop accepting and disconnect every coordinator."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            clients = list(self._clients)
            self._clients.clear()
        try:
            # close() alone does not wake a thread blocked in accept() on
            # Linux; shutdown() does, so serve_forever exits promptly.
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._listener.close()
        for client in clients:
            try:
                client.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            client.close()
        if self._serving_thread is not None:
            self._serving_thread.join(timeout=5.0)

    def __enter__(self) -> "ShardWorkerServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # ------------------------------------------------------------------ #
    def _handle(self, client: socket.socket) -> None:
        """Serve one coordinator connection until it closes.

        ``provision``/``ping`` are handled inline (a coordinator awaits the
        provision ack before dispatching tasks, so in-order handling keeps
        the epoch protocol trivially correct); ``run`` requests are executed
        on the connection's thread pool so pipelined shard tasks overlap,
        each reply sent under a lock as its task finishes.
        """
        send_lock = threading.Lock()

        def reply(request_id: object, payload: Dict[str, object]) -> None:
            try:
                with send_lock:
                    send_frame(client, {"id": request_id, **payload})
            except TransportError:
                pass  # coordinator went away; nothing left to say

        def execute(
            run_shards: Tuple[SubtreeShard, ...], frame: Dict[str, object]
        ) -> None:
            try:
                index = _frame_int(frame["shard"])
                if not 0 <= index < len(run_shards):
                    raise ServingError(
                        f"shard index {index} out of range "
                        f"(provisioned {len(run_shards)} shards)"
                    )
                result = run_shards[index].assign_entries(
                    np.asarray(frame["matrix"]), np.asarray(frame["entries"])
                )
            # repro-lint: disable=RPL007 -- worker reply path: the failure is
            # shipped back as an error frame and the coordinator re-raises it
            # as TransportError/ServingError; raising here would kill the
            # connection's task thread instead.
            except Exception as exc:
                reply(frame["id"], {"ok": False, "error": f"{type(exc).__name__}: {exc}"})
                return
            reply(frame["id"], {"ok": True, "result": result})

        # repro-lint: disable=RPL008 -- per-connection task pool of the worker
        # server, not a scoring backend: sized by the worker's --task-threads,
        # shut down with the connection in the finally below.
        pool = ThreadPoolExecutor(
            max_workers=self._task_threads, thread_name_prefix="repro-worker-task"
        )
        try:
            client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if not server_handshake(client, self.worker_info()):
                return
            shards: Tuple[SubtreeShard, ...] = ()
            epoch: Optional[int] = None
            while True:
                try:
                    frame = recv_frame(client)
                except TransportError:
                    return  # coordinator went away (or sent garbage)
                if not isinstance(frame, dict) or "id" not in frame or "op" not in frame:
                    return
                request_id = frame["id"]
                try:
                    operation = frame["op"]
                    if operation == "ping":
                        result: object = "pong"
                    elif operation == "provision":
                        shards = self._provisioned_shards(frame)
                        epoch = _frame_int(frame["epoch"])
                        result = {
                            "n_shards": len(shards),
                            "epoch": epoch,
                            "plan": self._resolved_plan(frame, shards),
                        }
                    elif operation == "run":
                        if epoch is None or _frame_int(frame["epoch"]) != epoch:
                            raise ServingError(
                                "connection is not provisioned for epoch "
                                f"{frame.get('epoch')!r} (worker holds "
                                f"{epoch!r}); provision before running tasks"
                            )
                        # Capture the current shard tuple: a later provision
                        # on this connection must not swap arrays under an
                        # in-flight task.
                        pool.submit(execute, shards, frame)
                        continue
                    else:
                        raise ServingError(f"unknown operation {operation!r}")
                # repro-lint: disable=RPL007 -- every failure becomes an error
                # reply frame; the coordinator re-raises it inside its own
                # ServingError surface.
                except Exception as exc:
                    reply(request_id, {"ok": False, "error": f"{type(exc).__name__}: {exc}"})
                    continue
                reply(request_id, {"ok": True, "result": result})
        except TransportError:
            pass  # handshake reply pipe broke
        finally:
            with self._lock:
                self._clients.discard(client)
            client.close()
            pool.shutdown(wait=True)

    def _provisioned_shards(self, frame: Dict[str, object]) -> Tuple[SubtreeShard, ...]:
        mode = frame.get("mode")
        states = frame.get("shards")
        if mode not in ("reference", "value") or not isinstance(states, list):
            raise ServingError(f"malformed provision request (mode={mode!r})")
        sidecar_path = None
        if mode == "reference":
            if self.sidecar_path is None:
                raise ServingError(
                    "this worker was started without a binary model artifact; "
                    "by-reference provisioning is impossible — restart it with "
                    "--model pointing at the v3 bundle, or let the coordinator "
                    "stream shards by value"
                )
            expected = frame.get("sidecar")
            if not isinstance(expected, dict):
                raise ServingError(
                    "by-reference provisioning needs the coordinator's sidecar "
                    "fingerprint; none was sent"
                )
            if not fingerprints_match(expected, sidecar_fingerprint(self.sidecar_path)):
                raise ServingError(
                    f"sidecar mismatch: this worker's {self.sidecar_path} does "
                    "not match the coordinator's artifact (size or per-member "
                    "CRC-32s differ) — refusing by-reference provisioning; "
                    "re-sync the model artifact to this host"
                )
            sidecar_path = self.sidecar_path
        engine = self._effective_engine(frame)
        restored: List[SubtreeShard] = []
        for state in states:
            state = dict(state)
            if engine is not None:
                # Stamp the effective engine into the wire state before the
                # shard object exists — each shard's per-call resolution then
                # degrades gracefully on hosts without a kernel provider.
                state["engine"] = engine
            restored.append(_shard_from_state(state, sidecar_path))
        return tuple(restored)

    def _effective_engine(self, frame: Dict[str, object]) -> Optional[str]:
        """The engine the provisioned shards should descend with.

        The worker-local ``--engine`` override wins; otherwise the engine of
        the coordinator's shipped :class:`ServingConfig` applies (``None``
        leaves the wire states untouched — they already carry whatever the
        coordinator stamped).
        """
        if self.engine is not None:
            return self.engine
        serving = frame.get("serving")
        if isinstance(serving, dict):
            engine = serving.get("engine")
            return engine if isinstance(engine, str) else None
        return None

    def _resolved_plan(
        self, frame: Dict[str, object], shards: Tuple[SubtreeShard, ...]
    ) -> Optional[Dict[str, object]]:
        """Resolve the shipped config on *this* host and return its plan dict.

        ``None`` when the coordinator sent no config (older coordinators).
        The worker-local engine override is folded in before resolution, and
        resolution is non-strict: a worker without the requested fused
        provider serves with numpy rather than refusing provisioning — the
        divergence is visible in the reported plan instead of fatal.
        """
        serving = frame.get("serving")
        if not isinstance(serving, dict):
            return None
        config = ServingConfig.from_dict(serving)
        if self.engine is not None:
            config = config.evolve(engine=self.engine)
        metric = shards[0].metric if shards else "euclidean"
        return config.resolve(metric=metric, strict=False).to_dict()
