"""Self-contained subtree shards of a compiled GHSOM.

A :class:`SubtreeShard` carries everything one worker needs to finish the
descent of the samples routed to it: its own codebook slice, local topology
arrays, its segment of the leaf table with per-leaf scoring tables, and the
``leaf_global_row`` remap that makes merged results indistinguishable from
the unsharded engine's.  Shards are plain dataclasses of ndarrays, so they
pickle cleanly into process-pool workers and share read-only pages across
forked ones.

Scoring inside a shard runs the exact
:func:`~repro.core.compiled.frontier_descent` loop of the unsharded engine —
same arithmetic, same per-node row grouping — which is what keeps the merged
output byte-identical.

When the source model was loaded from a v3 binary artifact, shard slicing
preserves the memory mapping: a shard whose subtrees form one contiguous run
keeps codebook/norm *views* into the single file mapping instead of copying
its slice, so a K-shard load maps the artifact once.  Shards also pickle
memmap-backed arrays **by reference** (``__getstate__`` swaps them for
``(path, dtype, shape, offset)`` descriptors; ``__setstate__`` re-opens the
mapping) — process-pool workers on spawn platforms re-open the sidecar
instead of receiving a serialized copy of the codebook.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro._typing import AnyArray
from repro.core import kernels
from repro.core.compiled import CompiledGhsom, frontier_descent
from repro.serving.planner import RootSubtree, ShardPlan
from repro.utils.mmapio import array_from_portable, array_to_portable


@dataclass(frozen=True, eq=False)
class SubtreeShard:
    """One shard: a group of root subtrees flattened into local arrays.

    Node, unit and leaf indices inside the shard are *local* (0-based over
    the shard's own arrays); ``leaf_global_row`` maps local leaf rows back to
    the global leaf table, and ``root_units`` / ``entry_local_node`` tell the
    router where each owned root unit's descent enters the shard.
    """

    shard_id: int
    metric: str
    n_features: int
    #: Global root-layer unit rows owned by this shard, with the local node
    #: index each one's descent enters at (parallel arrays).
    root_units: AnyArray
    entry_local_node: AnyArray
    #: Local flat-array hierarchy (same layout as ``CompiledGhsom``).
    node_offsets: AnyArray
    codebook: AnyArray
    child_of_unit: AnyArray
    leaf_of_unit: AnyArray
    unit_norms: AnyArray
    #: Local leaf row -> global leaf-table row.
    leaf_global_row: AnyArray
    #: Per-leaf scoring-table segments (present when the owning detector has
    #: them): a worker holding the shard can score to final ratios/labels
    #: without any global state.
    thresholds: Optional[AnyArray] = None
    labels: Optional[AnyArray] = None
    is_attack: Optional[AnyArray] = None
    purity: Optional[AnyArray] = None
    #: Compute engine for this shard's descents (``None`` = library default).
    #: Resolution is per call and *non-strict*: a shard pickled to a worker
    #: without a fused-kernel provider silently degrades to the numpy engine
    #: rather than failing the batch (the remote byte-identity contract only
    #: holds under the numpy default anyway).
    engine: Optional[str] = None

    @property
    def n_nodes(self) -> int:
        return int(self.node_offsets.shape[0] - 1)

    @property
    def n_units(self) -> int:
        return int(self.codebook.shape[0])

    @property
    def n_leaves(self) -> int:
        return int(self.leaf_global_row.shape[0])

    def __getstate__(self) -> Dict[str, object]:
        # Memmap-backed arrays travel as (path, dtype, shape, offset)
        # references — a worker re-opens the artifact mapping instead of
        # receiving the codebook bytes through the pickle stream.
        state: Dict[str, object] = {}
        for field_info in fields(self):
            value = getattr(self, field_info.name)
            state[field_info.name] = (
                array_to_portable(value) if isinstance(value, np.ndarray) else value
            )
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        for name, value in state.items():
            # repro-lint: disable=RPL005 -- rehydrating the frozen dataclass
            # from its portable pickle state; mirrors what __init__ would do.
            object.__setattr__(self, name, array_from_portable(value))

    def assign_entries(
        self, matrix: AnyArray, entry_nodes: AnyArray
    ) -> Tuple[AnyArray, AnyArray]:
        """Descend the shard for a routed sub-batch.

        ``matrix`` is the router-prepared sub-batch (already validated and
        cast to the serving dtype); ``entry_nodes`` holds each row's local
        entry node.  Returns local leaf rows plus distances in the serving
        dtype — the router remaps and widens them.
        """
        resolved = kernels.resolve_engine(
            self.engine, metric=self.metric, dtype=self.codebook.dtype
        )
        if resolved == "fused":
            # The shard itself is the kernel-plan cache key, so the lane
            # transposition of its codebook happens once per shard lifetime.
            return kernels.fused_descent(
                self,
                np.ascontiguousarray(matrix),
                np.ascontiguousarray(entry_nodes, dtype=np.int64),
                metric=self.metric,
            )
        return frontier_descent(
            matrix,
            entry_nodes,
            codebook=self.codebook,
            node_offsets=self.node_offsets,
            child_of_unit=self.child_of_unit,
            leaf_of_unit=self.leaf_of_unit,
            unit_norms=self.unit_norms,
            metric=self.metric,
        )


def build_shard(
    compiled: CompiledGhsom,
    shard_id: int,
    members: Sequence[RootSubtree],
    *,
    thresholds: Optional[AnyArray] = None,
    labels: Optional[AnyArray] = None,
    is_attack: Optional[AnyArray] = None,
    purity: Optional[AnyArray] = None,
    engine: Optional[str] = None,
) -> SubtreeShard:
    """Materialise one shard by slicing the compiled arrays.

    Every subtree is a contiguous run of nodes / units / leaf rows, so the
    shard's arrays are concatenations of slices with the node, unit and leaf
    indices remapped to the shard-local space.  The optional scoring tables
    are global ``(L,)`` arrays; the shard keeps only its own segments.
    """
    node_ranges = [(subtree.entry_node, subtree.node_stop) for subtree in members]
    local_nodes = np.concatenate(
        [np.arange(start, stop, dtype=np.intp) for start, stop in node_ranges]
    ) if members else np.empty(0, dtype=np.intp)
    node_map = np.full(compiled.n_nodes, -1, dtype=np.intp)
    node_map[local_nodes] = np.arange(local_nodes.size, dtype=np.intp)

    offsets = compiled.node_offsets
    unit_counts = offsets[local_nodes + 1] - offsets[local_nodes] if members else np.empty(0, dtype=np.intp)
    node_offsets = np.zeros(local_nodes.size + 1, dtype=np.intp)
    np.cumsum(unit_counts, out=node_offsets[1:])

    def gather_units(source: AnyArray) -> AnyArray:
        if not members:
            return np.empty((0,) + source.shape[1:], dtype=source.dtype)
        if len(members) == 1:
            # One contiguous run: keep the slice as a *view*.  For a
            # memmap-backed source this is what lets a K-shard load share the
            # single file mapping instead of copying K codebook slices.
            subtree = members[0]
            return source[subtree.unit_start : subtree.unit_stop]
        return np.concatenate(
            [source[subtree.unit_start : subtree.unit_stop] for subtree in members]
        )

    # Codebook slices stay row-contiguous, so per-node GEMM inputs are the
    # same contiguous blocks the unsharded engine feeds BLAS.  The
    # contiguity check (rather than an unconditional ascontiguousarray, whose
    # subok=False would downcast) keeps single-run slices of a memory-mapped
    # codebook as np.memmap views — shards of a v3 artifact then share the
    # one file mapping and pickle by reference.
    codebook = gather_units(compiled.codebook)
    if not codebook.flags["C_CONTIGUOUS"]:
        codebook = np.ascontiguousarray(codebook)
    unit_norms = gather_units(compiled.unit_norms)
    child_global = gather_units(compiled.child_of_unit)
    child_of_unit = np.where(child_global >= 0, node_map[child_global], -1)

    leaf_ranges = [(subtree.leaf_start, subtree.leaf_stop) for subtree in members]
    leaf_global_row = np.concatenate(
        [np.arange(start, stop, dtype=np.intp) for start, stop in leaf_ranges]
    ) if members else np.empty(0, dtype=np.intp)
    leaf_map = np.full(compiled.n_leaves, -1, dtype=np.intp)
    leaf_map[leaf_global_row] = np.arange(leaf_global_row.size, dtype=np.intp)
    leaf_global = gather_units(compiled.leaf_of_unit)
    leaf_of_unit = np.where(leaf_global >= 0, leaf_map[leaf_global], -1)

    def gather_leaves(table: Optional[AnyArray]) -> Optional[AnyArray]:
        if table is None:
            return None
        return np.asarray(table)[leaf_global_row]

    return SubtreeShard(
        shard_id=int(shard_id),
        metric=compiled.metric,
        n_features=compiled.n_features,
        root_units=np.array([subtree.root_unit for subtree in members], dtype=np.intp),
        entry_local_node=node_map[
            np.array([subtree.entry_node for subtree in members], dtype=np.intp)
        ] if members else np.empty(0, dtype=np.intp),
        node_offsets=node_offsets,
        codebook=codebook,
        child_of_unit=child_of_unit,
        leaf_of_unit=leaf_of_unit,
        unit_norms=unit_norms,
        leaf_global_row=leaf_global_row,
        thresholds=gather_leaves(thresholds),
        labels=gather_leaves(labels),
        is_attack=gather_leaves(is_attack),
        purity=gather_leaves(purity),
        engine=None if engine is None else str(engine),
    )


def build_shards(
    compiled: CompiledGhsom,
    plan: ShardPlan,
    *,
    thresholds: Optional[AnyArray] = None,
    labels: Optional[AnyArray] = None,
    is_attack: Optional[AnyArray] = None,
    purity: Optional[AnyArray] = None,
    engine: Optional[str] = None,
) -> Tuple[SubtreeShard, ...]:
    """Materialise every shard of a plan (see :func:`build_shard`)."""
    return tuple(
        build_shard(
            compiled,
            shard_id,
            plan.members_of(shard_id),
            thresholds=thresholds,
            labels=labels,
            is_attack=is_attack,
            purity=purity,
            engine=engine,
        )
        for shard_id in range(plan.n_shards)
    )
