"""Pluggable shard executors: serial, thread pool, process pool.

A backend runs a list of shard tasks — ``(shard_index, sub_matrix,
entry_nodes)`` triples — and returns their ``(local_leaf, distances)``
results in task order.  The router treats the three implementations
identically; they only trade off where the work happens:

* :class:`SerialBackend` — in-process loop; the zero-overhead baseline and
  the default for small models.
* :class:`ThreadPoolBackend` — one thread per in-flight shard.  The descent's
  hot operation is a BLAS GEMM, which releases the GIL, so shards genuinely
  overlap on multi-core machines with zero serialization cost.
* :class:`ProcessPoolBackend` — one OS process per worker.  Workers receive
  the (read-only) shard arrays once — inherited via fork where available, so
  the codebook pages are shared copy-on-write rather than copied — and only
  the routed sub-batches cross the process boundary per call.

Backends hold no shard state between calls except the lazily created pools;
``close()`` releases them (also invoked by the owning detector when sharding
is reconfigured).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.serving.shards import SubtreeShard

#: One shard task: (shard index, routed sub-batch, local entry nodes).
ShardTask = Tuple[int, np.ndarray, np.ndarray]
#: One shard result: (local leaf rows, distances in the serving dtype).
ShardResult = Tuple[np.ndarray, np.ndarray]


def _default_workers() -> int:
    """Worker count matching the usable cores (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without sched_getaffinity
        return max(1, os.cpu_count() or 1)


class ShardBackend:
    """Interface of a shard executor (the serial implementation)."""

    name = "serial"

    @property
    def workers(self) -> int:
        return 1

    def run(
        self, shards: Sequence[SubtreeShard], tasks: Sequence[ShardTask]
    ) -> List[ShardResult]:
        """Execute every task and return results in task order."""
        return [
            shards[index].assign_entries(matrix, entries)
            for index, matrix, entries in tasks
        ]

    def close(self) -> None:
        """Release any pooled resources (a no-op for the serial backend)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(workers={self.workers})"


class SerialBackend(ShardBackend):
    """Run shards one after another in the calling thread."""


class _PooledBackend(ShardBackend):
    """Shared pool lifecycle for the thread and process backends."""

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self._workers = int(workers) if workers is not None else _default_workers()
        self._pool: Optional[Executor] = None

    @property
    def workers(self) -> int:
        return self._workers

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "_PooledBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ThreadPoolBackend(_PooledBackend):
    """Run shards on a thread pool (BLAS releases the GIL during the GEMMs)."""

    name = "thread"

    def run(
        self, shards: Sequence[SubtreeShard], tasks: Sequence[ShardTask]
    ) -> List[ShardResult]:
        if len(tasks) <= 1:
            return ShardBackend.run(self, shards, tasks)
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._workers, thread_name_prefix="repro-shard"
            )
        futures = [
            self._pool.submit(shards[index].assign_entries, matrix, entries)
            for index, matrix, entries in tasks
        ]
        return [future.result() for future in futures]


# ---- process pool ---------------------------------------------------------- #
#: Shards visible inside process-pool workers, set once by the initializer.
#: Under a fork context the initargs travel to the child through inherited
#: (copy-on-write) memory — the shard arrays are shared, not pickled; under
#: spawn they are pickled exactly once per worker.
_WORKER_SHARDS: Optional[Tuple[SubtreeShard, ...]] = None


def _worker_init(shards: Tuple[SubtreeShard, ...]) -> None:
    global _WORKER_SHARDS
    _WORKER_SHARDS = shards


def _worker_run(index: int, matrix: np.ndarray, entries: np.ndarray) -> ShardResult:
    assert _WORKER_SHARDS is not None, "process-pool worker was not initialised"
    return _WORKER_SHARDS[index].assign_entries(matrix, entries)


class ProcessPoolBackend(_PooledBackend):
    """Run shards on a process pool with shared read-only shard arrays.

    The pool is (re)built whenever it is asked to serve a different shard
    tuple than the one its workers were initialised with, so a refitted or
    re-sharded detector never scores against stale worker state.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None) -> None:
        super().__init__(workers)
        self._pool_shards: Optional[Tuple[SubtreeShard, ...]] = None

    def _ensure_pool(self, shards: Sequence[SubtreeShard]) -> Executor:
        shards = tuple(shards)
        # Compare by identity: the router passes its own stable tuple, so a
        # different tuple means different arrays and stale workers.
        if self._pool is not None and self._pool_shards != shards:
            self.close()
        if self._pool is None:
            if "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            else:  # pragma: no cover - spawn-only platforms (Windows/macOS)
                context = multiprocessing.get_context()
            self._pool = ProcessPoolExecutor(
                max_workers=self._workers,
                mp_context=context,
                initializer=_worker_init,
                initargs=(shards,),
            )
            self._pool_shards = shards
        return self._pool

    def close(self) -> None:
        super().close()
        self._pool_shards = None

    def run(
        self, shards: Sequence[SubtreeShard], tasks: Sequence[ShardTask]
    ) -> List[ShardResult]:
        if not tasks:
            return []
        pool = self._ensure_pool(shards)
        futures = [
            pool.submit(_worker_run, index, matrix, entries)
            for index, matrix, entries in tasks
        ]
        return [future.result() for future in futures]


_BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadPoolBackend,
    "process": ProcessPoolBackend,
}


def make_backend(
    backend: Union[str, ShardBackend], workers: Optional[int] = None
) -> ShardBackend:
    """Resolve a backend name (or pass through an instance).

    ``workers`` only applies to the pooled backends; passing it alongside an
    already-constructed instance is rejected to avoid silently ignoring it.
    """
    if isinstance(backend, ShardBackend):
        if workers is not None:
            raise ConfigurationError(
                "workers cannot be overridden on an already-constructed backend"
            )
        return backend
    factory = _BACKENDS.get(str(backend))
    if factory is None:
        raise ConfigurationError(
            f"unknown shard backend {backend!r}; available: {sorted(_BACKENDS)}"
        )
    if factory is SerialBackend:
        if workers is not None and workers != 1:
            raise ConfigurationError("the serial backend always uses 1 worker")
        return SerialBackend()
    return factory(workers)
