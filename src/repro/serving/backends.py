"""Pluggable shard executors: serial, thread pool, process pool.

A backend runs a list of shard tasks — ``(shard_index, sub_matrix,
entry_nodes)`` triples — and returns their ``(local_leaf, distances)``
results in task order.  The router treats the three implementations
identically; they only trade off where the work happens:

* :class:`SerialBackend` — in-process loop; the zero-overhead baseline and
  the default for small models.
* :class:`ThreadPoolBackend` — one thread per in-flight shard.  The descent's
  hot operation is a BLAS GEMM, which releases the GIL, so shards genuinely
  overlap on multi-core machines with zero serialization cost.
* :class:`ProcessPoolBackend` — one OS process per worker.  Workers receive
  the (read-only) shard arrays once — inherited via fork where available, so
  the codebook pages are shared copy-on-write rather than copied — and only
  the routed sub-batches cross the process boundary per call.

Backends hold no shard state between calls except the lazily created pools;
``close()`` releases them (also invoked by the owning detector when sharding
is reconfigured).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro._typing import AnyArray
from repro.exceptions import ConfigurationError, ReproError, ServingError
from repro.serving.shards import SubtreeShard

if TYPE_CHECKING:  # circular at runtime: config builds backends via make_backend
    from repro.serving.config import ServingConfig

#: One shard task: (shard index, routed sub-batch, local entry nodes).
ShardTask = Tuple[int, AnyArray, AnyArray]
#: One shard result: (local leaf rows, distances in the serving dtype).
ShardResult = Tuple[AnyArray, AnyArray]


def _default_workers() -> int:
    """Worker count matching the usable cores (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without sched_getaffinity
        return max(1, os.cpu_count() or 1)


def same_shard_objects(
    previous: Optional[Tuple[SubtreeShard, ...]], current: Tuple[SubtreeShard, ...]
) -> bool:
    """Whether two shard tuples hold the *same objects* in the same order.

    The staleness rule shared by every provisioned backend (process pool,
    remote workers): element-wise identity.  Rebuilt-but-equal shards are
    different arrays and mean stale worker state (an ``==`` check would stop
    refreshing the day ``SubtreeShard`` grew an ``__eq__``), while a fresh
    list/tuple of the same shard objects is *not* stale and must not torch a
    warm pool.
    """
    return (
        previous is not None
        and len(previous) == len(current)
        and all(a is b for a, b in zip(previous, current, strict=True))
    )


class ShardBackend:
    """Interface of a shard executor (the serial implementation)."""

    name = "serial"

    @property
    def workers(self) -> int:
        return 1

    def run(
        self, shards: Sequence[SubtreeShard], tasks: Sequence[ShardTask]
    ) -> List[ShardResult]:
        """Execute every task and return results in task order."""
        return [
            shards[index].assign_entries(matrix, entries)
            for index, matrix, entries in tasks
        ]

    def close(self) -> None:
        """Release any pooled resources (a no-op for the serial backend)."""

    def configure_serving(self, config: "ServingConfig") -> None:
        """Receive the :class:`~repro.serving.config.ServingConfig` in force.

        Called by ``GhsomDetector.configure`` whenever this backend is (re)
        attached.  Local backends execute whatever shards they are handed, so
        the default is a no-op; the remote backend overrides this to ship the
        config to its workers at provisioning time.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(workers={self.workers})"


class SerialBackend(ShardBackend):
    """Run shards one after another in the calling thread."""


class _PooledBackend(ShardBackend):
    """Shared pool lifecycle for the thread and process backends."""

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self._workers = int(workers) if workers is not None else _default_workers()
        self._pool: Optional[Executor] = None

    @property
    def workers(self) -> int:
        return self._workers

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "_PooledBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _wrapped_failure(self, index: int, matrix: AnyArray, exc: Exception) -> ServingError:
        return ServingError(
            f"{self.name} shard backend failed while scoring shard "
            f"{index} ({matrix.shape[0]} records on "
            f"{self.workers} workers): {type(exc).__name__}: {exc}"
        )

    def _submit_all(
        self,
        tasks: Sequence[ShardTask],
        submit_one: "Callable[[ShardTask], Future[ShardResult]]",
    ) -> "List[Future[ShardResult]]":
        """Submit every task, wrapping *dispatch-time* pool failures.

        ``Executor.submit`` itself raises (e.g. ``BrokenProcessPool``) once a
        worker died mid-dispatch — that failure needs the same
        :class:`ServingError` surface and broken-pool cleanup as a failure
        surfacing through ``future.result()``, or the pool stays broken and
        every later ``run`` dies at submit time forever.
        """
        futures: List[Future[ShardResult]] = []
        try:
            for task in tasks:
                futures.append(submit_one(task))
        except Exception as exc:
            for future in futures:
                future.cancel()
            if isinstance(exc, BrokenExecutor):
                self.close()
            index, matrix, _ = tasks[len(futures)]
            raise self._wrapped_failure(index, matrix, exc) from exc
        return futures

    def _collect(
        self, tasks: Sequence[ShardTask], futures: "Sequence[Future[ShardResult]]"
    ) -> List[ShardResult]:
        """Gather futures in task order, wrapping worker failures.

        A raw ``future.result()`` surfaces pool internals — a bare
        ``BrokenProcessPool`` or a remote-formatted worker traceback with no
        hint of *which* shard died on *how much* data.  Library errors
        (:class:`ReproError`) pass through untouched; anything else is
        wrapped in a :class:`ServingError` naming the backend, the shard and
        the task size — the same error surface the remote backend's failover
        reports through.  A broken executor is closed so the next call
        rebuilds a fresh pool instead of failing forever.
        """
        results: List[ShardResult] = []
        try:
            for (index, matrix, _), future in zip(tasks, futures, strict=True):
                try:
                    results.append(future.result())
                except ReproError:
                    raise
                except Exception as exc:
                    raise self._wrapped_failure(index, matrix, exc) from exc
        except BaseException as error:
            for future in futures:
                future.cancel()
            exc_cause = error.__cause__
            if isinstance(error, BrokenExecutor) or isinstance(exc_cause, BrokenExecutor):
                self.close()
            raise
        return results


class ThreadPoolBackend(_PooledBackend):
    """Run shards on a thread pool (BLAS releases the GIL during the GEMMs)."""

    name = "thread"

    def run(
        self, shards: Sequence[SubtreeShard], tasks: Sequence[ShardTask]
    ) -> List[ShardResult]:
        if len(tasks) <= 1:
            # Inline fast path — same error surface as the pooled one.
            try:
                return ShardBackend.run(self, shards, tasks)
            except ReproError:
                raise
            except Exception as exc:
                index, matrix, _ = tasks[0]
                raise self._wrapped_failure(index, matrix, exc) from exc
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._workers, thread_name_prefix="repro-shard"
            )
        pool = self._pool
        futures = self._submit_all(
            tasks,
            lambda task: pool.submit(shards[task[0]].assign_entries, task[1], task[2]),
        )
        return self._collect(tasks, futures)


# ---- process pool ---------------------------------------------------------- #
#: Shards visible inside process-pool workers, set once by the initializer.
#: Under a fork context the initargs travel to the child through inherited
#: (copy-on-write) memory — the shard arrays are shared, not pickled; under
#: spawn they are pickled exactly once per worker.
_WORKER_SHARDS: Optional[Tuple[SubtreeShard, ...]] = None


def _worker_init(shards: Tuple[SubtreeShard, ...]) -> None:
    global _WORKER_SHARDS
    _WORKER_SHARDS = shards


def _worker_run(index: int, matrix: AnyArray, entries: AnyArray) -> ShardResult:
    assert _WORKER_SHARDS is not None, "process-pool worker was not initialised"
    return _WORKER_SHARDS[index].assign_entries(matrix, entries)


class ProcessPoolBackend(_PooledBackend):
    """Run shards on a process pool with shared read-only shard arrays.

    The pool is (re)built whenever it is asked to serve a different shard
    tuple than the one its workers were initialised with, so a refitted or
    re-sharded detector never scores against stale worker state.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None) -> None:
        super().__init__(workers)
        self._pool_shards: Optional[Tuple[SubtreeShard, ...]] = None

    def _ensure_pool(self, shards: Sequence[SubtreeShard]) -> Executor:
        current = tuple(shards)
        if self._pool is not None and not same_shard_objects(self._pool_shards, current):
            self.close()
        if self._pool is None:
            if "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            else:  # pragma: no cover - spawn-only platforms (Windows/macOS)
                context = multiprocessing.get_context()
            self._pool = ProcessPoolExecutor(
                max_workers=self._workers,
                mp_context=context,
                initializer=_worker_init,
                initargs=(current,),
            )
            self._pool_shards = current
        return self._pool

    def close(self) -> None:
        super().close()
        self._pool_shards = None

    def run(
        self, shards: Sequence[SubtreeShard], tasks: Sequence[ShardTask]
    ) -> List[ShardResult]:
        if not tasks:
            return []
        pool = self._ensure_pool(shards)
        futures = self._submit_all(
            tasks, lambda task: pool.submit(_worker_run, task[0], task[1], task[2])
        )
        return self._collect(tasks, futures)


_BACKENDS: Dict[str, Callable[..., ShardBackend]] = {
    "serial": SerialBackend,
    "thread": ThreadPoolBackend,
    "process": ProcessPoolBackend,
}
#: Backend names make_backend understands ("remote" resolves lazily — the
#: remote backend lives in its own module to keep this one socket-free).
BACKEND_NAMES = tuple(sorted(_BACKENDS)) + ("remote",)


def make_backend(
    backend: Union[str, ShardBackend], workers: Optional[int] = None
) -> ShardBackend:
    """Resolve a backend name (or pass through an instance).

    ``workers`` only applies to the pooled backends; passing it alongside an
    already-constructed instance is rejected to avoid silently ignoring it.
    The remote backend is addressed as ``"remote:HOST:PORT[,HOST:PORT...]"``
    (its worker count is the address list, so ``workers`` is rejected).
    """
    if isinstance(backend, ShardBackend):
        if workers is not None:
            raise ConfigurationError(
                "workers cannot be overridden on an already-constructed backend"
            )
        return backend
    name = str(backend)
    if name == "remote" or name.startswith("remote:"):
        if workers is not None:
            raise ConfigurationError(
                "the remote backend's worker count is its address list; "
                "drop workers= and list one HOST:PORT per worker"
            )
        spec = name.partition(":")[2]
        if not spec:
            raise ConfigurationError(
                "the remote backend needs worker addresses: pass "
                "'remote:HOST:PORT[,HOST:PORT...]' (CLI: --shard-backend "
                "remote --remote-workers HOST:PORT,...) or construct "
                "repro.serving.RemoteBackend directly"
            )
        from repro.serving.remote import RemoteBackend

        return RemoteBackend.from_spec(spec)
    factory = _BACKENDS.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown shard backend {backend!r}; available: {list(BACKEND_NAMES)}"
        )
    if factory is SerialBackend:
        if workers is not None and workers != 1:
            raise ConfigurationError("the serial backend always uses 1 worker")
        return SerialBackend()
    return factory(workers)
