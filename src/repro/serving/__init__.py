"""Sharded serving on the compiled flat arrays.

A fitted GHSOM is naturally partitionable: after the root-level BMU step a
sample's whole descent happens inside the subtree hanging off its root unit,
so the subtrees are independent **shards**.  This package turns that property
into a serving subsystem:

* :mod:`repro.serving.planner` — discovers the root subtrees of a
  :class:`~repro.core.compiled.CompiledGhsom` (each one a contiguous slice of
  the flat arrays) and balances them across ``K`` shards; the subtree layout
  is also what the v2 artifact stores as its *shard manifest*;
* :mod:`repro.serving.shards` — materialises each shard as a self-contained
  bundle of arrays (codebook slice, local topology, leaf-table segment,
  per-leaf scoring tables, global-leaf-row remap) that can score its
  sub-batches without the rest of the tree;
* :mod:`repro.serving.backends` — pluggable shard executors: serial, thread
  pool (BLAS releases the GIL) and process pool (fork-shared read-only
  arrays);
* :mod:`repro.serving.router` — :class:`ShardedGhsom`, which runs the root
  distance + argmin once, dispatches each sub-batch to its shard, and merges
  results back into input order;
* :mod:`repro.serving.transport` / :mod:`repro.serving.remote` — the
  distributed tier: a framed TCP protocol with multiplexed per-worker
  connections, :class:`RemoteBackend` (ships shard tasks to workers on other
  hosts, with by-reference or by-value shard provisioning and local
  failover) and :class:`ShardWorkerServer` (the ``repro-ids shard-worker``
  process);
* :mod:`repro.serving.gateway` — the async front door:
  :class:`DetectionGateway` (an asyncio TCP server that coalesces concurrent
  ``detect`` requests arriving within a few-ms tick into single
  :meth:`~repro.core.detector.GhsomDetector.detect` calls — the
  ``repro-ids serve`` process) and :class:`GatewayClient` (a multiplexed
  client whose answers are byte-identical to calling ``detect`` directly);
* :mod:`repro.serving.config` — the unified serving-configuration layer:
  :class:`ServingConfig` (one frozen, versioned, JSON-round-trippable
  description of dtype / engine / sharding / artifact options, embedded in
  v2+ artifacts and shipped to remote workers),
  :meth:`ServingConfig.resolve` → :class:`ServingPlan` (all
  environment-dependent resolution under one strict/degrade policy) and
  :class:`ServingStats` (per-batch stage timings on
  ``DetectionResult.stats``).

The merged output is **byte-identical** to the unsharded float64 engine: the
router replicates the root step of :meth:`CompiledGhsom.assign_arrays`
exactly, and shards descend via the same
:func:`~repro.core.compiled.frontier_descent` loop the unsharded engine uses
(see ``tests/test_serving_sharded.py`` for the property tests enforcing it).
"""

from repro.serving.backends import (
    ProcessPoolBackend,
    SerialBackend,
    ShardBackend,
    ThreadPoolBackend,
    make_backend,
)
from repro.serving.config import (
    CONFIG_VERSION,
    ArtifactOptions,
    ServingConfig,
    ServingPlan,
    ServingStats,
    ShardingSpec,
    effective_config,
    usable_workers,
)
from repro.serving.gateway import DetectionGateway, GatewayClient, GatewayResult
from repro.serving.planner import (
    RootSubtree,
    ShardPlan,
    manifest_from_compiled,
    plan_shards,
    subtrees_from_compiled,
    subtrees_from_manifest,
)
from repro.serving.remote import RemoteBackend, ShardWorkerServer
from repro.serving.router import ShardedGhsom
from repro.serving.shards import SubtreeShard, build_shards
from repro.serving.transport import (
    PROTOCOL_VERSION,
    TransportError,
    WorkerConnection,
    parse_address,
)

__all__ = [
    "ServingConfig",
    "ServingPlan",
    "ServingStats",
    "ShardingSpec",
    "ArtifactOptions",
    "effective_config",
    "usable_workers",
    "CONFIG_VERSION",
    "ShardBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "RemoteBackend",
    "ShardWorkerServer",
    "DetectionGateway",
    "GatewayClient",
    "GatewayResult",
    "WorkerConnection",
    "TransportError",
    "PROTOCOL_VERSION",
    "parse_address",
    "make_backend",
    "RootSubtree",
    "ShardPlan",
    "plan_shards",
    "subtrees_from_compiled",
    "subtrees_from_manifest",
    "manifest_from_compiled",
    "SubtreeShard",
    "build_shards",
    "ShardedGhsom",
]
