"""Shard planning: root-subtree discovery, balancing, and the shard manifest.

The compiled flat arrays (:class:`~repro.core.compiled.CompiledGhsom`) store
nodes in pre-order, so every subtree hanging off an internal root unit is a
*contiguous* run of node indices — and therefore a contiguous slice of the
stacked codebook, of the per-unit topology arrays, and of the leaf table.
:func:`subtrees_from_compiled` recovers those runs; :func:`plan_shards`
groups them into ``K`` balanced shards (longest-processing-time-first over
unit counts, the cost proxy for the per-level distance matmuls).

The subtree layout is partition-independent, which makes it the natural
**shard manifest** for the v2 model artifact: a worker holding the manifest
and the raw compiled-array payload can slice out exactly its shard without
ever materialising the full tree.  :func:`manifest_from_compiled` /
:func:`subtrees_from_manifest` are the two directions of that contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.compiled import CompiledGhsom
from repro.exceptions import ConfigurationError, SerializationError

#: Version marker of the manifest payload embedded in v2 artifacts.
MANIFEST_VERSION = 1


@dataclass(frozen=True)
class RootSubtree:
    """One root unit's subtree as contiguous slices of the flat arrays.

    Attributes
    ----------
    root_unit:
        Global unit row on the root layer (root-layer rows start at 0, so
        this is also the local unit index on the root map).
    entry_node:
        Node index of the child layer expanded from ``root_unit`` — where a
        routed sample starts its descent.
    node_stop:
        Nodes ``entry_node:node_stop`` form the subtree (pre-order
        contiguity).
    unit_start, unit_stop:
        The subtree's slice of the stacked codebook / per-unit arrays.
    leaf_start, leaf_stop:
        The subtree's segment of the global leaf table.
    """

    root_unit: int
    entry_node: int
    node_stop: int
    unit_start: int
    unit_stop: int
    leaf_start: int
    leaf_stop: int

    @property
    def n_nodes(self) -> int:
        return self.node_stop - self.entry_node

    @property
    def n_units(self) -> int:
        return self.unit_stop - self.unit_start

    @property
    def n_leaves(self) -> int:
        return self.leaf_stop - self.leaf_start


def subtrees_from_compiled(compiled: CompiledGhsom) -> Tuple[RootSubtree, ...]:
    """Discover the root subtrees of a compiled model from its flat arrays.

    Returns one :class:`RootSubtree` per *internal* root unit, in root-unit
    order.  Root units that are leaves have no subtree — the router resolves
    them during the root step itself.  A depth-1 tree yields an empty tuple.
    """
    offsets = compiled.node_offsets
    n_nodes = compiled.n_nodes
    # Pre-order subtree extents: a node's subtree is [i, subtree_stop[i]).
    # Children always carry larger indices than their parent, so a reverse
    # sweep sees every child's extent before the parent needs it.
    subtree_stop = np.arange(1, n_nodes + 1, dtype=np.intp)
    for node in range(n_nodes - 1, -1, -1):
        children = compiled.child_of_unit[int(offsets[node]) : int(offsets[node + 1])]
        for child in children[children >= 0]:
            subtree_stop[node] = max(subtree_stop[node], subtree_stop[child])
    n_root_units = int(offsets[1])
    leaf_node = compiled.leaf_node
    subtrees: List[RootSubtree] = []
    for unit in range(n_root_units):
        entry = int(compiled.child_of_unit[unit])
        if entry < 0:
            continue
        stop = int(subtree_stop[entry])
        subtrees.append(
            RootSubtree(
                root_unit=unit,
                entry_node=entry,
                node_stop=stop,
                unit_start=int(offsets[entry]),
                unit_stop=int(offsets[stop]),
                # Leaf rows are assigned in node order, so a contiguous node
                # range owns a contiguous leaf-table segment.
                leaf_start=int(np.searchsorted(leaf_node, entry, side="left")),
                leaf_stop=int(np.searchsorted(leaf_node, stop, side="left")),
            )
        )
    return tuple(subtrees)


@dataclass(frozen=True)
class ShardPlan:
    """A balanced assignment of root subtrees to shards.

    ``assignment[i]`` is the shard id of ``subtrees[i]``; ``n_shards`` is the
    *effective* shard count (never more than the number of subtrees, so every
    shard has work).
    """

    n_shards: int
    subtrees: Tuple[RootSubtree, ...]
    assignment: Tuple[int, ...]

    def members_of(self, shard_id: int) -> Tuple[RootSubtree, ...]:
        """The subtrees assigned to one shard, in discovery order."""
        return tuple(
            subtree
            for subtree, shard in zip(self.subtrees, self.assignment, strict=True)
            if shard == shard_id
        )

    def describe(self) -> Dict[str, object]:
        """Balance summary (used by the benchmark harness and docs)."""
        unit_loads = [0] * self.n_shards
        leaf_loads = [0] * self.n_shards
        for subtree, shard in zip(self.subtrees, self.assignment, strict=True):
            unit_loads[shard] += subtree.n_units
            leaf_loads[shard] += subtree.n_leaves
        return {
            "n_shards": self.n_shards,
            "n_subtrees": len(self.subtrees),
            "units_per_shard": unit_loads,
            "leaves_per_shard": leaf_loads,
            "unit_balance": (
                min(unit_loads) / max(unit_loads) if self.n_shards and max(unit_loads) else 1.0
            ),
        }


def plan_shards(
    source: CompiledGhsom,
    n_shards: int,
    *,
    subtrees: Optional[Sequence[RootSubtree]] = None,
) -> ShardPlan:
    """Partition a compiled model's root subtrees into ``n_shards`` shards.

    ``source`` is a :class:`CompiledGhsom` (``subtrees`` may be passed
    explicitly when they were already recovered, e.g. from an artifact's
    shard manifest).  Balancing is greedy longest-processing-time-first on
    unit counts: subtrees are assigned, largest first, to the currently
    lightest shard.  The effective shard count is clamped to the number of
    subtrees; asking for more shards than subtrees is not an error.
    """
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    layout = tuple(subtrees) if subtrees is not None else subtrees_from_compiled(source)
    effective = min(int(n_shards), len(layout)) if layout else 0
    assignment = [0] * len(layout)
    if effective:
        loads = [0] * effective
        order = sorted(
            range(len(layout)), key=lambda i: layout[i].n_units, reverse=True
        )
        for index in order:
            shard = min(range(effective), key=loads.__getitem__)
            assignment[index] = shard
            loads[shard] += layout[index].n_units
    return ShardPlan(
        n_shards=effective, subtrees=layout, assignment=tuple(assignment)
    )


# --------------------------------------------------------------------------- #
# manifest (stored inside v2 artifacts)
# --------------------------------------------------------------------------- #
_MANIFEST_FIELDS = (
    "root_unit",
    "entry_node",
    "node_stop",
    "unit_start",
    "unit_stop",
    "leaf_start",
    "leaf_stop",
)


def manifest_from_compiled(compiled: CompiledGhsom) -> Dict[str, object]:
    """The JSON-compatible shard manifest of a compiled model.

    Stores the partition-independent subtree layout plus the root-layer
    summary a router needs, so ``load_bundle(shards=K)`` can plan and slice
    worker shards straight from the artifact payload.
    """
    subtrees = subtrees_from_compiled(compiled)
    return {
        "version": MANIFEST_VERSION,
        "n_root_units": int(compiled.node_offsets[1]),
        "n_leaves": compiled.n_leaves,
        "n_units": compiled.n_units,
        "root_subtrees": [
            {field: getattr(subtree, field) for field in _MANIFEST_FIELDS}
            for subtree in subtrees
        ],
    }


def subtrees_from_manifest(manifest: Dict[str, object]) -> Tuple[RootSubtree, ...]:
    """Rebuild the subtree layout from a stored shard manifest."""
    version = manifest.get("version")
    if version != MANIFEST_VERSION:
        raise SerializationError(f"unsupported shard manifest version {version!r}")
    entries = manifest.get("root_subtrees")
    if not isinstance(entries, list):
        raise SerializationError("shard manifest is missing its root_subtrees list")
    subtrees: List[RootSubtree] = []
    for entry in entries:
        if not isinstance(entry, dict):
            raise SerializationError(f"malformed shard manifest entry: {entry!r}")
        subtrees.append(
            RootSubtree(**{field: int(entry[field]) for field in _MANIFEST_FIELDS})
        )
    return tuple(subtrees)
