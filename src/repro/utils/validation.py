"""Input validation helpers shared across the library.

These functions normalise user input into well-formed numpy arrays and raise
:class:`~repro.exceptions.DataValidationError` with a descriptive message when
the input cannot be used.  Centralising the checks keeps model code focused on
the algorithm rather than on defensive programming.
"""

from __future__ import annotations

from typing import Optional, Sequence, Sized

import numpy as np
import numpy.typing as npt

from repro._typing import AnyArray
from repro.exceptions import DataValidationError


def check_array_2d(
    data: object,
    name: str = "X",
    *,
    min_rows: int = 1,
    min_cols: int = 1,
    allow_nan: bool = False,
    dtype: Optional[npt.DTypeLike] = None,
) -> AnyArray:
    """Validate ``data`` as a 2-D float array and return a contiguous copy.

    Parameters
    ----------
    data:
        Anything convertible to a 2-D numpy array of floats.
    name:
        Name used in error messages.
    min_rows, min_cols:
        Minimum acceptable shape.
    allow_nan:
        When ``False`` (the default) NaN or infinite values raise an error.
    dtype:
        Target floating dtype (default float64).  Passing the serving dtype
        here converts the input exactly once; hot paths can then hand the
        result straight to BLAS / the fused kernel with no further
        ``ascontiguousarray`` round-trips.
    """
    try:
        array = np.asarray(data, dtype=float if dtype is None else dtype)
    except (TypeError, ValueError) as exc:
        raise DataValidationError(f"{name} could not be converted to a float array: {exc}") from exc
    if array.ndim == 1:
        array = array.reshape(1, -1)
    if array.ndim != 2:
        raise DataValidationError(f"{name} must be 2-dimensional, got shape {array.shape}")
    rows, cols = array.shape
    if rows < min_rows:
        raise DataValidationError(f"{name} must have at least {min_rows} row(s), got {rows}")
    if cols < min_cols:
        raise DataValidationError(f"{name} must have at least {min_cols} column(s), got {cols}")
    if not allow_nan and not np.all(np.isfinite(array)):
        raise DataValidationError(f"{name} contains NaN or infinite values")
    return np.ascontiguousarray(array)


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Validate that ``value`` is a positive (or non-negative) finite number."""
    try:
        number = float(value)
    except (TypeError, ValueError) as exc:
        raise DataValidationError(f"{name} must be a number, got {value!r}") from exc
    if not np.isfinite(number):
        raise DataValidationError(f"{name} must be finite, got {number}")
    if strict and number <= 0:
        raise DataValidationError(f"{name} must be > 0, got {number}")
    if not strict and number < 0:
        raise DataValidationError(f"{name} must be >= 0, got {number}")
    return number


def check_fraction(value: float, name: str, *, inclusive: bool = True) -> float:
    """Validate that ``value`` lies in ``[0, 1]`` (or ``(0, 1)`` when exclusive)."""
    number = float(value)
    if inclusive:
        if not 0.0 <= number <= 1.0:
            raise DataValidationError(f"{name} must be in [0, 1], got {number}")
    else:
        if not 0.0 < number < 1.0:
            raise DataValidationError(f"{name} must be in (0, 1), got {number}")
    return number


def check_probability_vector(values: Sequence[float], name: str = "probabilities") -> AnyArray:
    """Validate and renormalise a vector of non-negative weights.

    The vector must contain at least one strictly positive entry; it is
    returned normalised to sum to one.
    """
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise DataValidationError(f"{name} must be 1-dimensional, got shape {array.shape}")
    if array.size == 0:
        raise DataValidationError(f"{name} must not be empty")
    if np.any(array < 0) or not np.all(np.isfinite(array)):
        raise DataValidationError(f"{name} must contain finite non-negative values")
    total = array.sum()
    if total <= 0:
        raise DataValidationError(f"{name} must have a positive sum")
    return array / total


def check_same_length(
    first: Sized, second: Sized, first_name: str = "X", second_name: str = "y"
) -> None:
    """Raise if two sequences have different lengths."""
    if len(first) != len(second):
        raise DataValidationError(
            f"{first_name} and {second_name} must have the same length; "
            f"got {len(first)} and {len(second)}"
        )
