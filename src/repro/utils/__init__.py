"""Small shared utilities: RNG handling, validation helpers and timers."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timer import Stopwatch, timed
from repro.utils.validation import (
    check_array_2d,
    check_fraction,
    check_positive,
    check_probability_vector,
    check_same_length,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Stopwatch",
    "timed",
    "check_array_2d",
    "check_fraction",
    "check_positive",
    "check_probability_vector",
    "check_same_length",
]
