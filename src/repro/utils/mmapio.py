"""Binary array I/O for model artifacts: atomic ``.npz`` writes + mmap reads.

The v3 artifact format (:mod:`repro.core.serialization`) stores its compiled
arrays in an ``.npz``-style sidecar next to the JSON metadata file.  This
module owns the three mechanics that make the sidecar useful:

* :func:`atomic_write` — the shared temp-file + fsync + ``os.replace``
  discipline used for *every* artifact file (JSON and binary alike), so a
  crash mid-write can never leave a truncated file under the target name;
* :func:`write_npz_atomic` — an uncompressed ``.npz`` writer built on
  :func:`atomic_write` that also returns the byte count and SHA-256 of the
  finished file (recorded as the integrity header in the owning JSON);
* :func:`mmap_npz` — a memory-mapping ``.npz`` reader.  ``np.load(...,
  mmap_mode="r")`` silently ignores ``mmap_mode`` for zip files and reads
  every member eagerly, so this reader walks the zip directory itself
  (O(members), no array data touched), locates each member's ``.npy`` data
  and hands back read-only :class:`numpy.memmap` views into the *one* shared
  file mapping.  Cold load cost is therefore O(metadata); array pages fault
  in on first use.

Memory-mapped arrays additionally pickle *by reference*
(:func:`array_to_portable` / :func:`array_from_portable`): instead of
materialising the bytes into the pickle stream, the portable form records
``(path, dtype, shape, file offset)`` and the receiving process re-opens the
mapping — this is how process-pool shard workers share a v3 codebook without
ever copying it.
"""

from __future__ import annotations

import hashlib
import io
import mmap as _mmap
import os
import struct
import tempfile
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Callable, Dict, Optional, Tuple, Union

import numpy as np

from repro._typing import AnyArray
from repro.exceptions import SerializationError

PathLike = Union[str, Path]

#: Local-file-header magic of a zip member (PKZIP spec section 4.3.7).
_ZIP_LOCAL_MAGIC = b"PK\x03\x04"
#: Fixed size of a zip local file header, before the variable name/extra.
_ZIP_LOCAL_HEADER_SIZE = 30

#: ``.npy`` header readers by format version (3.0 headers — non-latin field
#: names — never occur for our fixed array names; unknown versions fall back
#: to an eager read of that member).
_NPY_HEADER_READERS = {
    (1, 0): np.lib.format.read_array_header_1_0,
    (2, 0): np.lib.format.read_array_header_2_0,
}

#: Alignment (bytes) of every member's array data within the sidecar file,
#: matching numpy's own ``ARRAY_ALIGN``.  Mapped pages are page-aligned, so
#: file alignment is pointer alignment — and BLAS kernels produce *bitwise
#: different* GEMM results for buffers misaligned below the element size
#: (observed on OpenBLAS), which would silently break the byte-identity
#: contract of v3 artifacts.  Writers pad; the reader refuses to map
#: sub-element-aligned data (falling back to an eager copy).
_DATA_ALIGN = 64

#: Extra-field tag carrying the alignment padding (TLV form keeps the zip
#: well-formed for ordinary readers; the id is from the private-use range).
_PAD_EXTRA_ID = 0x7061


# --------------------------------------------------------------------------- #
# atomic writes (shared by JSON and binary artifact files)
# --------------------------------------------------------------------------- #
def atomic_write(path: PathLike, write: Callable[[IO[Any]], None], *, binary: bool = False) -> None:
    """Write a file via a same-directory temp file + fsync + rename.

    ``write`` receives the open temp-file stream and must write the complete
    payload to it.  ``os.replace`` is atomic on POSIX and Windows for
    same-filesystem moves, so readers only ever observe the old file or the
    complete new one — never a truncated artifact from a crash mid-write.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        # mkstemp creates 0600 files; widen so the artifact stays readable by
        # the same set of users as before (train as one user, serve as
        # another).  An existing target keeps its mode; new files get the
        # conventional 0644.  (Probing the umask via os.umask() would mutate
        # process-global state and race with other threads.)
        try:
            mode = path.stat().st_mode & 0o777
        except FileNotFoundError:
            mode = 0o644
        os.chmod(tmp_name, mode)
        # mkstemp opens the descriptor O_RDWR, so binary writers get a
        # readable handle back (write_npz_atomic re-reads to hash the bytes).
        with os.fdopen(handle, "r+b" if binary else "w") as stream:
            write(stream)
            # Flush user- and OS-level buffers before the rename: without the
            # fsync, a system crash shortly after os.replace can persist the
            # rename but not the data on some filesystems, leaving exactly
            # the truncated artifact this function promises to prevent.
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def write_npz_atomic(arrays: Dict[str, AnyArray], path: PathLike) -> Dict[str, object]:
    """Write ``arrays`` as an uncompressed ``.npz`` file, atomically.

    Members are stored uncompressed (``ZIP_STORED``) so :func:`mmap_npz` can
    map them directly; pickled (object-dtype) arrays are rejected.  Returns
    the integrity header of the finished file: ``{"bytes": ..., "sha256":
    ..., "crc32": {member: ...}}`` — computed from the temp file before the
    rename, so the header describes exactly the bytes that land under
    ``path``.  The per-member CRC-32s give readers a content check that is
    free at open time (they live in the zip directory, which the reader
    parses anyway), catching a same-size sidecar that does not belong to
    the JSON header without hashing the whole file.
    """
    digest: Dict[str, object] = {}

    def write(stream: IO[Any]) -> None:
        crc32: Dict[str, int] = {}
        with zipfile.ZipFile(stream, "w", zipfile.ZIP_STORED) as archive:
            for name, array in arrays.items():
                array = np.ascontiguousarray(array)
                if array.dtype.hasobject:
                    raise SerializationError(
                        f"array {name!r} has object dtype and cannot be stored "
                        "in a binary sidecar"
                    )
                buffer = io.BytesIO()
                np.lib.format.write_array(buffer, array, allow_pickle=False)
                payload = buffer.getvalue()
                buffer.seek(0)
                version = np.lib.format.read_magic(buffer)
                header_reader = _NPY_HEADER_READERS.get(version)
                npy_header_size = 0
                if header_reader is not None:
                    header_reader(buffer)
                    npy_header_size = buffer.tell()
                member_name = f"{name}.npy"
                # ZipInfo defaults (epoch timestamp) keep artifact bytes fully
                # deterministic: same arrays in, same sidecar bytes (and
                # sha256) out — which is what lets golden fixtures pin them.
                info = zipfile.ZipInfo(member_name)
                info.compress_type = zipfile.ZIP_STORED
                info.external_attr = 0o644 << 16
                if npy_header_size:
                    data_start = (
                        stream.tell()
                        + _ZIP_LOCAL_HEADER_SIZE
                        + len(member_name.encode("utf-8"))
                        + npy_header_size
                    )
                    padding = (-data_start) % _DATA_ALIGN
                    if 0 < padding < 4:  # a TLV extra field needs 4 header bytes
                        padding += _DATA_ALIGN
                    if padding:
                        info.extra = struct.pack(
                            "<HH", _PAD_EXTRA_ID, padding - 4
                        ) + bytes(padding - 4)
                archive.writestr(info, payload)
                crc32[name] = int(archive.getinfo(member_name).CRC)
        stream.flush()
        stream.seek(0)
        checksum = hashlib.sha256()
        for chunk in iter(lambda: stream.read(1 << 20), b""):
            checksum.update(chunk)
        digest["bytes"] = stream.tell()
        digest["sha256"] = checksum.hexdigest()
        digest["crc32"] = crc32

    atomic_write(path, write, binary=True)
    return digest


def sha256_of_file(path: PathLike) -> str:
    """SHA-256 hex digest of a file's contents (streamed, constant memory)."""
    checksum = hashlib.sha256()
    with open(path, "rb") as stream:
        for chunk in iter(lambda: stream.read(1 << 20), b""):
            checksum.update(chunk)
    return checksum.hexdigest()


# --------------------------------------------------------------------------- #
# mmap-backed reads
# --------------------------------------------------------------------------- #
def _member_data_offset(stream: IO[bytes], info: zipfile.ZipInfo) -> int:
    """File offset of a stored zip member's raw data.

    The local file header repeats the name and may carry a *different* extra
    field than the central directory entry, so the offset must be computed
    from the local header itself, not from ``ZipInfo`` lengths.
    """
    stream.seek(info.header_offset)
    header = stream.read(_ZIP_LOCAL_HEADER_SIZE)
    if len(header) != _ZIP_LOCAL_HEADER_SIZE or header[:4] != _ZIP_LOCAL_MAGIC:
        raise SerializationError(
            f"sidecar member {info.filename!r} has a corrupt local zip header"
        )
    name_length = int.from_bytes(header[26:28], "little")
    extra_length = int.from_bytes(header[28:30], "little")
    return info.header_offset + _ZIP_LOCAL_HEADER_SIZE + name_length + extra_length


def mmap_npz(path: PathLike) -> Dict[str, AnyArray]:
    """Load an uncompressed ``.npz`` as read-only memory-mapped arrays.

    Only the zip directory and the (tiny) per-member ``.npy`` headers are
    read eagerly.  The file is mapped exactly **once** (one ``mmap`` call
    for the whole sidecar, not one per member) and every returned array is a
    :class:`numpy.memmap` view into that single mapping, so array pages are
    faulted in on first access and consumers holding any number of member
    arrays or slices share the same physical pages.  Members this reader
    cannot map (compressed, Fortran-ordered, unaligned, or an unknown
    ``.npy`` header version) fall back to an eager in-memory read — the
    result is always a complete ``{name: array}`` mapping.
    """
    path = Path(path)
    arrays: Dict[str, AnyArray] = {}
    whole: Optional[AnyArray] = None
    try:
        with zipfile.ZipFile(path) as archive, open(path, "rb") as stream:
            for info in archive.infolist():
                name = info.filename
                if not name.endswith(".npy"):
                    raise SerializationError(
                        f"unexpected member {name!r} in binary sidecar {path}"
                    )
                key = name[: -len(".npy")]
                if info.compress_type != zipfile.ZIP_STORED:
                    arrays[key] = _eager_member(archive, name)
                    continue
                offset = _member_data_offset(stream, info)
                stream.seek(offset)
                version = np.lib.format.read_magic(stream)
                reader = _NPY_HEADER_READERS.get(version)
                if reader is None:
                    arrays[key] = _eager_member(archive, name)
                    continue
                shape, fortran_order, dtype = reader(stream)
                if fortran_order or dtype.hasobject:
                    arrays[key] = _eager_member(archive, name)
                    continue
                data_offset = stream.tell()
                n_items = int(np.prod(shape))
                if n_items == 0:
                    # A zero-length window carries no data to share anyway.
                    arrays[key] = np.empty(shape, dtype=dtype)
                    continue
                if data_offset % max(dtype.itemsize, 1):
                    # Sub-element-aligned data (a sidecar not written by
                    # write_npz_atomic): mapping it would hand BLAS a
                    # misaligned buffer, whose GEMM results differ bitwise
                    # from aligned ones.  Copy instead of silently breaking
                    # the byte-identity contract.
                    arrays[key] = _eager_member(archive, name)
                    continue
                if whole is None:
                    whole = np.memmap(path, dtype=np.uint8, mode="r")
                data = whole[data_offset : data_offset + n_items * dtype.itemsize]
                # view + reshape keep the np.memmap subclass (and with it the
                # by-reference pickling of downstream slices).
                arrays[key] = data.view(dtype).reshape(shape)
    except zipfile.BadZipFile as exc:
        raise SerializationError(f"binary sidecar {path} is not a valid npz file: {exc}") from exc
    return arrays


def _eager_member(archive: zipfile.ZipFile, name: str) -> AnyArray:
    with archive.open(name) as member:
        return np.lib.format.read_array(member, allow_pickle=False)


def npz_member_crcs(path: PathLike) -> Dict[str, int]:
    """Per-member CRC-32s straight from the zip directory.

    Costs one directory parse and touches no array data, so callers can
    check sidecar content against a stored header on *every* load — cheap
    enough to catch a same-size sidecar swap without hashing the file.
    """
    path = Path(path)
    try:
        with zipfile.ZipFile(path) as archive:
            return {
                info.filename[: -len(".npy")]: int(info.CRC)
                for info in archive.infolist()
                if info.filename.endswith(".npy")
            }
    except zipfile.BadZipFile as exc:
        raise SerializationError(f"binary sidecar {path} is not a valid npz file: {exc}") from exc


def npz_member_offsets(path: PathLike) -> Dict[str, int]:
    """Absolute file offset of each member's raw data (zip-directory parse).

    Same cost class as :func:`npz_member_crcs`.  Used to pin the member
    *layout* of a sidecar, not just its content: two files with identical
    members in a different order share every CRC-32 and possibly the total
    size, yet any byte-offset taken against one maps garbage in the other.
    """
    path = Path(path)
    try:
        with zipfile.ZipFile(path) as archive, open(path, "rb") as stream:
            return {
                info.filename[: -len(".npy")]: _member_data_offset(stream, info)
                for info in archive.infolist()
                if info.filename.endswith(".npy")
            }
    except zipfile.BadZipFile as exc:
        raise SerializationError(f"binary sidecar {path} is not a valid npz file: {exc}") from exc


def sidecar_fingerprint(path: PathLike) -> Dict[str, object]:
    """Cheap content + layout fingerprint of a binary sidecar.

    Size and per-member CRC-32s are the same checks
    :func:`repro.core.serialization.open_sidecar` runs on every load (one
    ``stat`` plus the zip-directory parse); the per-member data offsets
    additionally pin the file *layout*.  The distributed-serving coordinator
    sends this with a by-reference shard provisioning request and the remote
    worker compares it against its *own* copy of the sidecar before mapping
    any region — the region descriptors on the wire are absolute byte
    offsets, which are only meaningful if the worker's members sit at the
    same offsets with the same bytes (a re-packed zip with reordered members
    can preserve size and every CRC while moving the data).
    """
    path = Path(path)
    return {
        "bytes": int(path.stat().st_size),
        "crc32": npz_member_crcs(path),
        "offsets": npz_member_offsets(path),
    }


def fingerprints_match(expected: Dict[str, object], local: Dict[str, object]) -> bool:
    """Whether two sidecar fingerprints describe byte-identical files.

    The single comparison rule for every fingerprint check (coordinator
    choosing by-reference provisioning, worker validating its artifact copy
    at startup and per provision request): sizes equal, per-member CRC-32s
    equal, and — when both sides carry them — member data offsets equal.
    Offsets are optional because v3 artifact *headers* predate them (content
    checks only); both ends of the provisioning exchange compute
    :func:`sidecar_fingerprint` directly, so layout is always pinned where
    region offsets actually cross the wire.  Values are normalised through
    ``int`` because one side may have crossed JSON.
    """

    def normalised(payload: Dict[str, object], key: str) -> Optional[Dict[str, int]]:
        table = payload.get(key)
        if table is None:
            return None
        if not isinstance(table, dict):
            raise TypeError(f"fingerprint field {key!r} is not a mapping")
        return {str(name): _as_int(value) for name, value in table.items()}

    try:
        if _as_int(expected.get("bytes", -1)) != _as_int(local.get("bytes", -2)):
            return False
        if normalised(expected, "crc32") != normalised(local, "crc32"):
            return False
        expected_offsets = normalised(expected, "offsets")
        local_offsets = normalised(local, "offsets")
        if expected_offsets is not None and local_offsets is not None:
            return expected_offsets == local_offsets
        return True
    except (TypeError, ValueError):
        return False


def _as_int(value: object) -> int:
    """``int()`` for values that may have crossed JSON (raises on non-numbers)."""
    if isinstance(value, bool) or not isinstance(value, (int, float, str, np.integer)):
        raise TypeError(f"expected an integer-like value, got {value!r}")
    return int(value)


def load_npz(path: PathLike) -> Dict[str, AnyArray]:
    """Eagerly load every array of an ``.npz`` file into memory."""
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as payload:
            return {name: payload[name] for name in payload.files}
    except (zipfile.BadZipFile, ValueError, OSError) as exc:
        raise SerializationError(f"could not read binary sidecar {path}: {exc}") from exc


# --------------------------------------------------------------------------- #
# pickling memory-mapped arrays by reference
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class MmapRef:
    """Portable reference to a contiguous region of a memory-mapped file.

    The pickled form of a memmap-backed array: a few dozen bytes instead of
    the array data.  ``restore`` re-opens the mapping read-only, so every
    process holding the reference shares the same physical pages.  The file
    must still exist *and still be the same file* at restore time: artifact
    files are replaced atomically (never mutated in place), so a reference
    stays valid exactly as long as its artifact version remains on disk —
    and ``restore`` checks the recorded byte count so a reference into a
    since-replaced artifact fails loudly instead of silently mapping the
    new file's bytes.
    """

    path: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int
    #: Size of the whole file when the reference was taken (identity check).
    file_bytes: int
    #: ``(st_ino, st_mtime_ns)`` at reference time: artifacts are replaced
    #: atomically (new inode), so this catches even a same-size replacement.
    file_id: Optional[Tuple[int, int]] = None

    def restore(self) -> AnyArray:
        try:
            status = os.stat(self.path)
            changed = status.st_size != self.file_bytes or (
                self.file_id is not None
                and (status.st_ino, status.st_mtime_ns) != tuple(self.file_id)
            )
            if changed:
                raise SerializationError(
                    f"memory-mapped artifact {self.path} changed on disk "
                    "(size or file identity differs from when this reference "
                    "was taken): the artifact was replaced; reload it instead "
                    "of restoring stale references"
                )
            return np.memmap(
                self.path,
                dtype=np.dtype(self.dtype),
                mode="r",
                offset=self.offset,
                shape=tuple(self.shape),
            )
        except (OSError, ValueError) as exc:
            raise SerializationError(
                f"could not re-open memory-mapped artifact region {self.path} "
                f"(offset {self.offset}): {exc}"
            ) from exc


def memmap_region(array: AnyArray) -> Optional[Tuple[str, int]]:
    """``(path, file offset)`` of a C-contiguous view into a memory map.

    Returns ``None`` for anything that is not a contiguous window of an
    :class:`numpy.memmap` (plain in-memory arrays, strided views).  Works for
    arbitrary slices: numpy propagates the *root* mapping's ``offset``
    attribute to views unchanged, so the view's own file position is
    recovered from pointer arithmetic against the underlying ``mmap`` buffer
    (which always starts at the allocation-granularity-aligned offset below
    the root's).
    """
    if not isinstance(array, np.memmap) or not array.flags["C_CONTIGUOUS"]:
        return None
    buffer: object = array.base
    while isinstance(buffer, np.ndarray):
        buffer = buffer.base
    if not isinstance(buffer, _mmap.mmap):
        return None
    root_offset = int(array.offset)
    buffer_file_offset = root_offset - root_offset % _mmap.ALLOCATIONGRANULARITY
    buffer_address = np.frombuffer(buffer, dtype=np.uint8).__array_interface__["data"][0]
    array_address = array.__array_interface__["data"][0]
    return str(array.filename), buffer_file_offset + (array_address - buffer_address)


def array_to_portable(array: AnyArray) -> Union[AnyArray, MmapRef]:
    """The picklable form of an array: an :class:`MmapRef` when possible.

    Memmap-backed contiguous arrays travel as references (re-opened on the
    other side); everything else is returned as a plain ndarray and pickles
    with its data as usual.
    """
    region = memmap_region(array)
    if region is None:
        # np.asarray would keep the memmap subclass; ascontiguousarray on a
        # plain array is a no-op.
        return array if type(array) is np.ndarray else np.asarray(array).view(np.ndarray)
    path, offset = region
    status = os.stat(path)
    return MmapRef(
        path=path,
        dtype=array.dtype.str,
        shape=tuple(array.shape),
        offset=offset,
        file_bytes=status.st_size,
        file_id=(status.st_ino, status.st_mtime_ns),
    )


def array_from_portable(value: object) -> object:
    """Inverse of :func:`array_to_portable` (passes non-references through)."""
    if isinstance(value, MmapRef):
        return value.restore()
    return value
