"""Lightweight timing helpers used by the benchmark harness and examples."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class Stopwatch:
    """Accumulates named wall-clock durations.

    Example
    -------
    >>> watch = Stopwatch()
    >>> with watch.measure("train"):
    ...     _ = sum(range(1000))
    >>> watch.total("train") >= 0.0
    True
    """

    durations: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        """Context manager that adds the elapsed time under ``label``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.durations[label] = self.durations.get(label, 0.0) + elapsed
            self.counts[label] = self.counts.get(label, 0) + 1

    def total(self, label: str) -> float:
        """Total seconds accumulated under ``label`` (0.0 if never measured)."""
        return self.durations.get(label, 0.0)

    def mean(self, label: str) -> float:
        """Mean seconds per measurement for ``label`` (0.0 if never measured)."""
        count = self.counts.get(label, 0)
        if count == 0:
            return 0.0
        return self.durations[label] / count

    def summary(self) -> Dict[str, float]:
        """A copy of all accumulated totals, keyed by label."""
        return dict(self.durations)


@contextmanager
def timed() -> Iterator[list]:
    """Context manager yielding a single-element list filled with the elapsed seconds.

    >>> with timed() as elapsed:
    ...     _ = sum(range(10))
    >>> elapsed[0] >= 0.0
    True
    """
    holder = [0.0]
    start = time.perf_counter()
    try:
        yield holder
    finally:
        holder[0] = time.perf_counter() - start
