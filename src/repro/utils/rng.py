"""Random number generator helpers.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None``.  :func:`ensure_rng` normalises
all three into a ``Generator`` so downstream code never has to branch on the
type of the ``random_state`` argument it received.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RandomState = Union[int, np.random.Generator, None]


def ensure_rng(random_state: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``random_state``.

    Parameters
    ----------
    random_state:
        ``None`` for a nondeterministic generator, an ``int`` seed for a
        reproducible one, or an existing ``Generator`` which is returned
        unchanged.

    Raises
    ------
    TypeError
        If ``random_state`` is not one of the accepted types.
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    raise TypeError(
        "random_state must be None, an int, or a numpy Generator; "
        f"got {type(random_state).__name__}"
    )


def spawn_rngs(random_state: RandomState, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent child generators from ``random_state``.

    The children are derived through :class:`numpy.random.SeedSequence`
    spawning, so they produce statistically independent streams even when the
    parent seed is small.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(random_state)
    seeds = parent.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(seed)) for seed in seeds]
