"""Packaging entry point.

Kept deliberately minimal: the package layout is the classic ``src/`` tree
and the only metadata that matters day to day is the pair of console
scripts.  ``pip install -e .`` gives you:

- ``repro-ids``  — train / detect / shard-worker CLI (``repro.cli``)
- ``repro-lint`` — project-invariant static analysis (``repro.analysis``)

Both commands also run without installation via ``python -m repro.cli`` and
``python -m repro.analysis`` with ``PYTHONPATH=src`` (the form CI uses).
"""

from setuptools import find_packages, setup

setup(
    name="repro-ghsom-ids",
    version="0.8.0",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.11",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro-ids = repro.cli:main",
            "repro-lint = repro.analysis.cli:main",
        ]
    },
)
