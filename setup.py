"""Setup shim.

The project is fully described by ``pyproject.toml``; this file exists only so
that legacy (non-PEP-660) editable installs — ``pip install -e . --no-use-pep517``
— keep working on environments that lack the ``wheel`` package.
"""

from setuptools import setup

setup()
