"""Property-based tests for the data layer (generator, preprocessing, SOM training)."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.config import SomTrainingConfig
from repro.core.som import Som
from repro.data.preprocess import MinMaxScaler, OneHotEncoder, StandardScaler
from repro.data.schema import ATTACK_CATEGORIES, attack_category
from repro.data.synthetic import KddSyntheticGenerator

DEFAULT_SETTINGS = {
    "max_examples": 30,
    "deadline": None,
    "suppress_health_check": [HealthCheck.too_slow, HealthCheck.data_too_large],
}

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestGeneratorProperties:
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(1, 200))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_every_generated_record_conforms_to_schema(self, seed, n):
        generator = KddSyntheticGenerator(random_state=seed)
        dataset = generator.generate(n)
        assert len(dataset) == n
        for index in range(0, n, max(1, n // 10)):
            dataset.schema.validate_row(list(dataset.raw[index]))
            assert attack_category(str(dataset.labels[index])) in ATTACK_CATEGORIES

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_rate_features_always_within_unit_interval(self, seed):
        generator = KddSyntheticGenerator(random_state=seed)
        dataset = generator.generate(150)
        for feature in ("serror_rate", "same_srv_rate", "dst_host_rerror_rate"):
            values = dataset.column(feature).astype(float)
            assert values.min() >= 0.0 and values.max() <= 1.0

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_numeric_features_finite_and_nonnegative(self, seed):
        dataset = KddSyntheticGenerator(random_state=seed).generate(100)
        matrix = dataset.numeric_matrix()
        assert np.all(np.isfinite(matrix))
        assert matrix.min() >= 0.0


class TestScalerProperties:
    @given(data=st.data())
    @settings(**DEFAULT_SETTINGS)
    def test_minmax_output_in_unit_interval(self, data):
        matrix = data.draw(
            hnp.arrays(
                np.float64,
                st.tuples(st.integers(2, 30), st.integers(1, 8)),
                elements=finite_floats,
            )
        )
        scaled = MinMaxScaler().fit_transform(matrix)
        assert scaled.min() >= -1e-9
        assert scaled.max() <= 1.0 + 1e-9

    @given(data=st.data())
    @settings(**DEFAULT_SETTINGS)
    def test_minmax_inverse_roundtrip(self, data):
        matrix = data.draw(
            hnp.arrays(
                np.float64,
                st.tuples(st.integers(2, 20), st.integers(1, 6)),
                elements=st.floats(-1e3, 1e3, allow_nan=False),
            )
        )
        scaler = MinMaxScaler(clip=False).fit(matrix)
        rebuilt = scaler.inverse_transform(scaler.transform(matrix))
        np.testing.assert_allclose(rebuilt, matrix, atol=1e-6)

    @given(data=st.data())
    @settings(**DEFAULT_SETTINGS)
    def test_standard_scaler_idempotent_statistics(self, data):
        matrix = data.draw(
            hnp.arrays(
                np.float64,
                st.tuples(st.integers(3, 30), st.integers(1, 6)),
                elements=st.floats(-1e3, 1e3, allow_nan=False),
            )
        )
        scaled = StandardScaler().fit_transform(matrix)
        means = scaled.mean(axis=0)
        # Near-constant columns (spread at the level of float rounding) cannot
        # be centred meaningfully, so only assert on columns with real spread.
        meaningful = matrix.std(axis=0) > 1e-6 * (1.0 + np.abs(matrix).max())
        assert np.all(np.abs(means[meaningful]) < 1e-5)

    @given(values=st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=50))
    @settings(**DEFAULT_SETTINGS)
    def test_onehot_rows_sum_to_one_for_known_values(self, values):
        encoder = OneHotEncoder().fit(values)
        encoded = encoder.transform(values)
        np.testing.assert_allclose(encoded.sum(axis=1), 1.0)


class TestSomTrainingProperties:
    @given(seed=st.integers(0, 1000), n_clusters=st.integers(1, 3))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_training_never_worse_than_single_centroid(self, seed, n_clusters):
        """A trained SOM always quantises at least as well as the global mean."""
        rng = np.random.default_rng(seed)
        centers = rng.random((n_clusters, 3))
        data = np.concatenate(
            [center + rng.normal(0, 0.05, (40, 3)) for center in centers], axis=0
        )
        som = Som(3, 3, n_features=3, config=SomTrainingConfig(epochs=5), random_state=seed)
        som.fit(data)
        from repro.core.quantization import dataset_quantization_error

        assert som.average_sample_error(data) <= dataset_quantization_error(data) + 1e-9

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_codebook_always_finite(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.random((60, 5)) * 100.0
        som = Som(4, 4, n_features=5, config=SomTrainingConfig(epochs=4), random_state=seed)
        som.fit(data)
        assert np.all(np.isfinite(som.codebook))
