"""Tests for repro.core.inspection (U-matrix, hit maps, tree rendering)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SomTrainingConfig
from repro.core.detector import GhsomDetector
from repro.core.ghsom import Ghsom
from repro.core.grid import MapGrid
from repro.core.inspection import (
    component_plane,
    describe_tree,
    hit_map,
    label_map,
    render_grid,
    u_matrix,
    unit_summaries,
)
from repro.core.labeling import UnitLabeler
from repro.core.som import Som
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def trained_som(blob_data):
    return Som(4, 4, n_features=4, config=SomTrainingConfig(epochs=10), random_state=0).fit(blob_data)


@pytest.fixture(scope="module")
def trained_ghsom(train_matrix, fast_config):
    return Ghsom(fast_config).fit(train_matrix)


class TestUMatrix:
    def test_shape_matches_grid(self, trained_som):
        matrix = u_matrix(trained_som.codebook, trained_som.grid)
        assert matrix.shape == (4, 4)
        assert np.all(matrix >= 0.0)

    def test_identical_codebook_gives_zero_ridges(self):
        grid = MapGrid(3, 3)
        codebook = np.ones((9, 5))
        np.testing.assert_allclose(u_matrix(codebook, grid), 0.0)

    def test_boundary_between_clusters_visible(self):
        """Two groups of units with very different weights -> large ridge at the boundary."""
        grid = MapGrid(1, 4)
        codebook = np.array([[0.0], [0.0], [1.0], [1.0]])
        matrix = u_matrix(codebook, grid)
        assert matrix[0, 1] > matrix[0, 0]
        assert matrix[0, 2] > matrix[0, 3]

    def test_mismatched_codebook_rejected(self):
        with pytest.raises(ConfigurationError):
            u_matrix(np.ones((5, 2)), MapGrid(2, 2))


class TestHitAndComponentMaps:
    def test_hit_map_sums_to_samples(self, trained_som, blob_data):
        hits = hit_map(trained_som, blob_data)
        assert hits.shape == (4, 4)
        assert hits.sum() == blob_data.shape[0]

    def test_component_plane_values_match_codebook(self, trained_som):
        plane = component_plane(trained_som, 0)
        np.testing.assert_allclose(plane.ravel(), trained_som.codebook[:, 0])

    def test_component_plane_index_validated(self, trained_som):
        with pytest.raises(ConfigurationError):
            component_plane(trained_som, 99)

    def test_label_map_shape(self, trained_som, blob_data):
        units = trained_som.transform(blob_data)
        labels = ["normal" if index % 2 else "dos" for index in range(len(units))]
        labeler = UnitLabeler().fit([("som", int(unit)) for unit in units], labels)
        grid_labels = label_map(trained_som, labeler)
        assert len(grid_labels) == 4 and len(grid_labels[0]) == 4


class TestRenderGrid:
    def test_renders_rows_and_columns(self):
        text = render_grid(np.array([[1.0, 2.0], [3.0, 4.0]]))
        lines = text.splitlines()
        assert len(lines) == 2
        assert "1.000" in lines[0] and "4.000" in lines[1]

    def test_respects_float_format(self):
        text = render_grid(np.array([[0.123456]]), float_format=".1f")
        assert text.strip() == "0.1"


class TestDescribeTree:
    def test_mentions_every_node(self, trained_ghsom):
        text = describe_tree(trained_ghsom)
        for node in trained_ghsom.iter_nodes():
            assert node.node_id in text

    def test_includes_labels_when_labeler_given(self, trained_ghsom, train_matrix, train_categories):
        labeler = UnitLabeler().fit(trained_ghsom.leaf_keys(train_matrix), train_categories)
        text = describe_tree(trained_ghsom, labeler)
        assert "leaf labels" in text
        assert "normal=" in text

    def test_indentation_follows_depth(self, trained_ghsom):
        lines = describe_tree(trained_ghsom).splitlines()
        assert lines[0].startswith("root:")
        deeper = [line for line in lines if line.startswith("  ")]
        if trained_ghsom.n_maps > 1:
            assert deeper


class TestUnitSummaries:
    def test_one_summary_per_leaf(self, trained_ghsom):
        summaries = unit_summaries(trained_ghsom)
        assert len(summaries) == trained_ghsom.n_leaf_units
        for summary in summaries[:10]:
            assert len(summary["top_features"]) == 3
            assert summary["qe"] >= 0.0

    def test_feature_names_used_when_given(self, trained_ghsom, fitted_pipeline):
        summaries = unit_summaries(trained_ghsom, fitted_pipeline.feature_names_out, top_k=2)
        name, _ = summaries[0]["top_features"][0]
        assert name in fitted_pipeline.feature_names_out

    def test_invalid_top_k_rejected(self, trained_ghsom):
        with pytest.raises(ConfigurationError):
            unit_summaries(trained_ghsom, top_k=0)

    def test_works_through_detector(self, fast_config, train_matrix, train_categories):
        detector = GhsomDetector(fast_config, random_state=0).fit(train_matrix, train_categories)
        text = describe_tree(detector.model, detector.labeler)
        assert "root" in text
