"""Tests for repro.netsim.events and repro.netsim.hosts."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.netsim.events import ConnectionEvent
from repro.netsim.hosts import SERVICE_PORTS, NetworkModel


def make_event(**overrides):
    base = {
        "timestamp": 1.0,
        "duration": 0.5,
        "src_ip": "10.0.0.1",
        "dst_ip": "10.0.1.1",
        "src_port": 40000,
        "dst_port": 80,
        "protocol": "tcp",
        "service": "http",
        "flag": "SF",
        "src_bytes": 100,
        "dst_bytes": 2000,
    }
    base.update(overrides)
    return ConnectionEvent(**base)


class TestConnectionEvent:
    def test_basic_properties(self):
        event = make_event()
        assert event.end_time == pytest.approx(1.5)
        assert not event.is_attack
        assert not event.is_syn_error
        assert not event.is_rejected

    def test_syn_error_flags(self):
        assert make_event(flag="S0").is_syn_error
        assert make_event(flag="SH").is_syn_error
        assert not make_event(flag="REJ").is_syn_error

    def test_reject_flags(self):
        assert make_event(flag="REJ").is_rejected
        assert make_event(flag="RSTO").is_rejected
        assert not make_event(flag="SF").is_rejected

    def test_attack_label(self):
        assert make_event(label="neptune").is_attack

    def test_content_value_defaults_to_zero(self):
        event = make_event(content={"hot": 2.0})
        assert event.content_value("hot") == 2.0
        assert event.content_value("num_failed_logins") == 0.0

    def test_negative_timestamp_rejected(self):
        with pytest.raises(SimulationError):
            make_event(timestamp=-1.0)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SimulationError):
            make_event(protocol="sctp")

    def test_unknown_service_rejected(self):
        with pytest.raises(SimulationError):
            make_event(service="gopher")

    def test_unknown_flag_rejected(self):
        with pytest.raises(SimulationError):
            make_event(flag="SYN")

    def test_negative_bytes_rejected(self):
        with pytest.raises(SimulationError):
            make_event(src_bytes=-5)


class TestNetworkModel:
    def test_host_counts(self):
        network = NetworkModel(n_internal_hosts=10, n_external_hosts=20, n_servers=4, random_state=0)
        assert len(network.internal_hosts) == 10
        assert len(network.external_hosts) == 20
        assert len(network.servers) == 4

    def test_internal_addresses_include_servers(self):
        network = NetworkModel(n_internal_hosts=5, n_servers=3, random_state=0)
        addresses = network.all_internal_addresses()
        assert len(addresses) == 8
        for server in network.all_server_addresses():
            assert server in addresses

    def test_server_for_service_prefers_advertisers(self, rng):
        network = NetworkModel(random_state=0)
        for _ in range(10):
            server = network.server_for_service("http", rng)
            assert "http" in network.servers[server]

    def test_server_for_unknown_service_falls_back(self, rng):
        network = NetworkModel(n_servers=2, random_state=0)
        server = network.server_for_service("ecr_i", rng)
        assert server in network.servers

    def test_ephemeral_ports_in_range(self, rng):
        network = NetworkModel(random_state=0)
        ports = [network.ephemeral_port(rng) for _ in range(100)]
        assert min(ports) >= 1024 and max(ports) < 65535

    def test_service_ports_known(self):
        assert NetworkModel.port_for_service("http") == 80
        assert NetworkModel.port_for_service("dns") == 53
        assert NetworkModel.port_for_service("unknown_service") == 8888
        assert set(SERVICE_PORTS).issuperset({"http", "smtp", "ftp"})

    def test_invalid_sizes_rejected(self):
        with pytest.raises(SimulationError):
            NetworkModel(n_internal_hosts=0)

    def test_random_host_selection(self, rng):
        network = NetworkModel(random_state=0)
        assert network.random_internal_host(rng) in network.internal_hosts
        assert network.random_external_host(rng) in network.external_hosts

    def test_reproducible_with_seed(self):
        first = NetworkModel(random_state=5)
        second = NetworkModel(random_state=5)
        assert first.external_hosts == second.external_hosts
