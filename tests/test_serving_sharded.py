"""Tests for the sharded serving subsystem (repro.serving).

The acceptance property of the whole package: routing a batch through K
root-subtree shards — any K, any backend — must reproduce the unsharded
float64 engine *byte for byte*: same leaf rows, same distances, same scores,
predictions and categories.  Sharding is a pure execution-plan change, not an
approximation.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import load_bundle, save_bundle
from repro.core import Ghsom, GhsomConfig, GhsomDetector, SomTrainingConfig
from repro.core.serialization import detector_from_dict, detector_to_dict
from repro.data.preprocess import PreprocessingPipeline
from repro.data.synthetic import KddSyntheticGenerator
from repro.exceptions import ConfigurationError, SerializationError
from repro.serving import (
    ProcessPoolBackend,
    SerialBackend,
    ShardedGhsom,
    ThreadPoolBackend,
    build_shards,
    make_backend,
    manifest_from_compiled,
    plan_shards,
    subtrees_from_compiled,
    subtrees_from_manifest,
)

# Fitting a GHSOM per example is expensive: few examples, generous deadline.
FIT_SETTINGS = {
    "max_examples": 10,
    "deadline": None,
    "suppress_health_check": [HealthCheck.too_slow, HealthCheck.data_too_large],
}

METRICS = ("euclidean", "manhattan", "chebyshev")


def _make_dataset(seed: int, n_clusters: int, n_features: int, n_samples: int) -> np.ndarray:
    """Clustered data so random configs actually grow multi-level trees."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-2.0, 2.0, size=(n_clusters, n_features))
    assignments = rng.integers(0, n_clusters, size=n_samples)
    return centers[assignments] + rng.normal(0.0, 0.15, size=(n_samples, n_features))


def _random_config(data) -> GhsomConfig:
    return GhsomConfig(
        tau1=data.draw(st.sampled_from([0.3, 0.5])),
        tau2=data.draw(st.sampled_from([0.05, 0.15])),
        max_depth=data.draw(st.integers(1, 3)),
        max_map_size=data.draw(st.sampled_from([9, 16, 25])),
        max_growth_rounds=4,
        min_samples_for_expansion=data.draw(st.sampled_from([10, 25])),
        training=SomTrainingConfig(epochs=2, metric=data.draw(st.sampled_from(METRICS))),
        random_state=data.draw(st.integers(0, 2**16)),
    )


@pytest.fixture(scope="module")
def workload():
    """Preprocessed train/test matrices plus training labels."""
    generator = KddSyntheticGenerator(random_state=23)
    train = generator.generate(1000)
    test = generator.generate(600)
    pipeline = PreprocessingPipeline()
    return {
        "X_train": pipeline.fit_transform(train),
        "X_test": pipeline.transform(test),
        "y_train": [str(category) for category in train.categories],
    }


@pytest.fixture(scope="module")
def detector_config():
    return GhsomConfig(
        tau1=0.35,
        tau2=0.05,
        max_depth=3,
        max_map_size=36,
        min_samples_for_expansion=30,
        training=SomTrainingConfig(epochs=3),
        random_state=0,
    )


@pytest.fixture(scope="module")
def labelled_detector(workload, detector_config):
    detector = GhsomDetector(detector_config, random_state=0)
    return detector.fit(workload["X_train"], workload["y_train"])


@pytest.fixture(scope="module")
def compiled(labelled_detector):
    return labelled_detector.model.compile()


# --------------------------------------------------------------------------- #
# planner
# --------------------------------------------------------------------------- #
class TestPlanner:
    def test_subtrees_partition_the_arrays(self, compiled):
        subtrees = subtrees_from_compiled(compiled)
        n_root_units = int(compiled.node_offsets[1])
        # Every internal root unit owns exactly one subtree.
        internal = [u for u in range(n_root_units) if compiled.child_of_unit[u] >= 0]
        assert [s.root_unit for s in subtrees] == internal
        # Subtree node/unit/leaf ranges are disjoint and cover every non-root
        # node, every non-root unit and every non-root-level leaf.
        nodes = sorted(
            n for s in subtrees for n in range(s.entry_node, s.node_stop)
        )
        assert nodes == list(range(1, compiled.n_nodes))
        units = sorted(u for s in subtrees for u in range(s.unit_start, s.unit_stop))
        assert units == list(range(n_root_units, compiled.n_units))
        leaves = sorted(l for s in subtrees for l in range(s.leaf_start, s.leaf_stop))
        root_leaves = int(np.sum(compiled.leaf_of_unit[:n_root_units] >= 0))
        assert len(leaves) == compiled.n_leaves - root_leaves
        # A subtree's leaf segment really belongs to its node range.
        for subtree in subtrees:
            owned = compiled.leaf_node[subtree.leaf_start : subtree.leaf_stop]
            assert np.all((owned >= subtree.entry_node) & (owned < subtree.node_stop))

    def test_plan_balances_and_clamps(self, compiled):
        subtrees = subtrees_from_compiled(compiled)
        plan = plan_shards(compiled, 2)
        assert plan.n_shards == min(2, len(subtrees))
        # Every subtree lands on exactly one shard.
        assert sorted(
            s.root_unit for shard in range(plan.n_shards) for s in plan.members_of(shard)
        ) == sorted(s.root_unit for s in subtrees)
        # Asking for more shards than subtrees clamps instead of erroring.
        oversized = plan_shards(compiled, len(subtrees) + 10)
        assert oversized.n_shards == len(subtrees)
        # Every effective shard has at least one subtree (LPT never leaves
        # a shard empty when shards <= subtrees).
        for shard in range(oversized.n_shards):
            assert oversized.members_of(shard)
        with pytest.raises(ConfigurationError):
            plan_shards(compiled, 0)

    def test_depth_one_tree_has_no_subtrees(self):
        data = np.random.default_rng(0).normal(0.0, 1.0, (300, 4))
        config = GhsomConfig(
            tau1=0.5, max_depth=1, max_map_size=16,
            training=SomTrainingConfig(epochs=2), random_state=0,
        )
        compiled = Ghsom(config).fit(data).compile()
        assert subtrees_from_compiled(compiled) == ()
        engine = ShardedGhsom.from_compiled(compiled, 4)
        assert engine.n_shards == 0
        reference = compiled.assign_arrays(data)
        leaf, dist = engine.assign_arrays(data)
        np.testing.assert_array_equal(leaf, reference[0])
        np.testing.assert_array_equal(dist, reference[1])


class TestManifest:
    def test_round_trips_through_json(self, compiled):
        manifest = manifest_from_compiled(compiled)
        restored = subtrees_from_manifest(json.loads(json.dumps(manifest)))
        assert restored == subtrees_from_compiled(compiled)

    def test_rejects_unknown_version(self, compiled):
        manifest = manifest_from_compiled(compiled)
        manifest["version"] = 99
        with pytest.raises(SerializationError):
            subtrees_from_manifest(manifest)

    def test_detector_artifact_carries_manifest(self, labelled_detector):
        payload = detector_to_dict(labelled_detector)
        manifest = payload["shard_manifest"]
        assert subtrees_from_manifest(manifest) == subtrees_from_compiled(
            labelled_detector.model.compile()
        )
        # ...and the loaded detector keeps it for set_sharding().
        loaded = detector_from_dict(payload)
        assert loaded._shard_manifest == manifest


# --------------------------------------------------------------------------- #
# shards
# --------------------------------------------------------------------------- #
class TestShardSelfContainment:
    def test_shard_arrays_match_global_segments(self, labelled_detector, compiled):
        tables = labelled_detector._leaf_tables()
        plan = plan_shards(compiled, 2)
        shards = build_shards(
            compiled,
            plan,
            thresholds=tables.thresholds,
            labels=tables.labels,
            is_attack=tables.is_attack,
            purity=tables.purity,
        )
        seen_leaves = []
        for shard in shards:
            assert shard.codebook.shape == (shard.n_units, compiled.n_features)
            np.testing.assert_array_equal(
                shard.codebook, compiled.codebook[
                    np.concatenate([
                        np.arange(s.unit_start, s.unit_stop)
                        for s in plan.members_of(shard.shard_id)
                    ])
                ],
            )
            # Local child/leaf indices stay inside the shard.
            assert shard.child_of_unit.max(initial=-1) < shard.n_nodes
            assert shard.leaf_of_unit.max(initial=-1) < shard.n_leaves
            # Per-leaf scoring tables are the global segments, remapped.
            np.testing.assert_array_equal(
                shard.thresholds, tables.thresholds[shard.leaf_global_row]
            )
            np.testing.assert_array_equal(
                shard.labels, tables.labels[shard.leaf_global_row]
            )
            np.testing.assert_array_equal(
                shard.is_attack, tables.is_attack[shard.leaf_global_row]
            )
            np.testing.assert_array_equal(
                shard.purity, tables.purity[shard.leaf_global_row]
            )
            seen_leaves.extend(shard.leaf_global_row.tolist())
        # Shards jointly own every non-root-level leaf exactly once.
        assert len(seen_leaves) == len(set(seen_leaves))


# --------------------------------------------------------------------------- #
# router + backends: byte-identity
# --------------------------------------------------------------------------- #
class TestShardedEquivalence:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_engine_equivalence_across_shard_counts(self, compiled, workload, backend):
        X = workload["X_test"]
        reference = compiled.assign_arrays(X)
        n_subtrees = len(subtrees_from_compiled(compiled))
        for n_shards in {1, 2, max(1, n_subtrees)}:
            engine = ShardedGhsom.from_compiled(
                compiled, n_shards, backend=backend, workers=2 if backend != "serial" else None
            )
            leaf, dist = engine.assign_arrays(X)
            np.testing.assert_array_equal(leaf, reference[0])
            np.testing.assert_array_equal(dist, reference[1])
            assert dist.dtype == np.float64
            engine.close()

    def test_process_backend_equivalence(self, compiled, workload):
        X = workload["X_test"][:200]
        reference = compiled.assign_arrays(X)
        with ProcessPoolBackend(workers=2) as backend:
            engine = ShardedGhsom.from_compiled(compiled, 2, backend=backend)
            for _ in range(2):  # second call reuses the worker pool
                leaf, dist = engine.assign_arrays(X)
                np.testing.assert_array_equal(leaf, reference[0])
                np.testing.assert_array_equal(dist, reference[1])

    def test_detector_detect_byte_identical(self, labelled_detector, workload):
        X = workload["X_test"]
        reference = labelled_detector.detect(X)
        try:
            for n_shards in (1, 3):
                labelled_detector.set_sharding(n_shards)
                result = labelled_detector.detect(X)
                np.testing.assert_array_equal(result.scores, reference.scores)
                np.testing.assert_array_equal(result.predictions, reference.predictions)
                np.testing.assert_array_equal(result.leaf_index, reference.leaf_index)
                assert result.categories == reference.categories
        finally:
            labelled_detector.set_sharding(None)

    def test_one_class_detector_byte_identical(self, workload, detector_config):
        detector = GhsomDetector(detector_config, random_state=0).fit(workload["X_train"])
        X = workload["X_test"]
        reference = detector.detect(X)
        detector.set_sharding(4, backend="thread", workers=2)
        result = detector.detect(X)
        np.testing.assert_array_equal(result.scores, reference.scores)
        assert result.categories == reference.categories
        detector.set_sharding(None)

    def test_float32_sharded_matches_float32_unsharded(self, labelled_detector, workload):
        X = workload["X_test"]
        payload = detector_to_dict(labelled_detector)
        narrowed = detector_from_dict(payload, dtype="float32")
        reference = narrowed.detect(X)
        narrowed.set_sharding(3)
        result = narrowed.detect(X)
        np.testing.assert_array_equal(result.scores, reference.scores)
        np.testing.assert_array_equal(result.leaf_index, reference.leaf_index)
        narrowed.set_sharding(None)

    def test_sharding_survives_refit(self, workload, detector_config):
        detector = GhsomDetector(detector_config, random_state=0).fit(workload["X_train"])
        detector.set_sharding(3)
        X = workload["X_test"]
        _ = detector.detect(X)
        detector.fit(workload["X_train"][:400])
        assert detector.sharding == {"n_shards": 3, "backend": "serial", "workers": 1}
        fresh = GhsomDetector(detector_config, random_state=0).fit(workload["X_train"][:400])
        np.testing.assert_array_equal(detector.detect(X).scores, fresh.detect(X).scores)

    def test_set_sharding_validation(self, labelled_detector):
        with pytest.raises(ConfigurationError):
            labelled_detector.set_sharding(-1)
        with pytest.raises(ConfigurationError):
            labelled_detector.set_sharding(2, backend="quantum")
        assert labelled_detector.sharding is None  # failed calls leave it unsharded

    def test_make_backend_rejects_bad_worker_overrides(self):
        with pytest.raises(ConfigurationError):
            make_backend("serial", workers=4)
        with pytest.raises(ConfigurationError):
            make_backend(SerialBackend(), workers=2)
        with pytest.raises(ConfigurationError):
            make_backend("thread", workers=0)
        backend = make_backend("thread", workers=3)
        assert isinstance(backend, ThreadPoolBackend) and backend.workers == 3


class _ExplodingShard:
    """Stands in for a shard whose worker-side execution fails."""

    def assign_entries(self, matrix, entries):
        raise RuntimeError("worker exploded")


class _ExitingShard:
    """Kills the hosting process outright (simulates a worker crash)."""

    def assign_entries(self, matrix, entries):  # pragma: no cover - child only
        import os

        os._exit(1)


class TestBackendFailureSurface:
    def test_process_pool_refreshes_on_rebuilt_equal_shards(self, compiled, workload):
        """A rebuilt-but-equal shard tuple must still replace worker state.

        The staleness check is identity-based; it must never silently start
        treating equal-content tuples as fresh (e.g. if SubtreeShard ever
        grew an ``__eq__``), because the workers would keep serving the old
        arrays.
        """
        plan = plan_shards(compiled, 2)
        shards_a = build_shards(compiled, plan)
        shards_b = build_shards(compiled, plan)  # equal content, new objects
        X = workload["X_test"][:50]
        with ProcessPoolBackend(workers=1) as backend:
            tasks = [(0, X, np.zeros(X.shape[0], dtype=np.intp))]
            backend.run(shards_a, tasks)
            first_pool = backend._pool
            assert backend._pool_shards is tuple(shards_a)
            backend.run(shards_b, tasks)
            assert backend._pool is not first_pool
            assert backend._pool_shards is tuple(shards_b)
            # Same tuple again: the pool must be reused, not rebuilt.
            second_pool = backend._pool
            backend.run(shards_b, tasks)
            assert backend._pool is second_pool
            # A fresh sequence of the same shard objects is not stale either
            # — torching a warm pool per batch would be a silent slowdown.
            backend.run(list(shards_b), tasks)
            assert backend._pool is second_pool

    @pytest.mark.parametrize("backend_name", ["thread", "process"])
    def test_worker_failure_wrapped_in_serving_error(self, backend_name, workload):
        from repro.exceptions import ServingError

        X = np.ascontiguousarray(workload["X_test"][:7])
        backend = make_backend(backend_name, workers=1)
        tasks = [(0, X, np.zeros(X.shape[0], dtype=np.intp))]
        try:
            with pytest.raises(ServingError) as excinfo:
                backend.run((_ExplodingShard(),), tasks)
        finally:
            backend.close()
        message = str(excinfo.value)
        assert backend_name in message  # names the backend
        assert "shard 0" in message  # names the shard
        assert "7 records" in message  # names the task size
        assert "RuntimeError" in message  # keeps the cause visible

    def test_broken_process_pool_wrapped_and_pool_rebuilt(self, compiled, workload):
        """A worker dying mid-task surfaces as ServingError, not BrokenProcessPool."""
        from repro.exceptions import ServingError

        X = np.ascontiguousarray(workload["X_test"][:5])
        tasks = [(0, X, np.zeros(X.shape[0], dtype=np.intp))]
        with ProcessPoolBackend(workers=1) as backend:
            with pytest.raises(ServingError, match="process shard backend failed"):
                backend.run((_ExitingShard(),), tasks)
            # The broken pool was closed; the backend recovers on reuse.
            shards = build_shards(compiled, plan_shards(compiled, 1))
            reference = shards[0].assign_entries(X, np.zeros(X.shape[0], dtype=np.intp))
            (result,) = backend.run(shards, tasks)
            np.testing.assert_array_equal(result[0], reference[0])
            np.testing.assert_array_equal(result[1], reference[1])


class TestShardedBundle:
    def test_load_bundle_with_shards(self, tmp_path, labelled_detector, workload):
        pipeline = PreprocessingPipeline()
        pipeline.fit_transform(KddSyntheticGenerator(random_state=23).generate(1000))
        path = tmp_path / "bundle.json"
        save_bundle(pipeline, labelled_detector, path)
        _, plain = load_bundle(path)
        _, sharded = load_bundle(path, shards=3, workers=2, shard_backend="thread")
        assert sharded.sharding == {"n_shards": 3, "backend": "thread", "workers": 2}
        X = workload["X_test"]
        reference = plain.detect(X)
        result = sharded.detect(X)
        np.testing.assert_array_equal(result.scores, reference.scores)
        assert result.categories == reference.categories
        # The manifest — not a tree rebuild — provided the shard layout.
        assert not sharded.tree_is_materialized
        sharded.set_sharding(None)

    def test_workers_without_shards_is_rejected(self, tmp_path, labelled_detector):
        from repro.exceptions import ReproError

        pipeline = PreprocessingPipeline()
        pipeline.fit_transform(KddSyntheticGenerator(random_state=23).generate(200))
        path = tmp_path / "bundle.json"
        save_bundle(pipeline, labelled_detector, path)
        # workers / shard_backend only make sense with shards=K: reject the
        # call instead of silently serving unsharded.
        with pytest.raises(ReproError):
            load_bundle(path, workers=4)
        with pytest.raises(ReproError):
            load_bundle(path, shard_backend="process")


# --------------------------------------------------------------------------- #
# hypothesis: the acceptance property over random models
# --------------------------------------------------------------------------- #
class TestShardedProperty:
    @given(data=st.data())
    @settings(**FIT_SETTINGS)
    def test_sharded_detect_byte_identical(self, data):
        dataset = _make_dataset(
            seed=data.draw(st.integers(0, 2**16)),
            n_clusters=data.draw(st.integers(2, 4)),
            n_features=data.draw(st.integers(2, 5)),
            n_samples=data.draw(st.integers(80, 160)),
        )
        config = _random_config(data)
        labelled = data.draw(st.booleans())
        threshold_strategy = data.draw(st.sampled_from(["per_unit", "global"]))
        labels = None
        if labelled:
            rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
            labels = [
                data_label
                for data_label in rng.choice(
                    ["normal", "dos", "probe"], size=dataset.shape[0]
                )
            ]
        detector = GhsomDetector(
            config, threshold_strategy=threshold_strategy, random_state=0
        ).fit(dataset, labels)
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        queries = np.concatenate(
            [dataset[:50], dataset[:25] + rng.normal(0.0, 0.8, (25, dataset.shape[1]))]
        )
        reference = detector.detect(queries)
        n_subtrees = len(subtrees_from_compiled(detector.model.compile()))
        try:
            for n_shards in {1, 2, max(1, n_subtrees)}:
                detector.set_sharding(n_shards)
                result = detector.detect(queries)
                np.testing.assert_array_equal(result.scores, reference.scores)
                np.testing.assert_array_equal(result.predictions, reference.predictions)
                np.testing.assert_array_equal(result.leaf_index, reference.leaf_index)
                assert result.categories == reference.categories
        finally:
            detector.set_sharding(None)
