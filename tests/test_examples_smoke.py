"""Smoke test: every example script runs to completion in quick mode.

The scripts under ``examples/`` are the documentation users actually run,
and until now nothing executed them in CI — an API rename could break all
of them silently.  Each test runs one script as a real subprocess (its own
interpreter, its own cwd in a temp dir so stray output files never land in
the repository) with ``REPRO_EXAMPLES_QUICK=1``, the environment knob every
example honours by shrinking its workload to a few seconds.

A non-zero exit status or a traceback on stderr fails the test with the
script's full output attached.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
#: Generous per-script ceiling; quick mode finishes far below it.
TIMEOUT_SECONDS = 300

EXAMPLE_SCRIPTS = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_every_example_is_covered():
    """A new example file must show up here automatically (glob, not a list)."""
    assert EXAMPLE_SCRIPTS, "no example scripts found"


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
def test_example_runs_in_quick_mode(script, tmp_path):
    env = dict(os.environ)
    env["REPRO_EXAMPLES_QUICK"] = "1"
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        cwd=tmp_path,  # any files an example writes stay out of the repo
        env=env,
        capture_output=True,
        text=True,
        timeout=TIMEOUT_SECONDS,
    )
    assert completed.returncode == 0, (
        f"{script} exited with {completed.returncode}\n"
        f"--- stdout ---\n{completed.stdout}\n--- stderr ---\n{completed.stderr}"
    )
    assert "Traceback" not in completed.stderr, completed.stderr
    assert completed.stdout.strip(), f"{script} produced no output"
