"""Unit tests of the declarative serving-config layer (repro.serving.config).

Covers strict construction-time validation, the versioned JSON round trip
(property-based: any constructible config survives to_dict/from_dict
unchanged), the flat-override derivation used by the CLI, the
config/overrides/embedded precedence rule, and environment resolution into a
ServingPlan under both the strict and the degrade policy.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.serving import (
    ArtifactOptions,
    ServingConfig,
    ServingPlan,
    ServingStats,
    ShardingSpec,
    effective_config,
    usable_workers,
)
from repro.serving.backends import SerialBackend, ThreadPoolBackend
from repro.serving.config import CONFIG_VERSION
from repro.serving.remote import RemoteBackend


# --------------------------------------------------------------------------- #
# construction + validation
# --------------------------------------------------------------------------- #
class TestValidation:
    def test_default_config_is_unsharded_float64(self):
        config = ServingConfig()
        assert config.dtype == "float64"
        assert config.engine is None
        assert config.provider is None
        assert not config.sharding.enabled
        assert config.artifact.mmap is True
        assert config.artifact.verify is False

    def test_dtype_is_canonicalised(self):
        assert ServingConfig(dtype="<f4").dtype == "float32"
        assert ServingConfig(dtype="double").dtype == "float64"

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ConfigurationError, match="unsupported serving dtype"):
            ServingConfig(dtype="int32")
        with pytest.raises(ConfigurationError, match="invalid serving dtype"):
            ServingConfig(dtype=object())

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            ServingConfig(engine="cuda")

    def test_unknown_provider_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fused provider"):
            ServingConfig(provider="mkl")

    def test_workers_without_shards_rejected(self):
        with pytest.raises(ConfigurationError, match="only apply to sharded serving"):
            ShardingSpec(workers=4)

    def test_backend_without_shards_rejected(self):
        with pytest.raises(ConfigurationError, match="only apply to sharded serving"):
            ShardingSpec(backend="thread")

    def test_zero_shards_rejected(self):
        with pytest.raises(ConfigurationError, match="n_shards must be >= 1"):
            ShardingSpec(shards=0)

    def test_remote_workers_with_local_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="remote_workers conflicts"):
            ShardingSpec(shards=2, backend="process", remote_workers="h:1")

    def test_remote_backend_without_addresses_rejected(self):
        with pytest.raises(ConfigurationError, match="needs worker addresses"):
            ShardingSpec(shards=2, backend="remote")

    def test_remote_workers_with_worker_count_rejected(self):
        with pytest.raises(ConfigurationError, match="address list"):
            ShardingSpec(shards=2, remote_workers="h:1", workers=3)

    def test_remote_workers_imply_remote_backend(self):
        spec = ShardingSpec(shards=2, remote_workers="localhost:9001")
        assert spec.backend == "remote"

    def test_remote_workers_are_canonicalised(self):
        spec = ShardingSpec(shards=2, remote_workers=" a:1 , b:2 ,")
        assert spec.remote_workers == "a:1,b:2"

    def test_provisioning_without_remote_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="provisioning only applies"):
            ShardingSpec(shards=2, backend="thread", provisioning="value")

    def test_sharding_must_be_a_spec(self):
        with pytest.raises(ConfigurationError, match="must be a ShardingSpec"):
            ServingConfig(sharding={"shards": 2})

    def test_artifact_must_be_options(self):
        with pytest.raises(ConfigurationError, match="must be ArtifactOptions"):
            ServingConfig(artifact={"mmap": False})


# --------------------------------------------------------------------------- #
# JSON round trip
# --------------------------------------------------------------------------- #
def _configs() -> st.SearchStrategy[ServingConfig]:
    """Any constructible ServingConfig (validation-consistent by design)."""
    local = st.builds(
        ShardingSpec,
        shards=st.one_of(st.none(), st.integers(min_value=1, max_value=64)),
        workers=st.none(),
        backend=st.none(),
    )
    pooled = st.builds(
        ShardingSpec,
        shards=st.integers(min_value=1, max_value=64),
        workers=st.one_of(st.none(), st.integers(min_value=1, max_value=16)),
        backend=st.sampled_from(["serial", "thread", "process"]),
    )
    remote = st.builds(
        ShardingSpec,
        shards=st.integers(min_value=1, max_value=64),
        remote_workers=st.lists(
            st.integers(min_value=1, max_value=65535), min_size=1, max_size=4
        ).map(lambda ports: ",".join(f"worker{i}:{p}" for i, p in enumerate(ports))),
        provisioning=st.sampled_from(["auto", "reference", "value"]),
    )
    return st.builds(
        ServingConfig,
        dtype=st.sampled_from(["float64", "float32"]),
        engine=st.sampled_from([None, "numpy", "fused", "auto"]),
        provider=st.sampled_from([None, "cc", "numba", "none"]),
        sharding=st.one_of(local, pooled, remote),
        artifact=st.builds(ArtifactOptions, mmap=st.booleans(), verify=st.booleans()),
    )


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(config=_configs())
    def test_to_dict_from_dict_identity(self, config):
        payload = config.to_dict()
        assert payload["config_version"] == CONFIG_VERSION
        assert ServingConfig.from_dict(payload) == config

    @settings(max_examples=100, deadline=None)
    @given(config=_configs())
    def test_payload_is_json_compatible(self, config):
        import json

        assert ServingConfig.from_dict(json.loads(json.dumps(config.to_dict()))) == config

    def test_wrong_version_rejected(self):
        payload = ServingConfig().to_dict()
        payload["config_version"] = CONFIG_VERSION + 1
        with pytest.raises(ConfigurationError, match="unsupported serving-config version"):
            ServingConfig.from_dict(payload)

    def test_unknown_top_level_key_rejected(self):
        payload = ServingConfig().to_dict()
        payload["threads"] = 4
        with pytest.raises(ConfigurationError, match=r"unknown keys \['threads'\]"):
            ServingConfig.from_dict(payload)

    def test_unknown_sharding_key_rejected(self):
        payload = ServingConfig().to_dict()
        payload["sharding"]["n_shards"] = 4
        with pytest.raises(ConfigurationError, match="sharding spec has unknown keys"):
            ServingConfig.from_dict(payload)

    def test_unknown_artifact_key_rejected(self):
        payload = ServingConfig().to_dict()
        payload["artifact"]["lazy"] = True
        with pytest.raises(ConfigurationError, match="artifact options have unknown keys"):
            ServingConfig.from_dict(payload)

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigurationError, match="must be a mapping"):
            ServingConfig.from_dict([1, 2, 3])


# --------------------------------------------------------------------------- #
# overrides + precedence
# --------------------------------------------------------------------------- #
class TestOverrides:
    def test_top_level_overrides(self):
        config = ServingConfig().with_overrides({"dtype": "float32", "engine": "auto"})
        assert config.dtype == "float32"
        assert config.engine == "auto"

    def test_any_sharding_key_replaces_the_whole_spec(self):
        base = ServingConfig(
            sharding=ShardingSpec(shards=4, remote_workers="a:1,b:2")
        )
        overridden = base.with_overrides({"shards": 2})
        # --shards 2 must not inherit the stale remote address list.
        assert overridden.sharding == ShardingSpec(shards=2)

    def test_artifact_overrides_merge(self):
        base = ServingConfig(artifact=ArtifactOptions(mmap=False, verify=True))
        assert base.with_overrides({"verify": False}).artifact == ArtifactOptions(
            mmap=False, verify=False
        )

    def test_unknown_override_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown serving config overrides"):
            ServingConfig().with_overrides({"threads": 8})

    def test_override_validation_matches_construction(self):
        with pytest.raises(ConfigurationError, match="only apply to sharded serving"):
            ServingConfig().with_overrides({"workers": 4})


class TestEffectiveConfig:
    def test_default_when_nothing_given(self):
        assert effective_config() == ServingConfig()

    def test_full_config_wins_over_embedded(self):
        embedded = ServingConfig(dtype="float32").to_dict()
        config = ServingConfig(engine="numpy")
        assert effective_config(config=config, embedded=embedded) == config

    def test_config_plus_overrides_rejected(self):
        with pytest.raises(ConfigurationError, match="not both"):
            effective_config(config=ServingConfig(), overrides={"dtype": "float32"})

    def test_overrides_apply_on_top_of_embedded(self):
        embedded = ServingConfig(dtype="float32", engine="numpy").to_dict()
        result = effective_config(overrides={"dtype": "float64"}, embedded=embedded)
        assert result.dtype == "float64"
        assert result.engine == "numpy"  # untouched embedded field survives

    def test_non_config_rejected(self):
        with pytest.raises(ConfigurationError, match="must be a ServingConfig"):
            effective_config(config={"dtype": "float64"})


# --------------------------------------------------------------------------- #
# resolution into a plan
# --------------------------------------------------------------------------- #
class TestResolve:
    def test_numpy_resolves_to_numpy(self):
        plan = ServingConfig(engine="numpy").resolve()
        assert plan.engine == "numpy"
        assert plan.engine_requested == "numpy"
        assert plan.provider is None
        assert not plan.sharded

    def test_default_engine_request_is_recorded(self):
        from repro.core import kernels

        plan = ServingConfig().resolve()
        assert plan.engine_requested == kernels.get_default_engine()

    def test_provider_none_disables_fused(self):
        plan = ServingConfig(engine="auto", provider="none").resolve()
        assert plan.engine == "numpy"

    def test_strict_fused_with_provider_none_raises(self):
        with pytest.raises(ConfigurationError, match="fused engine is unavailable"):
            ServingConfig(engine="fused", provider="none").resolve(strict=True)

    def test_degrade_policy_never_raises(self):
        plan = ServingConfig(engine="fused", provider="none").resolve(strict=False)
        assert plan.engine == "numpy"

    def test_auto_degrades_even_under_strict(self):
        # "auto" is a preference, not a demand: it resolves on every host.
        plan = ServingConfig(engine="auto").resolve(strict=True)
        assert plan.engine in ("numpy", "fused")

    def test_unsharded_plan_has_no_backend(self):
        plan = ServingConfig().resolve()
        assert plan.n_shards is None
        assert plan.backend is None
        assert plan.workers is None
        assert plan.build_backend() is None

    def test_sharded_backend_defaults_to_thread(self):
        plan = ServingConfig(sharding=ShardingSpec(shards=3)).resolve()
        assert plan.backend == "thread"
        assert plan.workers == usable_workers()

    def test_serial_backend_pins_one_worker(self):
        plan = ServingConfig(
            sharding=ShardingSpec(shards=3, backend="serial")
        ).resolve()
        assert plan.workers == 1
        backend = plan.build_backend()
        assert isinstance(backend, SerialBackend)

    def test_explicit_worker_count_survives(self):
        plan = ServingConfig(
            sharding=ShardingSpec(shards=3, backend="thread", workers=2)
        ).resolve()
        assert plan.workers == 2
        backend = plan.build_backend()
        assert isinstance(backend, ThreadPoolBackend)
        assert backend.workers == 2

    def test_remote_worker_count_is_the_address_list(self):
        plan = ServingConfig(
            sharding=ShardingSpec(
                shards=4, remote_workers="a:1,b:2,c:3", provisioning="value"
            )
        ).resolve()
        assert plan.backend == "remote"
        assert plan.workers == 3
        assert plan.remote_workers == ("a:1", "b:2", "c:3")
        backend = plan.build_backend()
        assert isinstance(backend, RemoteBackend)
        assert backend.workers == 3
        assert backend._provisioning == "value"

    def test_plan_to_dict_is_json_compatible(self):
        import json

        plan = ServingConfig(sharding=ShardingSpec(shards=2)).resolve()
        payload = json.loads(json.dumps(plan.to_dict()))
        assert payload["n_shards"] == 2
        assert payload["sharded"] is True

    def test_describe_adds_host_diagnostics(self):
        description = ServingConfig().resolve().describe()
        assert description["usable_cores"] == usable_workers()
        assert "default_engine" in description
        assert "fused_providers_available" in description

    @settings(max_examples=100, deadline=None)
    @given(config=_configs())
    def test_every_config_resolves_under_the_degrade_policy(self, config):
        plan = config.resolve(strict=False)
        assert isinstance(plan, ServingPlan)
        assert plan.engine in ("numpy", "fused")
        assert plan.config == config
        if config.sharding.enabled:
            assert plan.workers >= 1
        else:
            assert plan.backend is None


# --------------------------------------------------------------------------- #
# stats
# --------------------------------------------------------------------------- #
class TestServingStats:
    def test_to_dict_round_trips_fields(self):
        stats = ServingStats(
            n_records=10,
            dtype="float64",
            engine="numpy",
            sharded=False,
            ingest_s=0.001,
            route_s=0.0,
            descend_s=0.002,
            merge_s=0.0005,
            total_s=0.004,
            plan={"engine": "numpy"},
        )
        payload = stats.to_dict()
        assert payload["n_records"] == 10
        assert payload["plan"] == {"engine": "numpy"}
        assert set(payload) == {
            "n_records",
            "dtype",
            "engine",
            "sharded",
            "ingest_s",
            "route_s",
            "descend_s",
            "merge_s",
            "total_s",
            "plan",
        }
