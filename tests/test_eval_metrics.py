"""Tests for repro.eval.metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.metrics import (
    auc,
    binary_metrics,
    confusion_matrix,
    detection_rate_at_fpr,
    per_category_detection_rates,
    roc_auc,
    roc_curve,
)
from repro.exceptions import DataValidationError


class TestBinaryMetrics:
    def test_perfect_detector(self):
        metrics = binary_metrics([1, 1, 0, 0], [1, 1, 0, 0])
        assert metrics.detection_rate == 1.0
        assert metrics.false_positive_rate == 0.0
        assert metrics.precision == 1.0
        assert metrics.f1 == 1.0
        assert metrics.accuracy == 1.0

    def test_always_alarm_detector(self):
        metrics = binary_metrics([1, 0, 0, 0], [1, 1, 1, 1])
        assert metrics.detection_rate == 1.0
        assert metrics.false_positive_rate == 1.0
        assert metrics.precision == pytest.approx(0.25)

    def test_never_alarm_detector(self):
        metrics = binary_metrics([1, 1, 0, 0], [0, 0, 0, 0])
        assert metrics.detection_rate == 0.0
        assert metrics.false_positive_rate == 0.0
        assert metrics.f1 == 0.0

    def test_counts(self):
        metrics = binary_metrics([1, 1, 0, 0, 1], [1, 0, 1, 0, 1])
        assert metrics.true_positives == 2
        assert metrics.false_negatives == 1
        assert metrics.false_positives == 1
        assert metrics.true_negatives == 1
        assert metrics.n_attacks == 3
        assert metrics.n_normal == 2

    def test_no_attacks_edge_case(self):
        metrics = binary_metrics([0, 0], [0, 1])
        assert metrics.detection_rate == 0.0
        assert metrics.false_positive_rate == 0.5

    def test_boolean_input_accepted(self):
        metrics = binary_metrics([True, False], [True, False])
        assert metrics.accuracy == 1.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(DataValidationError):
            binary_metrics([1, 0], [1])

    def test_as_dict_keys(self):
        keys = set(binary_metrics([1, 0], [1, 0]).as_dict())
        assert keys == {
            "detection_rate",
            "false_positive_rate",
            "precision",
            "recall",
            "f1",
            "accuracy",
        }


class TestConfusionMatrix:
    def test_diagonal_for_perfect_predictions(self):
        labels = ["normal", "dos", "probe", "normal"]
        matrix, names = confusion_matrix(labels, labels)
        assert names[0] == "normal"
        np.testing.assert_array_equal(matrix, np.diag(np.diag(matrix)))
        assert matrix.sum() == 4

    def test_off_diagonal_counts(self):
        matrix, names = confusion_matrix(["normal", "dos"], ["dos", "dos"])
        normal_row = names.index("normal")
        dos_col = names.index("dos")
        assert matrix[normal_row, dos_col] == 1

    def test_explicit_label_order(self):
        matrix, names = confusion_matrix(
            ["dos", "normal"], ["dos", "normal"], labels=["normal", "dos", "u2r"]
        )
        assert names == ["normal", "dos", "u2r"]
        assert matrix.shape == (3, 3)

    def test_unknown_label_outside_explicit_set_rejected(self):
        with pytest.raises(DataValidationError):
            confusion_matrix(["normal"], ["alien"], labels=["normal"])


class TestPerCategoryRates:
    def test_rates_per_category(self):
        categories = ["normal", "normal", "dos", "dos", "probe"]
        predictions = [0, 1, 1, 1, 0]
        rates = per_category_detection_rates(categories, predictions)
        assert rates["dos"] == 1.0
        assert rates["probe"] == 0.0
        assert rates["normal"] == 0.5  # the FPR shows up under "normal"

    def test_all_categories_present(self):
        rates = per_category_detection_rates(["dos", "r2l"], [1, 0])
        assert set(rates) == {"dos", "r2l"}


class TestRocCurve:
    def test_perfect_scores_give_unit_auc(self):
        y = [0, 0, 1, 1]
        scores = [0.1, 0.2, 0.8, 0.9]
        fpr, tpr, thresholds = roc_curve(y, scores)
        assert auc(fpr, tpr) == pytest.approx(1.0)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert thresholds[0] == np.inf

    def test_random_scores_give_half_auc(self, rng):
        y = rng.integers(0, 2, 4000)
        scores = rng.random(4000)
        assert roc_auc(y, scores) == pytest.approx(0.5, abs=0.05)

    def test_inverted_scores_give_zero_auc(self):
        y = [0, 0, 1, 1]
        scores = [0.9, 0.8, 0.2, 0.1]
        assert roc_auc(y, scores) == pytest.approx(0.0)

    def test_monotone_curve(self, rng):
        y = rng.integers(0, 2, 500)
        scores = rng.random(500) + y * 0.3
        fpr, tpr, _ = roc_curve(y, scores)
        assert np.all(np.diff(fpr) >= -1e-12)
        assert np.all(np.diff(tpr) >= -1e-12)

    def test_empty_scores_rejected(self):
        with pytest.raises(DataValidationError):
            roc_curve([], [])

    def test_tied_scores_handled(self):
        y = [0, 1, 0, 1]
        scores = [0.5, 0.5, 0.5, 0.5]
        fpr, tpr, _ = roc_curve(y, scores)
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert roc_auc(y, scores) == pytest.approx(0.5)


class TestAucHelpers:
    def test_auc_of_diagonal_is_half(self):
        x = np.linspace(0, 1, 11)
        assert auc(x, x) == pytest.approx(0.5)

    def test_auc_with_single_point_is_zero(self):
        assert auc([0.5], [0.5]) == 0.0

    def test_detection_rate_at_fpr(self):
        y = [0] * 90 + [1] * 10
        scores = list(np.linspace(0, 0.5, 90)) + list(np.linspace(0.9, 1.0, 10))
        assert detection_rate_at_fpr(y, scores, target_fpr=0.01) == pytest.approx(1.0)

    def test_detection_rate_at_fpr_zero_when_impossible(self):
        y = [0, 1]
        scores = [1.0, 0.0]
        assert detection_rate_at_fpr(y, scores, target_fpr=0.0) == 0.0


class TestTrapezoidCompatibility:
    """The trapezoid integrator must resolve on both NumPy major versions.

    NumPy 2.0 renamed ``np.trapz`` to ``np.trapezoid``; :func:`auc` goes
    through :func:`repro.eval.metrics._resolve_trapezoid`, which picks
    whichever name the installed NumPy provides.  The stub-module tests below
    are the NumPy 1.x compatibility guard for environments (like CI's
    ``numpy<2`` leg) where only one of the names exists.
    """

    def test_resolves_on_installed_numpy(self):
        from repro.eval.metrics import _resolve_trapezoid, _trapezoid

        assert callable(_trapezoid)
        assert _resolve_trapezoid() is _trapezoid

    def test_prefers_trapezoid_when_available(self):
        from repro.eval.metrics import _resolve_trapezoid

        class Numpy2Like:
            @staticmethod
            def trapezoid(y, x):
                return "trapezoid"

            @staticmethod
            def trapz(y, x):  # pragma: no cover - must not be picked
                return "trapz"

        assert _resolve_trapezoid(Numpy2Like)(None, None) == "trapezoid"

    def test_falls_back_to_trapz(self):
        from repro.eval.metrics import _resolve_trapezoid

        class Numpy1Like:
            @staticmethod
            def trapz(y, x):
                return "trapz"

        assert _resolve_trapezoid(Numpy1Like)(None, None) == "trapz"

    def test_auc_matches_manual_trapezoid_rule(self):
        x = np.array([0.0, 0.2, 0.7, 1.0])
        y = np.array([0.0, 0.6, 0.9, 1.0])
        manual = float(np.sum((x[1:] - x[:-1]) * (y[1:] + y[:-1]) / 2.0))
        assert auc(x, y) == pytest.approx(manual)
